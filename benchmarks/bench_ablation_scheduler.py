"""Extension benchmarks beyond the paper's figures.

1. Cache-aware scheduler ablation (§3.4, left as future work in the
   paper): warm-node affinity on vs off.
2. Mixed warm/cold populations (§5.3.1, mentioned without numbers):
   boot time and storage traffic as the warm fraction grows.
"""

from benchmarks.conftest import run_once
from repro.experiments import (
    run_mixed_warm_cold,
    run_prefetch_ablation,
    run_scheduler_ablation,
)
from repro.metrics.reporting import shape_check


def test_ablation_scheduler(benchmark, report):
    log = run_once(benchmark, run_scheduler_ablation)
    report(log, "# VMs")

    on = log.get("affinity on").ys()[0]
    off = log.get("affinity off").ys()[0]
    shape_check(on < off,
                "warm-cache affinity speeds up the wave")
    shape_check(
        log.scalars["warm_placements_affinity_on"]
        > log.scalars["warm_placements_affinity_off"],
        "affinity routes VMs to warm nodes")


def test_ablation_mixed_warm_cold(benchmark, report):
    log = run_once(benchmark, run_mixed_warm_cold)
    report(log, "warm fraction")

    boot = log.get("mean boot time")
    traffic = log.get("storage traffic")
    shape_check(boot.ys()[-1] < boot.ys()[0],
                "an all-warm wave beats an all-cold wave")
    ys = traffic.ys()
    shape_check(all(b <= a * 1.02 for a, b in zip(ys, ys[1:])),
                "warm nodes monotonically reduce storage traffic "
                "(§5.3.1's claim)")


def test_ablation_prefetch(benchmark, report):
    log = run_once(benchmark, run_prefetch_ablation)
    report(log, "prefetch")

    gain = log.scalars["improvement_pct"]
    bound = log.scalars["paper_read_wait_pct"]
    shape_check(gain >= 0,
                "prefetching never slows the boot down")
    shape_check(
        gain <= bound + 2,
        "§7.3: prefetching 'can only mask' the read-wait fraction "
        f"(gain {gain:.1f}% vs {bound:.0f}% bound)")
    shape_check(
        gain < 10,
        "§7.3: 'no substantial benefit' from prefetching")
