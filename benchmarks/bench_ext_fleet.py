"""Extension: the fleet scrape plane must be (nearly) free.

ISSUE 8's aggregator polls every node's /metrics + /healthz on an
interval.  Observability that taxes the datapath it observes is a
lie, so two budgets are enforced:

* **Datapath impact <= 5%**: the boot-trace read mix served over the
  wire protocol, with and without an aggressive aggregator (200 ms
  interval — 10x denser than the 2 s default) scraping the serving
  node the whole time.  The scraper is a real ``fleet_top``
  *subprocess*, as deployed.  The budgeted quantity is the
  *server-side* cost of being scraped — satellite (a)'s
  ``telemetry_render_seconds`` self-timing, i.e. the seconds the node
  spent rendering /metrics + /healthz, as a fraction of the scraped
  window.  That is what a production node pays; the aggregator's own
  parse/ingest CPU runs on another machine.  The raw co-located
  wall-clock delta is also recorded: on this box the benchmark and
  the scraper share cores (often just one), so that number is a
  worst-case upper bound no real deployment sees, sanity-bounded
  loosely.  Arms interleave per round and score best-of-rounds, the
  same noise discipline as the tracing benchmark.
* **Poll-loop scaling**: one aggregator poll over a simulated fleet
  (storage + computes via the in-process scrape adapter) at growing
  node counts.  The 1k-node poll — scrape, strict-parse, ingest,
  derive signals, evaluate rules — must complete in well under a
  second, i.e. far inside the default 2 s interval.
"""

import gc
import os
import shutil
import subprocess
import sys
import tempfile
import time

from benchmarks.conftest import run_once
from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.cluster import Cloud
from repro.imagefmt import RawImage
from repro.metrics.collectors import ExperimentLog
from repro.metrics.fleet import FleetAggregator, HttpTarget
from repro.metrics.reporting import shape_check
from repro.remote import BlockServer, RemoteImage
from repro.sim.fleet_twin import cloud_targets
from repro.units import MiB

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _start_scraper(url: str) -> subprocess.Popen:
    """A real fleet_top process scraping ``url`` at 200 ms intervals.

    Returns once the first snapshot has been emitted, i.e. the node is
    demonstrably under scrape load before the timed arm starts.
    """
    proc = subprocess.Popen(
        [sys.executable, os.path.join(_REPO, "tools", "fleet_top.py"),
         "--json", "--interval", "0.2", url],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env={**os.environ,
             "PYTHONPATH": os.path.join(_REPO, "src")})
    proc.stdout.readline()
    return proc


def _run_fleet_telemetry(quick: bool = False) -> ExperimentLog:
    log = ExperimentLog(
        "BENCH_fleet_telemetry",
        "Aggregator scrape overhead on a serving node + poll-loop "
        "scaling over a simulated fleet")

    # -- A: datapath impact of being scraped -------------------------
    size = 8 * MiB
    rounds = 5 if quick else 9
    base_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
    workdir = tempfile.mkdtemp(prefix="repro-fleet-bench-",
                               dir=base_dir)
    try:
        base_path = os.path.join(workdir, "base.raw")
        base = RawImage.create(base_path, size)
        base.write(0, os.urandom(size))
        base.close()

        profile = tiny_profile(vmi_size=size, working_set=size,
                               boot_time=1.0)
        trace = generate_boot_trace(profile, seed=3)
        ops = [(op.offset, op.length) for op in trace.reads()
               if op.offset + op.length <= size]
        ops = ops[: 300 if quick else 800]
        # Each timed window must span many scrape intervals, or one
        # poll landing inside a short window reads as huge overhead.
        passes = 20 if quick else 12

        base = RawImage.open(base_path)
        server = BlockServer(telemetry_port=0)
        server.add_export("vmi", base)
        url = server.telemetry.url
        quiet_s: list[float] = []
        scraped_s: list[float] = []
        with RemoteImage.connect(server.url("vmi")) as img:
            def read_loop() -> None:
                for _ in range(passes):
                    for off, length in ops:
                        img.read(off, length)

            def timed(into: list[float]) -> None:
                gc.collect()
                t0 = time.perf_counter()
                read_loop()
                into.append(time.perf_counter() - t0)

            def scraped_arm() -> None:
                scraper = _start_scraper(url)
                try:
                    timed(scraped_s)
                finally:
                    scraper.terminate()
                    scraper.wait(timeout=30)

            read_loop()  # warm connection + server threads
            gc.disable()
            try:
                for r in range(rounds):
                    # Arm order alternates per round so slow drift
                    # (CPU frequency, cache state) taxes both equally.
                    if r % 2 == 0:
                        timed(quiet_s)
                        scraped_arm()
                    else:
                        scraped_arm()
                        timed(quiet_s)
            finally:
                gc.enable()
        # Server-side evidence the scraped arms were really scraped
        # (satellite (a): the endpoint counts and times its own
        # scrapes).  total_seconds across both paths is the node's
        # entire render bill for the benchmark.
        from repro.metrics.registry import get_registry
        registry = get_registry()
        polls = registry.counter(
            "telemetry_scrapes_total", path="/metrics").value
        service_s = sum(
            registry.histogram("telemetry_render_seconds",
                               path=path).total_seconds
            for path in ("/metrics", "/healthz"))
        # One in-process poll for the record: the node must still be
        # healthy and scrapeable after the pounding.
        checker = FleetAggregator(
            [HttpTarget.from_url(url, name="node0")], interval=1.0,
            timeout=5.0)
        snapshot = checker.poll_once()
        checker.stop()
        server.close()
        base.close()

        best_quiet = min(quiet_s)
        best_scraped = min(scraped_s)
        log.record_scalar("quiet_s", best_quiet)
        log.record_scalar("scraped_s", best_scraped)
        # The budgeted number: seconds the node spent rendering
        # telemetry, over the total time it spent under scrape load.
        log.record_scalar(
            "datapath_overhead_pct",
            service_s / sum(scraped_s) * 100)
        log.record_scalar("scrape_service_s", service_s)
        log.record_scalar(
            "co_located_overhead_pct",
            (best_scraped - best_quiet) / best_quiet * 100)
        log.record_scalar("reads", len(ops) * passes)
        log.record_scalar("rounds", rounds)
        log.record_scalar("metrics_scrapes_served", polls)
        log.record_scalar(
            "node_ok", 1.0
            if snapshot and snapshot.nodes["node0"].status == "ok"
            else 0.0)

        # -- B: poll-loop scaling over a simulated fleet --------------
        node_axis = [50, 150] if quick else [100, 400, 1000]
        poll_series = log.new_series("poll_time_s", unit="s")
        per_node = log.new_series("poll_us_per_node", unit="us")
        profile = tiny_profile(vmi_size=64 * MiB, working_set=4 * MiB,
                               boot_time=2.0)
        sim_trace = generate_boot_trace(profile, seed=11)
        for n in node_axis:
            cloud = Cloud(n_compute=n, cache_mode="algorithm1",
                          cache_quota=16 * MiB)
            cloud.register_vmi("tiny", profile.vmi_size, sim_trace)
            cloud.start_vms([("tiny", max(8, min(n // 10, 100)))])
            agg = FleetAggregator(
                cloud_targets(cloud), interval=1.0, workers=16,
                rules=["node:unhealthy >= 1 for 3 resolve 2",
                       "storage_offload_fraction < 1% for 5"])
            agg.poll_once()  # warm stores and thread pool
            best = min(_timed_poll(agg) for _ in range(3))
            poll_series.add(n, best)
            per_node.add(n, best / (n + 1) * 1e6)
            agg.stop()
        log.note(f"scrape interval during impact arms: 200 ms; "
                 f"fleet axis {node_axis} plus one storage target "
                 f"each")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return log


def _timed_poll(agg: FleetAggregator) -> float:
    t0 = time.perf_counter()
    agg.poll_once()
    return time.perf_counter() - t0


def test_ext_fleet_telemetry(benchmark, report, request):
    quick = request.config.getoption("--quick")
    log = run_once(benchmark, _run_fleet_telemetry, quick=quick)
    report(log, "nodes")

    shape_check(
        log.scalars["datapath_overhead_pct"] <= 5.0,
        "serving a 200 ms-interval scraper costs the node <= 5% of "
        "its scraped wall time")
    # The co-located delta includes the scraper process's own CPU
    # stolen from the datapath on a shared (often single) core — an
    # upper bound a real deployment never pays.  Bounded loosely as a
    # regression tripwire only.
    shape_check(
        log.scalars["co_located_overhead_pct"] <= 40.0,
        "co-located scraping stays within the single-core worst-case "
        "bound")
    shape_check(
        log.scalars["metrics_scrapes_served"] >= log.scalars["rounds"],
        "the scraped arms were actually being polled")
    shape_check(log.scalars["node_ok"] == 1.0,
                "the loaded node stayed scrapeable throughout")
    biggest = log.get("poll_time_s").points[-1]
    shape_check(
        biggest[1] < 1.0,
        f"one poll over {int(biggest[0])} sim nodes stays under 1 s "
        f"(got {biggest[1]:.3f} s)")
