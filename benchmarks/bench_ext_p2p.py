"""Extension: peer-to-peer cache fill offloads the storage node.

The paper's Figure 11 shows cache hits collapsing the storage node's
share of deployment traffic; ISSUE 9's peer fill pushes the remaining
*miss* traffic onto already-warm neighbors.  Two arms:

* **Real fleet**: a storage ``BlockServer``, a peer that warmed its
  cache from it (manifest built during the warm), and a cold node
  that fills over the v5 wire protocol with per-cluster digest
  verification.  The claim is absolute: the fill is byte-perfect and
  *zero* read requests land on the storage export — offload 1.0 for
  the whole working set.
* **Fleet twin**: the discrete-event model at paper scale (64+ nodes)
  sweeps the node axis with peer fill on and off.  Off, every boot
  crosses the storage NIC and offload is 0; on, only the cold start
  of the warm pool touches storage, offload climbs toward 1 with
  fleet size, and the deployment makespan collapses with it.
"""

import os
import shutil
import tempfile
import time

from benchmarks.conftest import run_once
from repro.cluster.peerfill import fill_cache
from repro.cluster.warmer import checksum_extents, warm_cache
from repro.imagefmt import RawImage
from repro.imagefmt.qcow2 import Qcow2Image
from repro.metrics.collectors import ExperimentLog
from repro.metrics.reporting import shape_check
from repro.remote import BlockServer
from repro.sim.peerfill_twin import PeerFillFleetSim
from repro.units import MiB


def _real_fleet_arm(log: ExperimentLog, quick: bool) -> None:
    size = (8 if quick else 64) * MiB
    quota = 4 * size
    base_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
    workdir = tempfile.mkdtemp(prefix="repro-p2p-bench-", dir=base_dir)
    try:
        base_path = os.path.join(workdir, "base.raw")
        base = RawImage.create(base_path, size)
        base.write(0, os.urandom(size))
        base.close()

        base = RawImage.open(base_path)
        storage = BlockServer()
        storage.add_export("vmi", base)

        # Warm the peer from storage, manifest built along the way.
        peer_cache = os.path.join(workdir, "peer.qcow2")
        Qcow2Image.create(peer_cache, backing_file=storage.url("vmi"),
                          cache_quota=quota).close()
        t0 = time.perf_counter()
        with Qcow2Image.open(peer_cache, read_only=False) as cache:
            warm_report = warm_cache(cache, extents=[(0, size)],
                                     manifest_vmi_id="vmi")
        storage_warm_s = time.perf_counter() - t0

        peer_img = Qcow2Image.open(peer_cache)
        peer = BlockServer()
        peer.add_export("vmi", peer_img,
                        manifest=warm_report.manifest)

        # The cold node fills from the peer.
        cold_cache = os.path.join(workdir, "cold.qcow2")
        Qcow2Image.create(cold_cache, backing_file=storage.url("vmi"),
                          cache_quota=quota).close()
        reads_before = storage.export_stats("vmi").read_ops
        with Qcow2Image.open(cold_cache, read_only=False) as cache:
            t0 = time.perf_counter()
            fill = fill_cache(cache, warm_report.manifest,
                              peers=[peer.url("vmi")])
            peer_fill_s = time.perf_counter() - t0
            identical = (checksum_extents(cache, [(0, size)])
                         == checksum_extents(peer_img, [(0, size)]))
        storage_reads_during_fill = (
            storage.export_stats("vmi").read_ops - reads_before)

        peer.close()
        storage.close()
        peer_img.close()
        base.close()

        log.record_scalar("real_size_mb", size // MiB)
        log.record_scalar("real_offload",
                          fill.storage_offload_fraction)
        log.record_scalar("real_verify_failures", fill.verify_failures)
        log.record_scalar("real_storage_reads_during_fill",
                          storage_reads_during_fill)
        log.record_scalar("real_checksum_identical",
                          1.0 if identical else 0.0)
        log.record_scalar("real_storage_warm_s", storage_warm_s)
        log.record_scalar("real_peer_fill_s", peer_fill_s)
        log.record_scalar(
            "real_fill_mb_s", fill.bytes_total / MiB / peer_fill_s)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _twin_arm(log: ExperimentLog, quick: bool) -> None:
    node_axis = [16, 64] if quick else [16, 64, 128, 256]
    ws = 128 * MiB
    off_on = log.new_series("twin_offload_peer_fill", unit="fraction")
    off_off = log.new_series("twin_offload_baseline", unit="fraction")
    makespan_on = log.new_series("twin_makespan_peer_fill", unit="s")
    makespan_off = log.new_series("twin_makespan_baseline", unit="s")
    for n in node_axis:
        on = PeerFillFleetSim(n_nodes=n, working_set_bytes=ws,
                              peer_fill=True, stagger=0.5,
                              verify_failure_rate=0.02).run()
        base = PeerFillFleetSim(n_nodes=n, working_set_bytes=ws,
                                peer_fill=False, stagger=0.5).run()
        off_on.add(n, on.storage_offload_fraction)
        off_off.add(n, base.storage_offload_fraction)
        makespan_on.add(n, on.makespan)
        makespan_off.add(n, base.makespan)
    log.note(f"twin axis {node_axis} nodes, {ws // MiB} MiB working "
             f"set, 1 GbE, 0.5 s stagger, 2% injected verify "
             f"failures on the peer-fill arm")


def _run_p2p_offload(quick: bool = False) -> ExperimentLog:
    log = ExperimentLog(
        "BENCH_p2p_offload",
        "Peer-to-peer cache fill: storage offload on a real "
        "three-node fleet and in the 64+-node fleet twin")
    _real_fleet_arm(log, quick)
    _twin_arm(log, quick)
    return log


def test_ext_p2p_offload(benchmark, report, request):
    quick = request.config.getoption("--quick")
    log = run_once(benchmark, _run_p2p_offload, quick=quick)
    report(log, "nodes")

    shape_check(log.scalars["real_checksum_identical"] == 1.0,
                "the peer-filled cache is byte-identical to the warm "
                "peer's")
    shape_check(log.scalars["real_offload"] == 1.0,
                "the whole real fill came from the peer")
    shape_check(log.scalars["real_storage_reads_during_fill"] == 0,
                "not one read landed on the storage export during "
                "the fill")
    big = log.get("twin_offload_peer_fill").points[-1]
    base = log.get("twin_offload_baseline").points[-1]
    shape_check(
        base[1] == 0.0 and big[1] > 0.5,
        f"at {int(big[0])} twin nodes peer fill offloads "
        f"{big[1]:.0%} of deployment traffic vs 0% baseline")
    ms_on = log.get("twin_makespan_peer_fill").points[-1][1]
    ms_off = log.get("twin_makespan_baseline").points[-1][1]
    shape_check(
        ms_on < ms_off / 2,
        f"offloading halves the deployment makespan "
        f"({ms_on:.1f} s vs {ms_off:.1f} s)")
