"""Extension: predictive prefetch + wire compression vs cold boot.

The paper closes the boot-storm gap by caching: a warm node boots at
local speed, a cold node pays one WAN round-trip per demand miss.
ISSUE 7's predictive-prefetch datapath attacks the cold case — a plan
mined from earlier boots is streamed into the node cache *while* the
VM boots, over its own compressed low-priority connection, so demand
reads find their clusters already local.

This benchmark boots the CentOS trace three ways against a
latency-shaped NBD export (every request pays a fixed injected wire
delay, the cheap stand-in for a WAN RTT).  The replays are paced by
the trace's think times (``time_scale``) — §7.3 puts CentOS's read
wait at 17% of the boot, i.e. most of a real boot is guest compute,
and those gaps are exactly the window the prefetcher exploits:

* **cold** — empty cache, every miss pays the RTT inline;
* **warm** — ``warm_cache`` pre-filled the working set (fill untimed:
  it happened before the boot request arrived);
* **prefetch** — empty cache plus a :class:`Prefetcher` racing the
  boot over a dedicated ``compress=True`` connection.

The claims: prefetch recovers most of the cold/warm gap (>= 2x over
cold, within ~25% of warm at full scale), the prefetched cache is
checksum-identical to the warmer's fill, and the plan stream actually
shipped compressed (the sparse base deflates massively).
"""

import os
import shutil
import tempfile
import time

from benchmarks.conftest import run_once
from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.prefetch import plan_from_trace
from repro.bootmodel.profiles import CENTOS_63, tiny_profile
from repro.bootmodel.vm import make_sparse_base, replay_through_chain
from repro.cluster.prefetch import Prefetcher
from repro.cluster.warmer import (
    checksum_extents,
    warm_cache,
    working_set_extents,
)
from repro.experiments.common import centos_trace
from repro.imagefmt import Qcow2Image, RawImage
from repro.metrics.collectors import ExperimentLog
from repro.metrics.reporting import shape_check
from repro.units import KiB, MB, MiB


def _make_cache(workdir: str, tag: str, url: str, quota: int,
                cluster: int) -> str:
    """A fresh node-local cache layer over the served base."""
    cache_p = os.path.join(workdir, f"cache-{tag}.qcow2")
    Qcow2Image.create(cache_p, backing_file=url, cluster_size=cluster,
                      cache_quota=quota).close()
    return cache_p


def _make_cow(workdir: str, tag: str, cache_p: str) -> "Qcow2Image":
    """The VM's private CoW top layer.  Created only once the cache
    below it is final: the cow holds its own handle on the cache, so
    an out-of-band fill (``warm_cache``) must happen first."""
    return Qcow2Image.create(
        os.path.join(workdir, f"cow-{tag}.qcow2"),
        backing_file=cache_p, backing_format="qcow2")


def _run_prefetch(quick: bool = False) -> ExperimentLog:
    from repro.remote import BlockServer, FaultInjector, RemoteImage

    log = ExperimentLog(
        "BENCH_cold_boot_prefetch",
        "Cold vs warm vs prefetch+compression boot over a "
        "latency-shaped wire")
    if quick:
        profile = tiny_profile(vmi_size=8 * MiB, working_set=2 * MiB,
                               boot_time=1.0)
        trace = generate_boot_trace(profile, seed=11)
        delay, quota, time_scale = 0.002, 8 * MB, 0.5
        depth, chunk_bytes, cluster = 8, 256 * KiB, 512
    else:
        profile = CENTOS_63
        trace = centos_trace()
        delay, quota, time_scale = 0.008, 110 * MB, 0.3
        # 4 KiB cache clusters: the paper-scale working set through
        # the pure-python qcow2 at 512-byte granularity is ~170k
        # cluster ops per layer — all CPU, drowning the wire effects
        # this benchmark isolates.  (--quick keeps 512 so tier-1
        # still exercises the fine-grained path.)
        depth, chunk_bytes, cluster = 8, 1 * MiB, 4 * KiB

    base_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
    workdir = tempfile.mkdtemp(prefix="repro-prefetch-bench-",
                               dir=base_dir)
    try:
        base_path = make_sparse_base(
            os.path.join(workdir, "base.raw"), profile.vmi_size)
        base = RawImage.open(base_path)
        fi = FaultInjector(delay_rate=1.0, delay_seconds=delay)
        plan = plan_from_trace(trace, align=cluster)
        extents = working_set_extents(trace, size=profile.vmi_size,
                                      align=cluster)

        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            url = server.url("base")

            # Plain cold: every miss pays the RTT inline.
            with _make_cow(workdir, "cold",
                           _make_cache(workdir, "cold", url,
                                       quota, cluster)) as cow:
                t0 = time.perf_counter()
                replay_through_chain(trace, cow, vm_id="vm-cold",
                                     time_scale=time_scale)
                cold_s = time.perf_counter() - t0

            # Warm: the fill is untimed — it happened before the
            # boot request arrived (the paper's steady-state node).
            warm_cache_p = _make_cache(workdir, "warm", url, quota,
                                       cluster)
            with Qcow2Image.open(warm_cache_p, read_only=False) as c:
                warm_cache(c, trace)
            with _make_cow(workdir, "warm", warm_cache_p) as cow:
                t0 = time.perf_counter()
                replay_through_chain(trace, cow, vm_id="vm-warm",
                                     time_scale=time_scale)
                warm_s = time.perf_counter() - t0

            # Prefetch: cold cache, plan streamed over a dedicated
            # compressed connection while the boot replays.
            pf_cache_p = _make_cache(workdir, "pf", url, quota,
                                     cluster)
            with RemoteImage.connect(url, compress=True) as side, \
                    _make_cow(workdir, "pf", pf_cache_p) as cow:
                pf = Prefetcher(cow.backing, plan, source=side,
                                depth=depth, chunk_bytes=chunk_bytes)
                t0 = time.perf_counter()
                replay_through_chain(trace, cow, vm_id="vm-prefetch",
                                     prefetcher=pf,
                                     time_scale=time_scale)
                prefetch_s = time.perf_counter() - t0
                wire_stats = side.transport_stats

            # The prefetched cache must hold byte-for-byte what the
            # warmer would have written for the same working set.
            with Qcow2Image.open(pf_cache_p) as img:
                pf_sum = checksum_extents(img, extents)
            with Qcow2Image.open(warm_cache_p) as img:
                warm_sum = checksum_extents(img, extents)
        base.close()

        log.record_scalar("cold_s", cold_s)
        log.record_scalar("warm_s", warm_s)
        log.record_scalar("prefetch_s", prefetch_s)
        log.record_scalar("speedup_vs_cold", cold_s / prefetch_s)
        log.record_scalar("ratio_vs_warm", prefetch_s / warm_s)
        log.record_scalar("checksum_ok",
                          1.0 if pf_sum == warm_sum else 0.0)
        log.record_scalar("plan_mb", plan.total_bytes() / MB)
        log.record_scalar("prefetch_hit_mb", pf.report.hit_bytes / MB)
        log.record_scalar("prefetch_wasted_mb",
                          pf.report.wasted_bytes / MB)
        log.record_scalar("prefetch_backoffs", pf.report.backoffs)
        log.record_scalar("quota_exhausted",
                          1.0 if pf.report.quota_exhausted else 0.0)
        log.record_scalar("wire_compressed_mb",
                          wire_stats.wire_compressed_bytes / MB)
        log.record_scalar("wire_compressed_raw_mb",
                          wire_stats.wire_compressed_bytes_raw / MB)
        log.record_scalar("compression_ratio",
                          wire_stats.compression_ratio)
        log.record_scalar("delay_ms", delay * 1e3)
        log.note(f"{profile.name} trace, {delay * 1e3:g}ms injected "
                 f"wire delay, prefetch depth={depth} x "
                 f"{chunk_bytes // KiB}KiB, zlib-compressed plan "
                 f"stream")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return log


def check_prefetch_shape(log: ExperimentLog,
                         quick: bool = False) -> None:
    """The benchmark's qualitative claims, shared by bench and smoke."""
    speedup_floor = 1.5 if quick else 2.0
    warm_ceiling = 2.0 if quick else 1.25
    shape_check(
        log.scalars["speedup_vs_cold"] >= speedup_floor,
        f"prefetch+compression boots >= {speedup_floor:g}x faster "
        f"than the plain cold boot")
    shape_check(
        log.scalars["ratio_vs_warm"] <= warm_ceiling,
        f"the prefetched boot lands within {warm_ceiling:g}x of the "
        f"pre-warmed boot")
    shape_check(log.scalars["checksum_ok"] == 1.0,
                "the prefetched cache is checksum-identical to the "
                "warmer's fill")
    shape_check(log.scalars["wire_compressed_mb"] > 0,
                "the plan stream actually shipped compressed chunks")
    shape_check(log.scalars["prefetch_hit_mb"] > 0,
                "demand reads actually hit prefetched clusters")
    shape_check(log.scalars["quota_exhausted"] == 0.0,
                "the quota was never exhausted at this scale")


def test_ext_cold_boot_prefetch(benchmark, report, request):
    quick = request.config.getoption("--quick")
    log = run_once(benchmark, _run_prefetch, quick=quick)
    report(log, "case")
    check_prefetch_shape(log, quick=quick)
