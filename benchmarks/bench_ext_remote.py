"""Extension: the remote block substrate must be traffic-transparent.

The paper's whole evaluation assumes that serving the base remotely
(NFS there, our NBD-style server here) moves exactly the bytes the
image chain requests.  This benchmark replays the CentOS boot twice —
base on a local file vs base served over a real TCP socket — and
asserts the byte-for-byte agreement of the storage traffic, cold and
warm.

Two further runs exercise the hardened transport of ISSUE 1:

* **concurrent scaling** — N clients read one export against a
  storage-latency-shaped driver, with the server's reader-writer
  dispatch on vs the old fully-serialized baseline
  (``parallel_reads=False``); parallel must win clearly, since N
  simultaneous boots costing the same as one is the paper's headline;
* **retry transparency** — deterministic connection drops injected at
  the server; the client's reconnect-and-retry must deliver the exact
  same bytes with no caller-visible failure.
"""

import os
import random
import shutil
import tempfile
import threading
import time

from benchmarks.conftest import run_once
from repro.bootmodel.vm import make_sparse_base, replay_through_chain
from repro.experiments.common import centos_trace
from repro.bootmodel.profiles import CENTOS_63
from repro.imagefmt import Qcow2Image, RawImage
from repro.imagefmt.driver import BlockDriver
from repro.imagefmt.chain import create_cache_chain
from repro.metrics.collectors import ExperimentLog
from repro.metrics.reporting import shape_check
from repro.units import KiB, MB, MiB


def _run() -> ExperimentLog:
    from repro.remote import BlockServer

    log = ExperimentLog(
        "ext-remote",
        "Storage traffic: local base file vs NBD-served base")
    trace = centos_trace()
    quota = 110 * MB
    base_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
    workdir = tempfile.mkdtemp(prefix="repro-remote-bench-",
                               dir=base_dir)
    try:
        base_path = make_sparse_base(
            os.path.join(workdir, "base.raw"), CENTOS_63.vmi_size)

        # Local-file reference.
        chain = create_cache_chain(
            base_path, os.path.join(workdir, "cache-local.qcow2"),
            os.path.join(workdir, "cow-local.qcow2"), quota=quota)
        with chain:
            local_cold = replay_through_chain(
                trace, chain, track_unique=False).base_bytes_read

        # Over the wire.
        base = RawImage.open(base_path)
        with BlockServer() as server:
            server.add_export("centos", base)
            url = server.url("centos")
            cache_p = os.path.join(workdir, "cache-remote.qcow2")
            Qcow2Image.create(cache_p, backing_file=url,
                              cluster_size=512,
                              cache_quota=quota).close()
            cow = Qcow2Image.create(
                os.path.join(workdir, "cow-remote.qcow2"),
                backing_file=cache_p, backing_format="qcow2")
            with cow:
                replay_through_chain(trace, cow, track_unique=False)
            remote_cold = server.export_stats("centos").bytes_read

            cow2 = Qcow2Image.create(
                os.path.join(workdir, "cow-remote2.qcow2"),
                backing_file=cache_p, backing_format="qcow2")
            with cow2:
                replay_through_chain(trace, cow2, track_unique=False)
            remote_warm = server.export_stats("centos").bytes_read \
                - remote_cold
        base.close()

        log.record_scalar("local_cold_mb", local_cold / MB)
        log.record_scalar("remote_cold_mb", remote_cold / MB)
        log.record_scalar("remote_warm_mb", remote_warm / MB)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return log


class _SlowReads(BlockDriver):
    """Delegating wrapper adding fixed per-read latency.

    A stand-in for the storage node's disk/NFS service time: loopback
    pread is too fast for dispatch concurrency to matter, so each read
    sleeps (releasing the GIL, like real I/O would) before delegating.
    """

    format_name = "slow"

    def __init__(self, inner: BlockDriver, delay: float) -> None:
        super().__init__(inner.path, inner.size, True)
        self._inner = inner
        self._delay = delay

    @property
    def supports_concurrent_reads(self) -> bool:
        return self._inner.supports_concurrent_reads

    def _read_impl(self, offset: int, length: int) -> bytes:
        time.sleep(self._delay)
        return self._inner.read(offset, length)

    def _write_impl(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def _close_impl(self) -> None:
        pass  # the inner driver is owned by the caller


def _run_scaling() -> ExperimentLog:
    from repro.remote import BlockServer, RemoteImage

    log = ExperimentLog(
        "ext-remote-scaling",
        "Concurrent reads of one export: parallel vs serialized dispatch")
    n_clients, n_reads, delay = 6, 20, 0.002
    base_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
    workdir = tempfile.mkdtemp(prefix="repro-remote-scale-", dir=base_dir)
    try:
        base_path = make_sparse_base(
            os.path.join(workdir, "base.raw"), 8 * MiB)
        base = RawImage.open(base_path)
        slow = _SlowReads(base, delay)
        for label, parallel in (("serialized", False), ("parallel", True)):
            with BlockServer(parallel_reads=parallel) as server:
                server.add_export("base", slow)
                start = threading.Barrier(n_clients + 1)
                failures: list[BaseException] = []

                def client(tag: int) -> None:
                    try:
                        with RemoteImage.connect(
                                server.url("base")) as img:
                            start.wait(timeout=30)
                            for i in range(n_reads):
                                off = ((tag * n_reads + i) * 4096) \
                                    % (8 * MiB - 4096)
                                img.read(off, 4096)
                    except BaseException as exc:  # pragma: no cover
                        failures.append(exc)

                threads = [threading.Thread(target=client, args=(t,))
                           for t in range(n_clients)]
                for t in threads:
                    t.start()
                start.wait(timeout=30)
                t0 = time.perf_counter()
                for t in threads:
                    t.join(timeout=120)
                elapsed = time.perf_counter() - t0
                assert not failures, failures
                stats = server.export_stats("base")
                assert stats.read_ops == n_clients * n_reads
            log.record_scalar(f"{label}_s", elapsed)
        base.close()
        log.record_scalar(
            "speedup",
            log.scalars["serialized_s"] / log.scalars["parallel_s"])
        log.record_scalar("clients", n_clients)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return log


def _run_retry() -> ExperimentLog:
    from repro.remote import BlockServer, FaultInjector, RemoteImage

    log = ExperimentLog(
        "ext-remote-retry",
        "Traffic transparency across injected connection drops")
    base_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
    workdir = tempfile.mkdtemp(prefix="repro-remote-retry-", dir=base_dir)
    try:
        size = 2 * MiB
        content = random.Random(0).randbytes(size)
        base_path = os.path.join(workdir, "base.raw")
        base = RawImage.create(base_path, size)
        base.write(0, content)

        injected_drops = 3
        fi = FaultInjector()
        fi.inject(*(["drop"] * injected_drops))
        mismatches = 0
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"), max_retries=4,
                                     backoff_base=0.005,
                                     backoff_max=0.05) as img:
                for off in range(0, size, 64 * KiB):
                    if img.read(off, 64 * KiB) \
                            != content[off: off + 64 * KiB]:
                        mismatches += 1
                stats = img.transport_stats
                log.record_scalar("retries", stats.retries)
                log.record_scalar("reconnects", stats.reconnects)
        base.close()
        log.record_scalar("injected_drops", fi.stats.dropped)
        log.record_scalar("mismatched_chunks", mismatches)
        log.record_scalar("mb_read", size / MB)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return log


def _run_pipeline(quick: bool = False) -> ExperimentLog:
    """Latency-shaped A/B of the v2 pipelined client vs lock-step v1.

    Every request pays a fixed injected wire delay, so a lock-step
    client pays it once per chunk while a depth-8 window overlaps
    them — the speedup is the depth, minus scheduling overhead.  A
    second stage checks the parallel cache warmer lands byte-for-byte
    the same working set the serial sample-boot path would.
    """
    from repro.bootmodel.generator import generate_boot_trace
    from repro.bootmodel.profiles import tiny_profile
    from repro.bootmodel.vm import warm_cache_by_boot
    from repro.cluster.warmer import (
        checksum_extents,
        warm_cache,
        working_set_extents,
    )
    from repro.remote import BlockServer, FaultInjector, RemoteImage

    log = ExperimentLog(
        "BENCH_remote_pipeline",
        "Tagged multi-in-flight requests vs lock-step v1 under "
        "per-request wire latency")
    delay = 0.003 if quick else 0.005
    chunk = 128 * KiB
    size = (2 * MiB) if quick else (8 * MiB)
    base_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
    workdir = tempfile.mkdtemp(prefix="repro-remote-pipe-", dir=base_dir)
    try:
        content = random.Random(7).randbytes(size)
        base_path = os.path.join(workdir, "base.raw")
        base = RawImage.create(base_path, size)
        base.write(0, content)
        base.flush()

        fi = FaultInjector(delay_rate=1.0, delay_seconds=delay)
        mismatches = 0
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            url = server.url("base")
            for label, kwargs in (("v1", {"protocol": 1}),
                                  ("v2", {"depth": 8})):
                with RemoteImage.connect(url, chunk_size=chunk,
                                         **kwargs) as img:
                    t0 = time.perf_counter()
                    blob = img.read(0, size)
                    log.record_scalar(f"{label}_s",
                                      time.perf_counter() - t0)
                    if blob != content:
                        mismatches += 1
                    if label == "v2":
                        log.record_scalar(
                            "v2_inflight_hwm",
                            img.transport_stats.inflight_hwm)

            # Parallel warmer vs serial sample boot, over the same
            # latency-shaped wire.
            profile = tiny_profile(
                vmi_size=size,
                working_set=(256 * KiB) if quick else MiB,
                boot_time=1.0)
            trace = generate_boot_trace(profile, seed=5)
            quota = 2 * size
            warm_p = os.path.join(workdir, "warmed.qcow2")
            Qcow2Image.create(warm_p, backing_file=url,
                              cluster_size=512,
                              cache_quota=quota).close()
            t0 = time.perf_counter()
            with Qcow2Image.open(warm_p, read_only=False) as cache:
                warm_report = warm_cache(cache, trace)
                extents = working_set_extents(
                    trace, size=cache.size, align=cache.cluster_size)
                warm_sum = checksum_extents(cache, extents)
            warm_s = time.perf_counter() - t0
        base.close()

        serial_p = os.path.join(workdir, "serial.qcow2")
        warm_cache_by_boot(trace, base_path, serial_p, quota=quota)
        with Qcow2Image.open(serial_p) as serial:
            serial_sum = checksum_extents(serial, extents)

        log.record_scalar("chunks", size // chunk)
        log.record_scalar("delay_ms", delay * 1e3)
        log.record_scalar("speedup",
                          log.scalars["v1_s"] / log.scalars["v2_s"])
        log.record_scalar("mismatched_reads", mismatches)
        log.record_scalar("warm_s", warm_s)
        log.record_scalar("warm_mb", warm_report.bytes_written / MB)
        log.record_scalar("warm_checksum_ok",
                          1.0 if warm_sum == serial_sum else 0.0)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return log


def _run_c10k(quick: bool = False) -> ExperimentLog:
    """Connection-count sweep of the event-loop engine, 1 -> 256.

    Each client is one raw v2 lock-step socket (no client-side worker
    threads), so N clients means exactly N concurrent requests against
    a storage-latency-shaped driver.  The threaded engine is measured
    once, at its comfortable 6-client point, as the A/B baseline; the
    event loop must match or beat that absolute throughput even at its
    largest client count, while accounting zero payload copies.
    """
    import socket as socketmod

    from repro.remote import BlockServer
    from repro.remote import protocol as wire

    log = ExperimentLog(
        "BENCH_remote_c10k",
        "Event-loop engine throughput vs concurrent connection count")
    sweep = [1, 8, 32] if quick else [1, 2, 4, 8, 16, 32, 64, 128, 256]
    window = 0.6 if quick else 1.5
    delay, read_size, size, workers = 0.002, 4 * KiB, 8 * MiB, 16
    base_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
    workdir = tempfile.mkdtemp(prefix="repro-remote-c10k-", dir=base_dir)
    try:
        base_path = make_sparse_base(
            os.path.join(workdir, "base.raw"), size)
        base = RawImage.open(base_path)
        slow = _SlowReads(base, delay)

        def measure(server: "BlockServer", n_clients: int) -> float:
            """Ops/s summed over n lock-step clients in a time box."""
            start = threading.Barrier(n_clients + 1)
            counts = [0] * n_clients
            failures: list[BaseException] = []

            def client(i: int) -> None:
                try:
                    sock = socketmod.create_connection(
                        (server.host, server.port))
                    sock.settimeout(30)
                    try:
                        wire.send_handshake_request_v2(sock, "base")
                        wire.recv_handshake_response_v2(sock)
                        start.wait(timeout=60)
                        deadline = time.monotonic() + window
                        tag = 0
                        while time.monotonic() < deadline:
                            off = ((i * 131 + tag) * read_size) \
                                % (size - read_size)
                            wire.send_request_v2(sock, tag, wire.Request(
                                wire.REQ_READ, off, read_size, b""))
                            rtag, payload, err = \
                                wire.recv_response_v2(sock)
                            if err is not None or rtag != tag \
                                    or len(payload) != read_size:
                                raise AssertionError("bad response")
                            counts[i] += 1
                            tag = (tag + 1) & 0xFFFF
                    finally:
                        sock.close()
                except BaseException as exc:  # pragma: no cover
                    failures.append(exc)
                    try:
                        start.abort()
                    except Exception:
                        pass

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(n_clients)]
            for t in threads:
                t.start()
            start.wait(timeout=60)
            for t in threads:
                t.join(timeout=120)
            assert not failures, failures
            return sum(counts) / window

        # The A/B baseline: the threaded engine where it is happy.
        with BlockServer(threaded=True, workers=workers) as server:
            server.add_export("base", slow)
            threaded_ops = measure(server, 6)
            snap = server.export_stats("base").summary()
            threaded_copies = snap["bytes_copied"] / max(
                snap["read_ops"], 1)
            log.record_scalar("threaded_errors", snap["errors"])

        series = log.new_series("eventloop_ops_s", unit="ops/s")
        eventloop_copies = 0.0
        errors = 0
        for n in sweep:
            with BlockServer(workers=workers) as server:
                server.add_export("base", slow)
                ops_s = measure(server, n)
                snap = server.export_stats("base").summary()
            series.add(n, ops_s)
            eventloop_copies = snap["bytes_copied"] / max(
                snap["read_ops"], 1)
            errors += snap["errors"]
        base.close()

        log.record_scalar("threaded_6_ops_s", threaded_ops)
        log.record_scalar("eventloop_max_clients", sweep[-1])
        log.record_scalar("eventloop_max_ops_s", series.ys()[-1])
        log.record_scalar("threaded_copies_per_read", threaded_copies)
        log.record_scalar("eventloop_copies_per_read", eventloop_copies)
        log.record_scalar("eventloop_errors", errors)
        log.record_scalar("delay_ms", delay * 1e3)
        log.note(f"lock-step raw v2 clients, {window:g}s window per "
                 f"point, {workers} server workers, {delay * 1e3:g}ms "
                 f"driver latency")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return log


def check_c10k_shape(log: ExperimentLog) -> None:
    """The sweep's qualitative claims, shared by bench and smoke."""
    shape_check(
        log.scalars["eventloop_max_ops_s"]
        >= log.scalars["threaded_6_ops_s"],
        f"the event loop at {log.scalars['eventloop_max_clients']:g} "
        "clients sustains at least the threaded engine's 6-client "
        "throughput")
    shape_check(log.scalars["eventloop_errors"] == 0
                and log.scalars["threaded_errors"] == 0,
                "no request errored anywhere in the sweep")
    shape_check(
        log.scalars["eventloop_copies_per_read"]
        < log.scalars["threaded_copies_per_read"],
        "the zero-copy datapath performs fewer payload copies per "
        "read than the threaded engine")


def test_ext_remote_transparency(benchmark, report):
    log = run_once(benchmark, _run)
    report(log, "case")

    local_cold = log.scalars["local_cold_mb"]
    remote_cold = log.scalars["remote_cold_mb"]
    remote_warm = log.scalars["remote_warm_mb"]
    shape_check(abs(remote_cold - local_cold) < 0.01 * local_cold,
                "NBD-served base moves the same bytes as a local base")
    shape_check(remote_warm < 0.05 * remote_cold,
                "a warm cache keeps the boot off the wire entirely")


def test_ext_remote_concurrent_scaling(benchmark, report):
    log = run_once(benchmark, _run_scaling)
    report(log, "case")

    shape_check(
        log.scalars["parallel_s"] < 0.6 * log.scalars["serialized_s"],
        "reader-writer dispatch beats the serialized per-export mutex")


def test_ext_remote_retry_transparency(benchmark, report):
    log = run_once(benchmark, _run_retry)
    report(log, "case")

    shape_check(log.scalars["mismatched_chunks"] == 0,
                "every byte survives the injected connection drops")
    shape_check(log.scalars["retries"] >= log.scalars["injected_drops"],
                "each drop was absorbed by a client retry")


def test_ext_remote_pipelining(benchmark, report, request):
    quick = request.config.getoption("--quick")
    log = run_once(benchmark, _run_pipeline, quick=quick)
    report(log, "case")

    floor = 2.0 if quick else 3.0
    shape_check(
        log.scalars["speedup"] >= floor,
        f"a depth-8 window amortizes per-request latency "
        f">= {floor}x over lock-step v1")
    shape_check(log.scalars["mismatched_reads"] == 0,
                "pipelined reassembly is byte-exact")
    shape_check(log.scalars["v2_inflight_hwm"] >= 4,
                "the window actually keeps several requests in flight")
    shape_check(log.scalars["warm_checksum_ok"] == 1.0,
                "the parallel warmer lands the serial boot's exact bytes")


def test_ext_remote_c10k(benchmark, report, request):
    quick = request.config.getoption("--quick")
    log = run_once(benchmark, _run_c10k, quick=quick)
    report(log, "clients")
    check_c10k_shape(log)
