"""Extension: the remote block substrate must be traffic-transparent.

The paper's whole evaluation assumes that serving the base remotely
(NFS there, our NBD-style server here) moves exactly the bytes the
image chain requests.  This benchmark replays the CentOS boot twice —
base on a local file vs base served over a real TCP socket — and
asserts the byte-for-byte agreement of the storage traffic, cold and
warm.
"""

import os
import shutil
import tempfile

from benchmarks.conftest import run_once
from repro.bootmodel.vm import make_sparse_base, replay_through_chain
from repro.experiments.common import centos_trace
from repro.bootmodel.profiles import CENTOS_63
from repro.imagefmt import Qcow2Image, RawImage
from repro.imagefmt.chain import create_cache_chain
from repro.metrics.collectors import ExperimentLog
from repro.metrics.reporting import shape_check
from repro.units import MB


def _run() -> ExperimentLog:
    from repro.remote import BlockServer

    log = ExperimentLog(
        "ext-remote",
        "Storage traffic: local base file vs NBD-served base")
    trace = centos_trace()
    quota = 110 * MB
    base_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
    workdir = tempfile.mkdtemp(prefix="repro-remote-bench-",
                               dir=base_dir)
    try:
        base_path = make_sparse_base(
            os.path.join(workdir, "base.raw"), CENTOS_63.vmi_size)

        # Local-file reference.
        chain = create_cache_chain(
            base_path, os.path.join(workdir, "cache-local.qcow2"),
            os.path.join(workdir, "cow-local.qcow2"), quota=quota)
        with chain:
            local_cold = replay_through_chain(
                trace, chain, track_unique=False).base_bytes_read

        # Over the wire.
        base = RawImage.open(base_path)
        with BlockServer() as server:
            server.add_export("centos", base)
            url = server.url("centos")
            cache_p = os.path.join(workdir, "cache-remote.qcow2")
            Qcow2Image.create(cache_p, backing_file=url,
                              cluster_size=512,
                              cache_quota=quota).close()
            cow = Qcow2Image.create(
                os.path.join(workdir, "cow-remote.qcow2"),
                backing_file=cache_p, backing_format="qcow2")
            with cow:
                replay_through_chain(trace, cow, track_unique=False)
            remote_cold = server.export_stats("centos").bytes_read

            cow2 = Qcow2Image.create(
                os.path.join(workdir, "cow-remote2.qcow2"),
                backing_file=cache_p, backing_format="qcow2")
            with cow2:
                replay_through_chain(trace, cow2, track_unique=False)
            remote_warm = server.export_stats("centos").bytes_read \
                - remote_cold
        base.close()

        log.record_scalar("local_cold_mb", local_cold / MB)
        log.record_scalar("remote_cold_mb", remote_cold / MB)
        log.record_scalar("remote_warm_mb", remote_warm / MB)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return log


def test_ext_remote_transparency(benchmark, report):
    log = run_once(benchmark, _run)
    report(log, "case")

    local_cold = log.scalars["local_cold_mb"]
    remote_cold = log.scalars["remote_cold_mb"]
    remote_warm = log.scalars["remote_warm_mb"]
    shape_check(abs(remote_cold - local_cold) < 0.01 * local_cold,
                "NBD-served base moves the same bytes as a local base")
    shape_check(remote_warm < 0.05 * remote_cold,
                "a warm cache keeps the boot off the wire entirely")
