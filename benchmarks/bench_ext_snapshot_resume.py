"""Extension: memory-snapshot caches (paper §8 future work).

"Starting from [memory snapshots] instead of the VM image could
improve the VM starting time even further."  This benchmark shows why
the caching part is essential: a plain snapshot resume transfers the
whole resume working set (~280 MB) per VM and scales *worse* than
booting on 1 GbE, while cached resumes stay flat at a few seconds.
"""

from benchmarks.conftest import run_once
from repro.metrics.reporting import shape_check
from repro.snapshots import run_snapshot_resume


def test_ext_snapshot_resume(benchmark, report):
    axis = [1, 8, 32]
    log = run_once(benchmark, run_snapshot_resume, axis)
    report(log, "# nodes")

    boot = log.get("Cold boot (QCOW2)")
    resume = log.get("Snapshot resume")
    cached = log.get("Snapshot resume - warm cache")

    shape_check(resume.y_at(1) < boot.y_at(1) * 0.6,
                "a single resume is much faster than a boot "
                "(no boot CPU)")
    shape_check(resume.y_at(32) > boot.y_at(32),
                "at scale, uncached resume loses to booting on 1GbE — "
                "its working set is bigger than a boot's")
    shape_check(cached.is_flat(tolerance=0.2),
                "cached resumes stay flat in the node count")
    shape_check(cached.y_at(32) < 0.3 * boot.y_at(32),
                "cached resume 'improves the VM starting time even "
                "further' (§8)")
