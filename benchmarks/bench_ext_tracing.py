"""Extension: tracing must be (nearly) free on the block hot path.

ISSUE 3's observability layer instruments every driver read with a
``block.read`` event behind an ``if TRACER.enabled:`` guard.  The
budget: enabled tracing costs <= 5% on the qcow2 cache-hit read path,
and disabled tracing costs nothing measurable (the guard is one plain
attribute read).

The workload is the hot path the paper cares about: the boot trace's
own read mix (512 B–64 KiB ops, ~8 KiB mean — CentOS averages 32 KiB)
replayed through a fully warmed 512 B-cluster cache chain, every read a
cache hit.  Traced and untraced rounds interleave (so CPU frequency
drift and page-cache state hit both arms equally) and each arm scores
its best-of-rounds, the standard way to strip scheduler noise from a
microbenchmark.

A second round measures *cross-process trace propagation* (DESIGN.md
§10): the same mix served over the v3 wire protocol, traced with no
span open (empty context on every request) versus traced under an open
client span (context stamped on every request, the in-process server
opening a propagated ``export.read`` span per served request).  The
delta is the full price of propagation on the remote path; the budget
is the same <= 5%.
"""

import gc
import os
import shutil
import tempfile
import time

from benchmarks.conftest import run_once
from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.bootmodel.vm import replay_through_chain
from repro.imagefmt import RawImage, create_cache_chain
from repro.metrics.collectors import ExperimentLog
from repro.metrics.reporting import shape_check
from repro.metrics.tracing import TRACER, JsonlSink
from repro.remote import BlockServer, RemoteImage
from repro.units import KiB, MiB


def _run_tracing_overhead(quick: bool = False) -> ExperimentLog:
    log = ExperimentLog(
        "BENCH_tracing_overhead",
        "Traced vs untraced 4 KiB cache-hit reads through a warm "
        "qcow2 chain")
    size = 8 * MiB
    rounds = 7 if quick else 9
    base_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
    workdir = tempfile.mkdtemp(prefix="repro-trace-bench-", dir=base_dir)
    # The benchmark owns the tracer for its duration.
    prior_sink = TRACER.disable() if TRACER.enabled else None
    try:
        base_path = os.path.join(workdir, "base.raw")
        base = RawImage.create(base_path, size)
        base.write(0, os.urandom(size))
        base.close()

        chain = create_cache_chain(
            base_path, os.path.join(workdir, "cache.qcow2"),
            os.path.join(workdir, "cow.qcow2"), quota=2 * size)
        with chain:
            # Warm every cluster so the measured loop is pure hits.
            profile = tiny_profile(vmi_size=size, working_set=size,
                                   boot_time=1.0)
            trace = generate_boot_trace(profile, seed=3)
            replay_through_chain(trace, chain, track_unique=False)
            for off in range(0, size, 64 * KiB):
                chain.read(off, 64 * KiB)

            # The measured workload is the replayer's own read mix.
            ops = [(op.offset, op.length) for op in trace.reads()
                   if op.offset + op.length <= size]
            if quick:
                ops = ops[: len(ops) // 3]
            n_reads = len(ops)

            def read_loop() -> None:
                for off, length in ops:
                    chain.read(off, length)

            read_loop()  # untimed warm-up of both code paths
            disabled_s: list[float] = []
            enabled_s: list[float] = []
            events = 0
            # GC off while timing (as timeit does): the traced arm
            # allocates two dicts per event, and collection pauses
            # landing in one arm but not the other swamp a 5% signal.
            def timed(loop, into: list[float]) -> None:
                gc.collect()
                t0 = time.perf_counter()
                loop()
                into.append(time.perf_counter() - t0)

            gc.disable()
            try:
                for r in range(rounds):
                    # Arm order alternates per round: slow drift (CPU
                    # frequency ramps, cache state) then biases each
                    # arm equally instead of always taxing the second.
                    trace_path = os.path.join(workdir,
                                              f"round{r}.jsonl")
                    if r % 2 == 0:
                        timed(read_loop, disabled_s)
                        TRACER.enable(JsonlSink(trace_path))
                        timed(read_loop, enabled_s)
                        TRACER.disable()  # flush outside the timing
                    else:
                        TRACER.enable(JsonlSink(trace_path))
                        timed(read_loop, enabled_s)
                        TRACER.disable()
                        timed(read_loop, disabled_s)
                    with open(trace_path, encoding="utf-8") as f:
                        events = sum(1 for _ in f)
            finally:
                gc.enable()

        best_off = min(disabled_s)
        best_on = min(enabled_s)
        log.record_scalar("disabled_s", best_off)
        log.record_scalar("enabled_s", best_on)
        log.record_scalar("overhead_pct",
                          (best_on - best_off) / best_off * 100)
        log.record_scalar("reads", n_reads)
        log.record_scalar("rounds", rounds)
        log.record_scalar("events_per_round", events)

        # -- propagation round: the same mix over the v3 wire --------
        # Socket arms need more reads than the local ones: the per-read
        # delta being resolved (~a few µs) must clear scheduler noise
        # on a ~100 µs loopback RTT, so short arms drown the signal.
        remote_ops = ops[: 1000 if not quick else 300]
        # More rounds than the local arms: best-of needs at least one
        # scheduler-quiet window per arm, and socket arms see far more
        # scheduler interference than in-process reads.
        remote_rounds = 5 if quick else 11
        base = RawImage.open(base_path)
        server = BlockServer()
        server.add_export("base", base)
        plain_s: list[float] = []
        propagated_s: list[float] = []
        with RemoteImage.connect(server.url("base")) as img:
            def remote_loop() -> None:
                for off, length in remote_ops:
                    img.read(off, length)

            # Arm A: traced, but no client span open — every request
            # carries an empty context, the server opens no spans.
            def plain_arm() -> None:
                gc.collect()
                t0 = time.perf_counter()
                remote_loop()
                plain_s.append(time.perf_counter() - t0)

            # Arm B: same reads under an open span — context stamped
            # per request, a propagated export.read span served for
            # each.
            def propagated_arm() -> None:
                gc.collect()
                t0 = time.perf_counter()
                with TRACER.span("bench.remote"):
                    remote_loop()
                propagated_s.append(time.perf_counter() - t0)

            remote_loop()  # warm the connection and server threads
            gc.disable()
            try:
                for r in range(remote_rounds):
                    sink_path = os.path.join(workdir,
                                             f"remote{r}.jsonl")
                    TRACER.enable(JsonlSink(sink_path))
                    # Alternate arm order (same rationale as above).
                    if r % 2 == 0:
                        plain_arm()
                        propagated_arm()
                    else:
                        propagated_arm()
                        plain_arm()
                    TRACER.disable()
            finally:
                gc.enable()
        server.close()
        base.close()
        best_plain = min(plain_s)
        best_prop = min(propagated_s)
        log.record_scalar("remote_plain_s", best_plain)
        log.record_scalar("remote_propagated_s", best_prop)
        log.record_scalar(
            "propagation_overhead_pct",
            (best_prop - best_plain) / best_plain * 100)
        log.record_scalar("remote_reads", len(remote_ops))
        log.record_scalar("remote_rounds", remote_rounds)
    finally:
        if prior_sink is not None:
            TRACER.enable(prior_sink)
        shutil.rmtree(workdir, ignore_errors=True)
    return log


def test_ext_tracing_overhead(benchmark, report, request):
    quick = request.config.getoption("--quick")
    log = run_once(benchmark, _run_tracing_overhead, quick=quick)
    report(log, "case")

    # Quick mode times fewer reads, so fixed jitter weighs more.
    ceiling = 8.0 if quick else 5.0
    shape_check(
        log.scalars["overhead_pct"] <= ceiling,
        f"enabled tracing costs <= {ceiling}% on the cache-hit path")
    shape_check(
        log.scalars["events_per_round"] >= log.scalars["reads"],
        "the traced rounds actually emitted per-read events")
    # Remote rounds ride real sockets, so the quick ceiling is looser
    # still; full scale holds the same 5% budget as the local path.
    remote_ceiling = 12.0 if quick else 5.0
    shape_check(
        log.scalars["propagation_overhead_pct"] <= remote_ceiling,
        f"trace propagation costs <= {remote_ceiling}% on the remote "
        f"round")
