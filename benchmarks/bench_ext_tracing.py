"""Extension: tracing must be (nearly) free on the block hot path.

ISSUE 3's observability layer instruments every driver read with a
``block.read`` event behind an ``if TRACER.enabled:`` guard.  The
budget: enabled tracing costs <= 5% on the qcow2 cache-hit read path,
and disabled tracing costs nothing measurable (the guard is one plain
attribute read).

The workload is the hot path the paper cares about: the boot trace's
own read mix (512 B–64 KiB ops, ~8 KiB mean — CentOS averages 32 KiB)
replayed through a fully warmed 512 B-cluster cache chain, every read a
cache hit.  Traced and untraced rounds interleave (so CPU frequency
drift and page-cache state hit both arms equally) and each arm scores
its best-of-rounds, the standard way to strip scheduler noise from a
microbenchmark.
"""

import gc
import os
import shutil
import tempfile
import time

from benchmarks.conftest import run_once
from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.bootmodel.vm import replay_through_chain
from repro.imagefmt import RawImage, create_cache_chain
from repro.metrics.collectors import ExperimentLog
from repro.metrics.reporting import shape_check
from repro.metrics.tracing import TRACER, JsonlSink
from repro.units import KiB, MiB


def _run_tracing_overhead(quick: bool = False) -> ExperimentLog:
    log = ExperimentLog(
        "BENCH_tracing_overhead",
        "Traced vs untraced 4 KiB cache-hit reads through a warm "
        "qcow2 chain")
    size = 8 * MiB
    rounds = 7 if quick else 9
    base_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
    workdir = tempfile.mkdtemp(prefix="repro-trace-bench-", dir=base_dir)
    # The benchmark owns the tracer for its duration.
    prior_sink = TRACER.disable() if TRACER.enabled else None
    try:
        base_path = os.path.join(workdir, "base.raw")
        base = RawImage.create(base_path, size)
        base.write(0, os.urandom(size))
        base.close()

        chain = create_cache_chain(
            base_path, os.path.join(workdir, "cache.qcow2"),
            os.path.join(workdir, "cow.qcow2"), quota=2 * size)
        with chain:
            # Warm every cluster so the measured loop is pure hits.
            profile = tiny_profile(vmi_size=size, working_set=size,
                                   boot_time=1.0)
            trace = generate_boot_trace(profile, seed=3)
            replay_through_chain(trace, chain, track_unique=False)
            for off in range(0, size, 64 * KiB):
                chain.read(off, 64 * KiB)

            # The measured workload is the replayer's own read mix.
            ops = [(op.offset, op.length) for op in trace.reads()
                   if op.offset + op.length <= size]
            if quick:
                ops = ops[: len(ops) // 3]
            n_reads = len(ops)

            def read_loop() -> None:
                for off, length in ops:
                    chain.read(off, length)

            read_loop()  # untimed warm-up of both code paths
            disabled_s: list[float] = []
            enabled_s: list[float] = []
            events = 0
            # GC off while timing (as timeit does): the traced arm
            # allocates two dicts per event, and collection pauses
            # landing in one arm but not the other swamp a 5% signal.
            gc.disable()
            try:
                for r in range(rounds):
                    gc.collect()
                    t0 = time.perf_counter()
                    read_loop()
                    disabled_s.append(time.perf_counter() - t0)

                    trace_path = os.path.join(workdir,
                                              f"round{r}.jsonl")
                    TRACER.enable(JsonlSink(trace_path))
                    gc.collect()
                    t0 = time.perf_counter()
                    read_loop()
                    enabled_s.append(time.perf_counter() - t0)
                    TRACER.disable()  # flush lands outside the timing
                    with open(trace_path, encoding="utf-8") as f:
                        events = sum(1 for _ in f)
            finally:
                gc.enable()

        best_off = min(disabled_s)
        best_on = min(enabled_s)
        log.record_scalar("disabled_s", best_off)
        log.record_scalar("enabled_s", best_on)
        log.record_scalar("overhead_pct",
                          (best_on - best_off) / best_off * 100)
        log.record_scalar("reads", n_reads)
        log.record_scalar("rounds", rounds)
        log.record_scalar("events_per_round", events)
    finally:
        if prior_sink is not None:
            TRACER.enable(prior_sink)
        shutil.rmtree(workdir, ignore_errors=True)
    return log


def test_ext_tracing_overhead(benchmark, report, request):
    quick = request.config.getoption("--quick")
    log = run_once(benchmark, _run_tracing_overhead, quick=quick)
    report(log, "case")

    # Quick mode times fewer reads, so fixed jitter weighs more.
    ceiling = 8.0 if quick else 5.0
    shape_check(
        log.scalars["overhead_pct"] <= ceiling,
        f"enabled tracing costs <= {ceiling}% on the cache-hit path")
    shape_check(
        log.scalars["events_per_round"] >= log.scalars["reads"],
        "the traced rounds actually emitted per-read events")
