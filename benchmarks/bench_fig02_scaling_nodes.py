"""Figure 2: booting time of a CentOS VM on many compute nodes
simultaneously, single VMI, plain QCOW2 over NFS.

Paper claims reproduced here:
* on 1 GbE, boot time grows (roughly linearly past ~8 nodes) with the
  node count — the network to the storage node saturates;
* on 32 Gb InfiniBand, boot time stays constant up to 64 nodes.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_fig02_scaling_nodes
from repro.metrics.reporting import shape_check


def test_fig02(benchmark, node_axis, report):
    log = run_once(benchmark, run_fig02_scaling_nodes, node_axis)
    report(log, "# nodes")

    gbe = log.get("QCOW2 - 1GbE")
    ib = log.get("QCOW2 - 32GbIB")
    shape_check(
        gbe.is_monotonic_increasing(tolerance=0.05),
        "1GbE boot time grows with the node count")
    shape_check(
        gbe.growth_factor() > 1.5,
        "1GbE slows down substantially by 64 nodes (paper: ~35s → ~140s)")
    shape_check(
        ib.is_flat(tolerance=0.25),
        "32Gb IB boot time is constant in the node count")
    shape_check(
        gbe.ys()[-1] > ib.ys()[-1] * 1.5,
        "at 64 nodes 1GbE is far slower than IB")
