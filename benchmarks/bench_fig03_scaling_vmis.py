"""Figure 3: booting time of 64 CentOS VMs, scaling the number of
distinct VMIs, plain QCOW2 over NFS.

Paper claims reproduced here:
* regardless of the network, boot time rises steeply with the number
  of independent VMIs — the storage node's disks queue up;
* the two networks converge at high VMI counts (the disk, not the
  network, is the bottleneck; paper: ~800–900 s at 64 VMIs).
"""

from benchmarks.conftest import run_once
from repro.experiments import run_fig03_scaling_vmis
from repro.metrics.reporting import shape_check


def test_fig03(benchmark, vmi_axis, report):
    log = run_once(benchmark, run_fig03_scaling_vmis, vmi_axis)
    report(log, "# VMIs")

    gbe = log.get("QCOW2 - 1GbE")
    ib = log.get("QCOW2 - 32GbIB")
    for series in (gbe, ib):
        shape_check(
            series.ys()[-1] > 4 * series.y_at(1),
            f"{series.name}: 64 VMIs are several times slower than 1 "
            f"(disk queueing)")
    shape_check(
        ib.is_monotonic_increasing(tolerance=0.05),
        "IB curve rises with the VMI count")
    last = vmi_axis[-1]
    shape_check(
        abs(gbe.y_at(last) - ib.y_at(last))
        < 0.2 * max(gbe.y_at(last), ib.y_at(last)),
        "at many VMIs both networks converge (disk-bound)")
    # At a single VMI the network still separates them.
    shape_check(gbe.y_at(1) > ib.y_at(1) * 1.5,
                "at 1 VMI the 1GbE network dominates (Figure 2 edge)")
