"""Figure 8: cache creation overhead with increasing cache quota
(one storage node, one compute node, 1 GbE).

Paper claims reproduced here:
* booting from a warm cache costs about the same as plain QCOW2;
* a cold cache written synchronously to the compute node's *disk*
  slows the boot down badly, and more so with a larger quota;
* staging the cold cache in *memory* (the Figure 7 arrangement)
  removes that overhead almost entirely.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_fig08_cache_creation
from repro.metrics.reporting import shape_check


def test_fig08(benchmark, quota_axis_mb, report):
    log = run_once(benchmark, run_fig08_cache_creation, quota_axis_mb)
    report(log, "quota MB")

    warm = log.get("Warm cache")
    cold_mem = log.get("Cold cache - on mem")
    cold_disk = log.get("Cold cache - on disk")
    plain = log.get("QCOW2")

    qcow2_time = plain.ys()[0]
    for x, y in warm.points:
        shape_check(abs(y - qcow2_time) < 0.15 * qcow2_time,
                    f"warm cache at {x} MB boots like QCOW2")
    for x, y in cold_mem.points:
        shape_check(abs(y - qcow2_time) < 0.15 * qcow2_time,
                    f"memory-staged cold cache at {x} MB ~ QCOW2")
    shape_check(
        cold_disk.ys()[-1] > 1.5 * qcow2_time,
        "disk-backed cold cache is much slower than QCOW2")
    shape_check(
        cold_disk.is_monotonic_increasing(tolerance=0.05),
        "disk-backed cold cache slows down as the quota grows")
