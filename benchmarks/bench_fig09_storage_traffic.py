"""Figure 9: observed traffic at the storage node with increasing cache
quota, for 512 B and 64 KiB cache cluster sizes.

Measured on real image files through the reproduced driver.

Paper claims reproduced here:
* a cold cache with the default 64 KiB clusters causes *more* traffic
  than plain QCOW2 (partial-cluster cache writes fetch whole clusters
  from the base);
* reducing the cache cluster size to 512 B brings cold-cache traffic
  back to QCOW2's level;
* warm-cache traffic shrinks as the quota grows (more of the boot is
  absorbed).
"""

from benchmarks.conftest import run_once
from repro.experiments import run_fig09_storage_traffic
from repro.metrics.reporting import shape_check


def test_fig09(benchmark, quota_axis_mb, report):
    log = run_once(benchmark, run_fig09_storage_traffic, quota_axis_mb)
    report(log, "quota MB")

    cold_64k = log.get("Cold cache - cluster = 64KB")
    cold_512 = log.get("Cold cache - cluster = 512B")
    warm_512 = log.get("Warm cache - cluster = 512B")
    plain = log.get("QCOW2")
    qcow2_mb = plain.ys()[0]

    shape_check(
        max(cold_64k.ys()) > 1.5 * qcow2_mb,
        "cold cache at 64 KiB clusters amplifies traffic beyond QCOW2 "
        "(the paper's 'potentially unscalable cold cache')")
    for x, y in cold_512.points:
        shape_check(y < 1.1 * qcow2_mb,
                    f"512 B cold cache at {x} MB stays at QCOW2 traffic")
    ys = warm_512.ys()
    shape_check(all(b <= a * 1.02 for a, b in zip(ys, ys[1:])),
                "warm traffic decreases with a bigger quota")
    shape_check(
        warm_512.ys()[-1] < 0.2 * qcow2_mb,
        "a full-working-set warm cache nearly eliminates base traffic")
