"""Figure 10: the final arrangement for cache creation — 512 B cache
clusters, cold cache staged in memory (Figure 7).

Boot times come from the one-node simulated testbed; transfer sizes
are measured on real image files.

Paper claims reproduced here:
* with the right cluster size and memory staging, cold-cache and
  warm-cache boot times both sit at the plain-QCOW2 level — "cache
  creation [is] scalable with near-zero overhead";
* warm-cache transfer size falls towards zero once the quota covers
  the ~90 MB CentOS working set, while cold/QCOW2 transfers stay at
  the full boot volume.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_fig10_final_arrangement
from repro.metrics.reporting import shape_check


def test_fig10(benchmark, quota_axis_mb, report):
    log = run_once(benchmark, run_fig10_final_arrangement,
                   quota_axis_mb)
    report(log, "quota MB")

    t_plain = log.get("QCOW2 - boot time").ys()[0]
    for name in ("Warm cache - boot time", "Cold cache - boot time"):
        for x, y in log.get(name).points:
            shape_check(abs(y - t_plain) < 0.15 * t_plain,
                        f"{name} at {x} MB within 15% of QCOW2")

    x_warm = log.get("Warm cache - tx size")
    x_cold = log.get("Cold cache - tx size")
    x_plain = log.get("QCOW2 - tx size")
    qcow2_mb = x_plain.ys()[0]
    shape_check(x_warm.ys()[-1] < 0.2 * qcow2_mb,
                "warm tx size collapses once quota >= working set")
    for x, y in x_cold.points:
        shape_check(y < 1.1 * qcow2_mb,
                    f"cold tx at {x} MB does not exceed QCOW2")
    largest = max(quota_axis_mb)
    if largest >= 100:
        shape_check(
            x_warm.y_at(largest) < x_warm.ys()[0],
            "bigger quota absorbs more of the boot (tx falls)")
