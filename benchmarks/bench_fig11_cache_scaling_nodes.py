"""Figure 11: caching a single VMI at the compute nodes over 1 GbE,
scaling the number of nodes.

Paper claims reproduced here:
* with a cold cache, simultaneous boots cost about the same as plain
  QCOW2 (the memory-staged cache adds no overhead);
* with a warm cache, booting on 64 nodes costs about the same as
  booting a single VM — the network bottleneck is gone.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_fig11_cached_scaling_nodes
from repro.experiments.scaling import single_vm_reference
from repro.metrics.reporting import shape_check


def test_fig11(benchmark, node_axis, report):
    log = run_once(benchmark, run_fig11_cached_scaling_nodes, node_axis)
    report(log, "# nodes")

    warm = log.get("Warm cache")
    cold = log.get("Cold cache")
    plain = log.get("QCOW2")

    shape_check(warm.is_flat(tolerance=0.2),
                "warm-cache boot time is flat in the node count")
    single = single_vm_reference("1gbe")
    shape_check(
        warm.ys()[-1] < 1.25 * single,
        "64 warm boots cost about one uncontended boot "
        "(the paper's headline claim)")
    last = node_axis[-1]
    shape_check(
        abs(cold.y_at(last) - plain.y_at(last))
        < 0.25 * plain.y_at(last),
        "cold cache costs about the same as plain QCOW2")
    shape_check(
        plain.y_at(last) > warm.y_at(last) * 1.5,
        "at 64 nodes the warm cache clearly beats QCOW2 on 1GbE")
