"""Figure 12: caching many VMIs at the compute nodes' disks, 64 nodes,
both networks.

Paper claims reproduced here:
* warm caches keep boot time flat in the number of VMIs — both the
  network and the storage-disk bottleneck are bypassed;
* cold caches cost about the same as plain QCOW2 (rising with VMIs);
* on 1 GbE at one VMI, the warm/QCOW2 gap is the network bottleneck
  of Figure 11.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_fig12_cached_scaling_vmis
from repro.metrics.reporting import shape_check


def test_fig12(benchmark, vmi_axis, report):
    log = run_once(benchmark, run_fig12_cached_scaling_vmis, vmi_axis)
    report(log, "# VMIs")

    for net in ("1GbE", "32GbIB"):
        warm = log.get(f"Warm cache - {net}")
        cold = log.get(f"Cold cache - {net}")
        plain = log.get(f"QCOW2 - {net}")
        shape_check(warm.is_flat(tolerance=0.25),
                    f"{net}: warm-cache boot time flat in #VMIs")
        last = vmi_axis[-1]
        shape_check(
            plain.y_at(last) > 3 * warm.y_at(last),
            f"{net}: warm caches dodge the storage-disk collapse")
        shape_check(
            abs(cold.y_at(last) - plain.y_at(last))
            < 0.3 * plain.y_at(last),
            f"{net}: cold cache ~ plain QCOW2 at many VMIs")
