"""Figure 14: caching many VMIs on the storage node's memory, 64
nodes, both networks.

Paper claims reproduced here:
* on 32 Gb IB, warm caches in storage memory resolve the only
  remaining (disk) bottleneck — flat and low;
* on 1 GbE, the disk bottleneck is solved but the network bound
  remains: warm at 64 VMIs ≈ QCOW2 at 1 VMI (network-limited), far
  below QCOW2 at 64 VMIs (disk-limited);
* cold boots are slightly slower than QCOW2 (cache transfer charged).
"""

from benchmarks.conftest import run_once
from repro.experiments import run_fig14_storage_mem_scaling_vmis
from repro.metrics.reporting import shape_check


def test_fig14(benchmark, vmi_axis, report):
    log = run_once(benchmark, run_fig14_storage_mem_scaling_vmis,
                   vmi_axis)
    report(log, "# VMIs")

    last = vmi_axis[-1]
    ib_warm = log.get("Warm cache - 32GbIB")
    ib_plain = log.get("QCOW2 - 32GbIB")
    shape_check(ib_warm.is_flat(tolerance=0.25),
                "IB: warm storage-memory caches are flat in #VMIs")
    shape_check(
        ib_plain.y_at(last) > 3 * ib_warm.y_at(last),
        "IB: the disk bottleneck is fully resolved "
        "('without any overhead')")

    gbe_warm = log.get("Warm cache - 1GbE")
    gbe_plain = log.get("QCOW2 - 1GbE")
    shape_check(
        gbe_plain.y_at(last) > 2 * gbe_warm.y_at(last),
        "1GbE: warm caches still dodge the disk collapse")
    shape_check(
        gbe_warm.y_at(last) > 1.5 * ib_warm.y_at(last),
        "1GbE: the network bottleneck remains for storage-memory "
        "caches (unlike compute-disk caches)")
