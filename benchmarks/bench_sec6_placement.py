"""Section 6: cache placement — compute-node disk vs storage-node
memory, plus the Algorithm 1 walkthrough.

Paper claims reproduced here:
* warm-cache boot time differs only marginally between the two
  placements (paper: "at most 1% difference"; we accept <10% — the
  direction and negligibility matter, the digit depends on disk
  streaming details);
* Algorithm 1 exercises all three branches across deployment waves.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_sec6_placement
from repro.experiments.placement_exp import run_algorithm1_walkthrough
from repro.metrics.reporting import shape_check


def test_sec6_placement(benchmark, report):
    log = run_once(benchmark, run_sec6_placement)
    report(log, "network #")

    for net in ("ib", "1gbe"):
        diff = log.scalars[f"{net}_difference_pct"]
        shape_check(
            diff < 10.0,
            f"{net}: placement difference is small ({diff:.1f}%; "
            f"paper: at most 1%)")


def test_sec6_algorithm1(benchmark, report):
    log = run_once(benchmark, run_algorithm1_walkthrough)
    report(log, "wave")

    shape_check(log.scalars["wave1_cold"] > 0,
                "wave 1 runs the cold branch")
    shape_check(log.scalars["wave2_local_warm"] > 0,
                "wave 2 reuses local caches (branch 1)")
    shape_check(log.scalars["wave2_storage_warm"] > 0,
                "wave 2's new nodes chain to the storage cache "
                "(branch 2)")
    shape_check(
        log.scalars["wave3_local_warm"]
        > log.scalars["wave2_local_warm"],
        "by wave 3 every node serves from its local cache")
