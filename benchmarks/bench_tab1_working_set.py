"""Table 1: read working set size of various VMIs for booting the VM.

Measured on real image files: a plain QCOW2 overlay on a raw base, the
boot trace replayed through the reproduced driver, unique base-image
bytes counted at the base driver.

Paper values: CentOS 6.3 → 85.2 MB, Debian 6.0.7 → 24.9 MB, Windows
Server 2012 → 195.8 MB.  The reproduction must land within 15 % (the
traces are calibrated to these numbers; the remaining delta is CoW
fill amplification from guest writes, which the real driver performs
just as QEMU does).
"""

from benchmarks.conftest import run_once
from repro.experiments import run_tab1_working_sets
from repro.experiments.microbench import PAPER_TABLE1_MB
from repro.metrics.reporting import format_comparison, shape_check


def test_tab1(benchmark, report):
    log = run_once(benchmark, run_tab1_working_sets)
    report(log, "os #")

    for name, paper_mb in PAPER_TABLE1_MB.items():
        measured = log.scalars[f"{name}_unique_mb"]
        print(format_comparison(name, paper_mb, round(measured, 1),
                                " MB"))
        shape_check(
            abs(measured - paper_mb) < 0.15 * paper_mb,
            f"{name}: working set within 15% of the paper")
    # The ordering claim of §2.3: Debian < CentOS < Windows, all far
    # below a 250 MB cache entry.
    c = log.scalars["centos-6.3_unique_mb"]
    d = log.scalars["debian-6.0.7_unique_mb"]
    w = log.scalars["windows-server-2012_unique_mb"]
    shape_check(d < c < w, "working sets order: Debian < CentOS < Windows")
    shape_check(w < 250, "largest working set fits a 250 MB cache entry")
