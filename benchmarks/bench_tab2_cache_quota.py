"""Table 2: cache quota necessary for various VMIs (512 B clusters).

Measured on real image files: a cache image is warmed by a sample boot
(§3.2) and its physical file size read back — exactly what an operator
budgets as the quota.

Paper values: CentOS → 93 MB, Windows → 201 MB, Debian → 40 MB; the
paper notes these exceed Table 1 by QCOW2 metadata.
"""

from benchmarks.conftest import run_once
from repro.experiments import run_tab1_working_sets, run_tab2_cache_quota
from repro.experiments.microbench import PAPER_TABLE2_MB
from repro.metrics.reporting import format_comparison, shape_check


def test_tab2(benchmark, report):
    log = run_once(benchmark, run_tab2_cache_quota)
    report(log, "os #")

    for name, paper_mb in PAPER_TABLE2_MB.items():
        measured = log.scalars[f"{name}_cache_mb"]
        print(format_comparison(name, paper_mb, round(measured, 1),
                                " MB"))
    # CentOS and Windows land close; Debian's paper number carries an
    # unusually large metadata overhead we do not reproduce (ours is
    # the ~4-6% of a 512B-cluster QCOW2), so only bound it from below.
    shape_check(
        abs(log.scalars["centos-6.3_cache_mb"] - 93) < 0.15 * 93,
        "CentOS warm cache size within 15% of the paper's 93 MB")
    shape_check(
        abs(log.scalars["windows-server-2012_cache_mb"] - 201)
        < 0.15 * 201,
        "Windows warm cache size within 15% of the paper's 201 MB")
    shape_check(
        log.scalars["debian-6.0.7_cache_mb"] > 24.9,
        "Debian cache exceeds its Table 1 working set (metadata)")

    # Table 2 > Table 1 for every OS ("slightly bigger ... caused by
    # the meta data added by QCOW2").
    tab1 = run_tab1_working_sets()
    for name in PAPER_TABLE2_MB:
        shape_check(
            log.scalars[f"{name}_cache_mb"]
            > tab1.scalars[f"{name}_unique_mb"],
            f"{name}: cache file size exceeds the raw working set")
