"""Benchmark harness configuration.

Every ``bench_*.py`` regenerates one table or figure of the paper: it
runs the matching :mod:`repro.experiments` runner under
pytest-benchmark, prints the series the paper plots, saves the raw
numbers to ``benchmarks/results/<id>.json`` (consumed by
EXPERIMENTS.md), and asserts the paper's qualitative claims as shape
checks.

Scale control: the default ("quick") axes keep the endpoints and the
crossover region of each figure so the whole suite finishes in
minutes.  Set ``REPRO_BENCH_FULL=1`` for the paper's complete axes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import (
    FULL_NODE_AXIS,
    FULL_VMI_AXIS,
    QUICK_NODE_AXIS,
    QUICK_VMI_AXIS,
)
from repro.experiments.microbench import (
    FULL_QUOTA_AXIS_MB,
    QUICK_QUOTA_AXIS_MB,
)
from repro.metrics import format_series_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="smoke-scale axes for CI: smaller transfers and shorter "
             "injected delays, relaxed shape-check floors")


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def node_axis() -> list[int]:
    return FULL_NODE_AXIS if full_scale() else QUICK_NODE_AXIS


@pytest.fixture(scope="session")
def vmi_axis() -> list[int]:
    return FULL_VMI_AXIS if full_scale() else QUICK_VMI_AXIS


@pytest.fixture(scope="session")
def quota_axis_mb() -> list[int]:
    return FULL_QUOTA_AXIS_MB if full_scale() else QUICK_QUOTA_AXIS_MB


@pytest.fixture
def report(request):
    """Print an ExperimentLog and persist it for EXPERIMENTS.md.

    Only full-scale runs may touch ``benchmarks/results/`` — that
    directory is the committed paper-scale record.  ``--quick`` runs
    land in the gitignored ``benchmarks/results/quick/`` scratch dir so
    a CI smoke on a loaded machine can never overwrite the record.
    """
    quick = request.config.getoption("--quick")

    def _report(log, x_label: str):
        print()
        print(format_series_table(log, x_label))
        out_dir = (os.path.join(RESULTS_DIR, "quick") if quick
                   else RESULTS_DIR)
        path = log.save(out_dir)
        print(f"[saved {path}]")
        return log

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic and heavy; statistical rounds
    would only repeat identical work.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
