#!/usr/bin/env python3
"""Elastic web scale-out: the paper's motivating IaaS scenario.

A web service running on a 1 GbE cluster gets a traffic spike and asks
the cloud for 48 more VMs of its (CentOS-based) image — "the promise of
elastic computing is instantaneous creation of virtual machines" (§1).
We deploy the same spike three ways and compare:

* plain on-demand QCOW2 (the state of the art the paper starts from);
* VMI caches on the compute nodes' disks, cold (first ever scale-out);
* the same, warm (every later scale-out).

Run:  python examples/elastic_web_scaleout.py
"""

from repro.bootmodel import CENTOS_63, generate_boot_trace
from repro.cluster import Cloud
from repro.units import format_size

N_NODES = 48


def deploy(cache_mode: str, *, prewarm: bool) -> tuple[float, int, str]:
    cloud = Cloud(n_compute=N_NODES, network="1gbe",
                  cache_mode=cache_mode)
    trace = generate_boot_trace(CENTOS_63, seed=1)
    cloud.register_vmi("webapp-centos", CENTOS_63.vmi_size, trace)
    if prewarm:
        cloud.start_vms([("webapp-centos", N_NODES)])
        cloud.shutdown_all()
    result = cloud.start_vms([("webapp-centos", N_NODES)])
    decisions = sorted(set(result.decisions.values()))
    return (result.mean_boot_time,
            result.scenario.storage_nfs_bytes,
            "/".join(decisions))


def main() -> None:
    print(f"scale-out: +{N_NODES} VMs of a CentOS image over 1 GbE\n")
    rows = [
        ("plain QCOW2", *deploy("none", prewarm=False)),
        ("VMI caches, cold", *deploy("compute-disk", prewarm=False)),
        ("VMI caches, warm", *deploy("compute-disk", prewarm=True)),
    ]
    print(f"{'configuration':<22} {'mean boot':>10} "
          f"{'storage traffic':>16}  decisions")
    for name, boot, traffic, decisions in rows:
        print(f"{name:<22} {boot:>9.1f}s {format_size(traffic):>16}  "
              f"{decisions}")

    qcow2 = rows[0][1]
    warm = rows[2][1]
    print(f"\n=> warm VMI caches brought the scale-out from "
          f"{qcow2:.0f}s down to {warm:.0f}s per VM "
          f"({qcow2 / warm:.1f}x), with almost no storage traffic")


if __name__ == "__main__":
    main()
