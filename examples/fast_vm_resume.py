#!/usr/bin/env python3
"""Fast VM start via cached memory snapshots (the paper's §8 idea).

Instead of booting a fresh VM (tens of seconds of guest CPU work), an
IaaS can resume a pre-booted snapshot — if it can move the resume
working set (~280 MB of saved RAM) to the host quickly enough.  This
example starts 32 VMs three ways on a 1 GbE cluster and shows why the
snapshot path *needs* the VMI-cache mechanism to win at scale.

Run:  python examples/fast_vm_resume.py
"""

from repro.metrics import format_series_table
from repro.snapshots import CENTOS_SNAPSHOT, run_snapshot_resume


def main() -> None:
    print("starting 1..32 VMs over 1 GbE: cold boot vs snapshot "
          "resume vs cached resume\n")
    log = run_snapshot_resume([1, 8, 32])
    print(format_series_table(log, "# nodes"))

    boot = log.get("Cold boot (QCOW2)")
    resume = log.get("Snapshot resume")
    cached = log.get("Snapshot resume - warm cache")
    print(f"""
reading the table:
* one VM: resume ({resume.y_at(1):.0f}s) already beats booting
  ({boot.y_at(1):.0f}s) — the guest skips its boot CPU work entirely;
* 32 VMs: plain resume collapses to {resume.y_at(32):.0f}s — worse
  than booting! Each resume pulls
  {CENTOS_SNAPSHOT.resume_working_set / 1e6:.0f} MB of saved RAM
  through the shared 1 GbE link;
* with the resume working set in per-node cache images (same chain,
  same quota/CoR machinery as VMI caches), 32 resumes take
  {cached.y_at(32):.1f}s — flat, and {boot.y_at(32) / cached.y_at(32):.0f}x
  faster than booting.""")


if __name__ == "__main__":
    main()
