#!/usr/bin/env python3
"""HPC parameter sweep: 64 worker VMs from one image, InfiniBand.

Section 2.1's single-VMI scenario: "high-performance computations with
many worker nodes of the same type, as with parameter sweep
applications".  The sweep repeatedly boots a fleet of identical worker
VMs (one batch per parameter block); the VMI cache makes every batch
after the first start as fast as a single VM.

Run:  python examples/hpc_parameter_sweep.py
"""

from repro.bootmodel import CENTOS_63, generate_boot_trace
from repro.cluster import Cloud
from repro.units import format_size

N_WORKERS = 64
N_BATCHES = 3


def main() -> None:
    print(f"parameter sweep: {N_BATCHES} batches x {N_WORKERS} worker "
          f"VMs, one VMI, 32 Gb InfiniBand\n")
    for mode, label in (("none", "plain QCOW2"),
                        ("compute-disk", "VMI caches")):
        cloud = Cloud(n_compute=N_WORKERS, network="ib",
                      cache_mode=mode)
        trace = generate_boot_trace(CENTOS_63, seed=1)
        cloud.register_vmi("worker", CENTOS_63.vmi_size, trace)
        print(f"--- {label} ---")
        for batch in range(1, N_BATCHES + 1):
            result = cloud.start_vms([("worker", N_WORKERS)])
            print(f"  batch {batch}: mean boot "
                  f"{result.mean_boot_time:6.1f}s, last worker ready "
                  f"at {result.scenario.makespan:6.1f}s (sim time), "
                  f"storage traffic "
                  f"{format_size(result.scenario.storage_nfs_bytes)}")
            cloud.shutdown_all()
        print()

    print("=> with caches, every batch after the first boots at "
          "single-VM speed;\n   the storage node serves (almost) "
          "no bytes once the workers hold warm caches")


if __name__ == "__main__":
    main()
