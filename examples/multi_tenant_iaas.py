#!/usr/bin/env python3
"""Multi-tenant IaaS: many users, many images, Algorithm 1 end to end.

Section 2.2's many-VMI scenario: tenants boot *different* images
simultaneously, so the storage node's disks — not the network — become
the bottleneck.  This example runs a day-in-the-life sequence on the
full Algorithm 1 deployment (caches at both the compute nodes and the
storage node's memory) with the cache-aware scheduler, and shows how
the decision mix shifts from cold to warm as the cloud heats up.

Run:  python examples/multi_tenant_iaas.py
"""

from collections import Counter

from repro.bootmodel import CENTOS_63, DEBIAN_607, generate_boot_trace
from repro.cluster import Cloud
from repro.units import format_size

N_NODES = 32
TENANT_VMIS = [
    ("tenant-a/web", CENTOS_63),
    ("tenant-b/api", CENTOS_63),
    ("tenant-c/db", DEBIAN_607),
    ("tenant-d/batch", DEBIAN_607),
]


def main() -> None:
    cloud = Cloud(n_compute=N_NODES, network="1gbe",
                  cache_mode="algorithm1")
    for i, (vmi_id, profile) in enumerate(TENANT_VMIS):
        trace = generate_boot_trace(profile, seed=i)
        cloud.register_vmi(vmi_id, profile.vmi_size, trace)

    waves = [
        ("morning: every tenant starts 4 VMs",
         [(vmi_id, 4) for vmi_id, _ in TENANT_VMIS]),
        ("noon: tenants a+c scale out by 8",
         [("tenant-a/web", 8), ("tenant-c/db", 8)]),
        ("evening: everyone redeploys 4 VMs",
         [(vmi_id, 4) for vmi_id, _ in TENANT_VMIS]),
    ]

    for label, request in waves:
        result = cloud.start_vms(request)
        mix = Counter(result.decisions.values())
        print(f"{label}")
        print(f"  mean boot {result.mean_boot_time:6.1f}s | "
              f"storage traffic "
              f"{format_size(result.scenario.storage_nfs_bytes):>9} | "
              f"decisions: {dict(mix)}")
        cloud.shutdown_all()

    print(f"\nscheduler: {cloud.scheduler.stats.warm_placements} warm / "
          f"{cloud.scheduler.stats.cold_placements} cold placements")
    print(f"storage memory used by the cloud-level cache pool: "
          f"{format_size(cloud.testbed.storage.memory.used_bytes)} "
          f"({cloud.registry.storage_pool.stats.insertions} caches)")
    for vmi_id, _ in TENANT_VMIS:
        print(f"  {vmi_id}: warm on "
              f"{len(cloud.warm_nodes(vmi_id))} nodes")
    print("\n=> later waves run almost entirely on warm caches; the "
          "storage node's disks and NIC stay idle")


if __name__ == "__main__":
    main()
