#!/usr/bin/env python3
"""Quickstart: build a VMI cache chain on real files and boot from it.

Walks the paper's §4.4 workflow end to end:

1. create a base VMI (raw file on the "storage node");
2. create a cache image backed by it (512 B clusters, 64 MiB quota);
3. create a CoW overlay backed by the cache and "boot" a VM from it by
   replaying a synthetic boot trace;
4. boot a second VM from the now-warm cache and compare the traffic
   that reached the base image;
5. deploy 4 VMs of the same VMI on a simulated 2-node cluster.

Run:  python examples/quickstart.py [--trace PATH] [--telemetry]
                                    [--prefetch]

With ``--trace`` every step writes structured spans/events to a JSONL
file; render it with ``python tools/boot_report.py PATH``.  With
``--telemetry`` the run hosts the embedded HTTP telemetry endpoint
(DESIGN.md §10) and scrapes its /metrics and /healthz at the end, the
way an operator's ``curl`` would.  With ``--prefetch`` the demo adds
the predictive-prefetch datapath (DESIGN.md §12): the base is served
over a real socket with wire compression (protocol v4), a prefetch
plan is mined from the first boot, and a fresh cold boot streams the
plan into its cache ahead of the demand reads.
"""

import argparse
import os
import tempfile
import urllib.request

from repro.bootmodel import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.bootmodel.vm import replay_through_chain
from repro.cluster.middleware import Cloud
from repro.imagefmt import Qcow2Image, RawImage, create_cache_chain
from repro.metrics.tracing import TRACER, JsonlSink
from repro.units import MiB, format_size


def main() -> None:
    parser = argparse.ArgumentParser(
        description="VMI cache chain quickstart")
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL boot trace (see tools/boot_report.py)")
    parser.add_argument(
        "--workdir", metavar="DIR", default=None,
        help="directory for the produced images (default: a fresh "
             "temp dir) — handy for running tools/img_check.py on them")
    parser.add_argument(
        "--telemetry", action="store_true",
        help="host the embedded /metrics + /healthz endpoint on an "
             "ephemeral port for the duration of the run")
    parser.add_argument(
        "--prefetch", action="store_true",
        help="demo the predictive-prefetch datapath: mine a plan from "
             "the first boot, then cold-boot over a real socket with "
             "the plan streaming ahead (wire compression on)")
    parser.add_argument(
        "--fleet", action="store_true",
        help="demo the fleet telemetry plane: 3 storage nodes with "
             "telemetry endpoints, the aggregator polling them, and a "
             "forced node-down alert (pending -> firing -> resolved)")
    args = parser.parse_args()
    if args.fleet:
        fleet_demo()
        return
    if args.trace:
        TRACER.enable(JsonlSink(args.trace))
    telemetry = None
    if args.telemetry:
        from repro.metrics.telemetry_server import TelemetryServer
        telemetry = TelemetryServer(port=0)
        print(f"telemetry endpoint at {telemetry.url} "
              f"(/metrics /healthz)\n")

    if args.workdir:
        workdir = args.workdir
        os.makedirs(workdir, exist_ok=True)
    else:
        workdir = tempfile.mkdtemp(prefix="repro-quickstart-")
    base_path = os.path.join(workdir, "base.raw")
    cache_path = os.path.join(workdir, "cache.qcow2")

    # 1. The base VMI.  A real cloud image is several GB; for the demo
    #    we use a 64 MiB image whose boot reads ~8 MiB.
    profile = tiny_profile("demo-os", vmi_size=64 * MiB,
                           working_set=8 * MiB, boot_time=2.0)
    base = RawImage.create(base_path, profile.vmi_size)
    base.write(0, os.urandom(1 * MiB))  # some "OS" content
    base.close()
    trace = generate_boot_trace(profile, seed=0)
    print(f"base VMI: {format_size(profile.vmi_size)}, boot working set "
          f"{format_size(trace.unique_read_bytes())}")

    # 2+3. Cold boot: the two-step qemu-img workflow of §4.4 — cache
    #      backed by base, CoW backed by cache — then replay the boot.
    chain = create_cache_chain(
        base_path, cache_path, os.path.join(workdir, "vm1.qcow2"),
        quota=32 * MiB)
    with chain:
        cold = replay_through_chain(trace, chain, vm_id="vm1")
    print(f"\ncold boot: fetched {format_size(cold.base_bytes_read)} "
          f"from the base image")
    print(f"cache file after warming: "
          f"{format_size(os.path.getsize(cache_path))} "
          f"(CoR stored {format_size(cold.cor_bytes_written)})")

    # 4. Warm boot: a fresh VM chains a new CoW to the existing cache.
    chain = create_cache_chain(
        base_path, cache_path, os.path.join(workdir, "vm2.qcow2"),
        quota=32 * MiB)
    with chain:
        warm = replay_through_chain(trace, chain, vm_id="vm2")
    print(f"\nwarm boot: fetched {format_size(warm.base_bytes_read)} "
          f"from the base image "
          f"({format_size(warm.cache_hit_bytes)} served by the cache)")

    # Inspect the cache image the way qemu-img info would.
    header = Qcow2Image.peek_header(cache_path)
    print(f"\ncache image header: quota="
          f"{format_size(header.cache_ext.quota)}, current size="
          f"{format_size(header.cache_ext.current_size)}, "
          f"cluster size={header.cluster_size} B")

    reduction = 1 - warm.base_bytes_read / max(cold.base_bytes_read, 1)
    print(f"\n=> the warm cache removed {reduction:.1%} of the boot's "
          f"storage-node traffic")

    # 4½. (--prefetch) Predictive prefetch over a real socket: mine the
    #     first boot's trace into a plan, then cold-boot a fresh cache
    #     with the plan streaming in over a dedicated compressed
    #     connection while the demand reads run.
    if args.prefetch:
        from repro.bootmodel import plan_from_trace
        from repro.cluster import Prefetcher
        from repro.remote import BlockServer, RemoteImage

        plan = plan_from_trace(trace, align=512)
        base_img = RawImage.open(base_path)
        with BlockServer() as server:
            server.add_export("demo-os", base_img)
            url = server.url("demo-os")
            pf_cache = os.path.join(workdir, "cache-prefetch.qcow2")
            Qcow2Image.create(pf_cache, backing_file=url,
                              cluster_size=512,
                              cache_quota=32 * MiB).close()
            cow = Qcow2Image.create(
                os.path.join(workdir, "vm3.qcow2"),
                backing_file=pf_cache, backing_format="qcow2")
            with cow:
                side = RemoteImage.connect(url, compress=True)
                pf = Prefetcher(cow.backing, plan, source=side)
                replay_through_chain(trace, cow, vm_id="vm3",
                                     prefetcher=pf)
                stats = side.transport_stats
                side.close()
        base_img.close()
        rep = pf.report
        print(f"\nprefetch boot (protocol v4, compression "
              f"{'on' if stats.wire_compressed_bytes else 'off'}): "
              f"plan {len(plan)} extents / "
              f"{format_size(plan.total_bytes())}")
        print(f"prefetched {format_size(rep.bytes_fetched)} "
              f"({format_size(rep.hit_bytes)} hit by demand reads, "
              f"{format_size(rep.wasted_bytes)} wasted, "
              f"{rep.backoffs} backoffs)")
        if stats.wire_compressed_bytes:
            print(f"wire compression: "
                  f"{format_size(stats.wire_compressed_bytes_raw)} -> "
                  f"{format_size(stats.wire_compressed_bytes)} on the "
                  f"prefetch stream")

    # 5. The same VMI at cluster scale: 4 VMs across 2 simulated nodes
    #    (virtual time — this step finishes in milliseconds of wall
    #    clock).  With tracing on, each boot becomes a sim-clock
    #    ``vm.boot`` span under a ``deploy.wave`` span.
    cloud = Cloud(n_compute=2, network="1gbe", cache_mode="algorithm1")
    cloud.register_vmi("demo-os", profile.vmi_size, trace)
    wave = cloud.start_vms([("demo-os", 4)])
    print(f"\n4-VM deploy on 2 nodes: mean boot "
          f"{wave.mean_boot_time:.1f}s (virtual), storage-node traffic "
          f"{format_size(wave.scenario.storage_nfs_bytes)}")
    cloud.shutdown_all()

    print(f"\n(images left in {workdir} — inspect them with "
          f"`repro-img info/check/map <file>`)")
    if telemetry is not None:
        with urllib.request.urlopen(f"{telemetry.url}/healthz",
                                    timeout=5) as resp:
            print(f"\n$ curl {telemetry.url}/healthz\n"
                  f"{resp.read().decode('utf-8').strip()}")
        with urllib.request.urlopen(f"{telemetry.url}/metrics",
                                    timeout=5) as resp:
            lines = resp.read().decode("utf-8").splitlines()
        samples = [ln for ln in lines if ln and not ln.startswith("#")]
        print(f"\n$ curl {telemetry.url}/metrics   "
              f"# {len(samples)} series; a taste:")
        for line in samples[:6]:
            print(line)
        telemetry.close()
    if args.trace:
        TRACER.disable()
        print(f"trace written to {args.trace} — render it with "
              f"`python tools/boot_report.py {args.trace}`")


def fleet_demo() -> None:
    """(--fleet) Three storage nodes, one aggregator, one forced alert.

    Each node serves a qcow2 cache chain over a shared base VMI and
    hosts its own telemetry endpoint; the aggregator polls all three,
    derives the fleet signals, and an SLO rule walks a killed node
    through pending -> firing -> resolved when it comes back.
    """
    from repro.imagefmt import create_cache_chain
    from repro.metrics.fleet import FleetAggregator, HttpTarget
    from repro.metrics.fleet_dashboard import (
        SignalHistory,
        render_dashboard,
    )
    from repro.metrics.registry import MetricsRegistry
    from repro.remote import BlockServer, RemoteImage

    workdir = tempfile.mkdtemp(prefix="repro-fleet-")
    profile = tiny_profile("demo-os", vmi_size=64 * MiB,
                           working_set=8 * MiB, boot_time=2.0)
    base_path = os.path.join(workdir, "base.raw")
    base = RawImage.create(base_path, profile.vmi_size)
    base.write(0, os.urandom(1 * MiB))
    base.close()
    trace = generate_boot_trace(profile, seed=0)

    servers: list[BlockServer] = []
    chains = []
    for i in range(3):
        chain = create_cache_chain(
            base_path, os.path.join(workdir, f"cache{i}.qcow2"),
            os.path.join(workdir, f"vm{i}.qcow2"), quota=32 * MiB)
        chains.append(chain)
        # One registry per node: three "nodes" share this process, and
        # each /metrics must only show its own exports.
        server = BlockServer(telemetry_port=0,
                             registry=MetricsRegistry())
        server.add_export("vmi", chain)
        servers.append(server)
        print(f"storage node {i}: {server.url('vmi')} "
              f"(telemetry {server.telemetry.url})")

    # Boot one VM per node over the wire — cold on node 0, then read
    # the same ranges again so nodes develop distinct cache profiles.
    for rounds, server in zip((1, 2, 3), servers):
        for _ in range(rounds):
            with RemoteImage.connect(server.url("vmi")) as img:
                for op in trace:
                    if op.kind == "read":
                        offset = min(op.offset, profile.vmi_size - 512)
                        length = min(op.length,
                                     profile.vmi_size - offset)
                        if length > 0:
                            img.read(offset, length)

    aggregator = FleetAggregator(
        [HttpTarget.from_url(s.telemetry.url, name=f"node{i}")
         for i, s in enumerate(servers)],
        interval=0.2, timeout=1.0,
        rules=["node:up < 1 for 2 resolve 1"])
    history = SignalHistory()

    def poll(n: int) -> None:
        for _ in range(n):
            snapshot = aggregator.poll_once()
            history.observe(snapshot)
            for event in snapshot.events:
                print(f"  ALERT {event.state}: {event.rule} "
                      f"[{event.instance}] at poll {event.poll}")

    print("\npolling the fleet (5 polls)…")
    poll(5)
    print(render_dashboard(aggregator.snapshot(), history))

    # The forced alert: kill node 2 mid-scrape, watch the rule walk
    # pending -> firing, then bring the node back and watch resolved.
    print("\nkilling node 2 …")
    port2 = servers[2].port
    servers[2].close()
    poll(4)
    print("restarting node 2 …")
    servers[2] = BlockServer(port=port2, telemetry_port=0,
                             registry=MetricsRegistry())
    servers[2].add_export("vmi", chains[2])
    aggregator.remove_target("node2")
    aggregator.add_target(HttpTarget.from_url(
        servers[2].telemetry.url, name="node2"))
    poll(8)
    print(render_dashboard(aggregator.snapshot(), history))

    aggregator.stop()
    for server in servers:
        server.close()
    for chain in chains:
        chain.close()
    print(f"\n(images left in {workdir}; aim tools/fleet_top.py at "
          f"running nodes for the live view)")


if __name__ == "__main__":
    main()
