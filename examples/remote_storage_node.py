#!/usr/bin/env python3
"""A real storage node over the network: base image served over TCP.

The paper's compute nodes mount the storage node over NFS; this demo
runs the equivalent with the bundled NBD-style block server — real
sockets, real bytes — and shows the cache absorbing the traffic:

    storage process:  BlockServer exporting base.raw
    compute process:  nbd://... <- cache.qcow2 <- vm.qcow2

It ends with the hardened-transport features: injected connection
drops that the client's reconnect-and-retry absorbs transparently,
and a graceful server shutdown.

The server also runs the embedded telemetry plane (DESIGN.md §10):
``telemetry_port=0`` starts an HTTP endpoint on an ephemeral port
serving ``/metrics`` (Prometheus text format), ``/healthz`` (JSON,
200/503) and ``/traces`` (recent spans from the in-process flight
recorder).  The demo scrapes all three the way an operator's ``curl``
would.

Run:  python examples/remote_storage_node.py
"""

import os
import tempfile
import urllib.request

from repro.bootmodel import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.bootmodel.vm import replay_through_chain
from repro.imagefmt import Qcow2Image, RawImage
from repro.metrics.flight_recorder import FlightRecorder
from repro.metrics.tracing import TRACER
from repro.remote import BlockServer, FaultInjector, RemoteImage
from repro.units import MiB, format_size


def scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.read().decode("utf-8")


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-remote-")
    profile = tiny_profile("demo-os", vmi_size=64 * MiB,
                           working_set=8 * MiB, boot_time=2.0)
    trace = generate_boot_trace(profile, seed=0)

    # A flight recorder keeps the last spans/events in memory; the
    # telemetry endpoint's /traces tails it, and install() arms the
    # black-box behaviour: a dump on SIGUSR2 or unhandled exception.
    recorder = FlightRecorder(capacity=4096)
    recorder.install()
    TRACER.enable(recorder)

    # --- the storage node ---
    base_path = os.path.join(workdir, "base.raw")
    base = RawImage.create(base_path, profile.vmi_size)
    base.write(0, os.urandom(MiB))
    with BlockServer(telemetry_port=0) as server:
        server.add_export("demo-os", base)
        url = server.url("demo-os")
        print(f"storage node serving {url} "
              f"({format_size(base.size)} image, "
              f"{server.engine} engine)")
        print(f"telemetry endpoint at {server.telemetry.url} "
              f"(/metrics /healthz /traces)\n")

        # --- the compute node: cold boot over the socket ---
        cache_p = os.path.join(workdir, "cache.qcow2")
        Qcow2Image.create(cache_p, backing_file=url, cluster_size=512,
                          cache_quota=16 * MiB).close()
        cow = Qcow2Image.create(os.path.join(workdir, "vm1.qcow2"),
                                backing_file=cache_p,
                                backing_format="qcow2")
        with cow:
            replay_through_chain(trace, cow, track_unique=False)
        stats = server.export_stats("demo-os")
        cold = stats.bytes_read
        print(f"cold boot pulled {format_size(cold)} over the wire "
              f"({stats.read_ops} requests)")

        # --- warm boot: new CoW on the warm cache ---
        cow2 = Qcow2Image.create(os.path.join(workdir, "vm2.qcow2"),
                                 backing_file=cache_p,
                                 backing_format="qcow2")
        with cow2:
            replay_through_chain(trace, cow2, track_unique=False)
        warm = server.export_stats("demo-os").bytes_read - cold
        print(f"warm boot pulled {format_size(warm)} over the wire")
        print(f"\n=> the cache image kept "
              f"{(1 - warm / max(cold, 1)):.1%} of the boot off the "
              f"storage node's network link")

        # --- fault tolerance: the storage node drops connections ---
        injector = FaultInjector()
        injector.inject("drop", "drop")
        server.set_fault_injector(injector)
        with RemoteImage.connect(url, max_retries=3,
                                 backoff_base=0.01) as probe:
            data = probe.read(0, MiB)
            stats = probe.transport_stats
        print(f"\ninjected {injector.stats.dropped} connection drops; "
              f"the client retried {stats.retries}x and reconnected "
              f"{stats.reconnects}x — the read still returned "
              f"{format_size(len(data))} intact")
        server.set_fault_injector(None)

        # --- operating the node: scrape the telemetry endpoint ------
        tele = server.telemetry.url
        health = scrape(f"{tele}/healthz")
        print(f"\n$ curl {tele}/healthz\n{health.strip()}")
        metrics = [line for line in scrape(f"{tele}/metrics").splitlines()
                   if line.startswith("block_export_")]
        print(f"\n$ curl {tele}/metrics   # block_export_* series")
        for line in metrics[:8]:
            print(line)
        traces = scrape(f"{tele}/traces?n=3").strip().splitlines()
        print(f"\n$ curl '{tele}/traces?n=3'   "
              f"# last spans from the flight recorder")
        for line in traces:
            print(line[:76] + ("…" if len(line) > 76 else ""))
    # Leaving the `with` block is a graceful shutdown: accept loop
    # stopped, in-flight requests drained, serving threads joined, and
    # the telemetry endpoint's thread stopped with them.
    print("storage node shut down gracefully")
    TRACER.disable()
    recorder.uninstall()
    base.close()


if __name__ == "__main__":
    main()
