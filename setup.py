"""Legacy setup shim.

The offline test environment lacks the `wheel` package, which PEP-517
editable installs require; this shim lets ``pip install -e .`` use the
classic ``setup.py develop`` path instead.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
