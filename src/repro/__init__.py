"""repro — VM image caches for scalable virtual machine deployment.

A full reproduction of Razavi & Kielmann, *Scalable Virtual Machine
Deployment Using VM Image Caches* (SC'13), consisting of:

* :mod:`repro.imagefmt` — a file-backed QCOW2-style image format with the
  paper's cache extension (quota, copy-on-read, immutability w.r.t. the
  base image) and a qemu-img-like tool.
* :mod:`repro.bootmodel` — VM boot workloads: per-OS read traces and a
  boot replayer with a CPU/I-O overlap model.
* :mod:`repro.sim` — a discrete-event testbed standing in for the DAS-4
  cluster: fair-share networks (1 GbE / 32 Gb InfiniBand), rotational
  disks, memory stores, an NFS model, and compute/storage nodes.
* :mod:`repro.cluster` — the deployment layer: cache pools with LRU
  eviction, the cache-placement algorithm (Algorithm 1), and a
  cache-aware cloud scheduler.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro import errors, units
from repro.imagefmt import (
    Qcow2Image,
    RawImage,
    create_cache_chain,
    create_cow_chain,
    open_chain,
    open_image,
)

__version__ = "1.0.0"

__all__ = [
    "errors",
    "units",
    "Qcow2Image",
    "RawImage",
    "open_image",
    "create_cow_chain",
    "create_cache_chain",
    "open_chain",
    "__version__",
]
