"""VM boot workloads: per-OS read traces and the boot replayer.

The paper's evaluation boots real CentOS 6.3, Debian 6.0.7, and Windows
Server 2012 images on KVM.  We cannot boot those OSes here, but their
effect on the system enters entirely through two observables:

1. the sequence of block reads the boot issues against the image chain
   (offsets, sizes, and the CPU "think time" between them), and
2. the total CPU time of the boot.

:mod:`repro.bootmodel.profiles` captures the published per-OS numbers
(Table 1 working sets, Table 2 warm-cache sizes, the §7.3 "17 % of boot
time waits on reads" split), :mod:`repro.bootmodel.generator` synthesizes
deterministic traces matching them, and :mod:`repro.bootmodel.vm` replays
a trace through a real image chain to measure traffic and working sets.
"""

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.prefetch import (
    PlanExtent,
    PlanStore,
    PrefetchPlan,
    default_plan,
    merge_plans,
    plan_from_jsonl,
    plan_from_trace,
)
from repro.bootmodel.profiles import (
    CENTOS_63,
    DEBIAN_607,
    OS_PROFILES,
    WINDOWS_2012,
    OSProfile,
)
from repro.bootmodel.trace import BootTrace, TraceOp
from repro.bootmodel.vm import ReplayResult, replay_through_chain

__all__ = [
    "OSProfile",
    "CENTOS_63",
    "DEBIAN_607",
    "WINDOWS_2012",
    "OS_PROFILES",
    "BootTrace",
    "TraceOp",
    "generate_boot_trace",
    "replay_through_chain",
    "ReplayResult",
    "PlanExtent",
    "PlanStore",
    "PrefetchPlan",
    "default_plan",
    "merge_plans",
    "plan_from_jsonl",
    "plan_from_trace",
]
