"""Capturing boot traces from live image chains.

The paper's §3.2 offers two ways to warm a cache: boot a sample VM on
VMI registration, or create the cache lazily on the first real boot.
Either way the system effectively *records* what the boot touches.
This module provides that recorder:

* :class:`CapturingDriver` wraps any block driver and logs every
  operation with think-time gaps (wall-clock between ops), producing a
  :class:`~repro.bootmodel.trace.BootTrace` that can drive later
  simulations or warm caches deterministically.
* :func:`parse_blkparse` imports traces from the textual output of
  Linux ``blkparse`` (``blktrace`` decoder), so traces captured on real
  hosts can replace the synthetic ones.
"""

from __future__ import annotations

import re
import time
from typing import Callable, Iterable

from repro.bootmodel.trace import BootTrace, TraceOp
from repro.imagefmt.driver import BlockDriver


class CapturingDriver(BlockDriver):
    """A pass-through driver that records a boot trace.

    Wraps the top of an image chain; the guest-facing reads/writes are
    forwarded verbatim and logged.  ``clock`` is injectable for tests
    (defaults to ``time.monotonic``).
    """

    format_name = "capture"

    def __init__(self, inner: BlockDriver,
                 clock: Callable[[], float] | None = None,
                 os_name: str = "captured") -> None:
        super().__init__(inner.path, inner.size, inner.read_only)
        self._inner = inner
        self._clock = clock if clock is not None else time.monotonic
        self._last = self._clock()
        self._ops: list[TraceOp] = []
        self._os_name = os_name

    def _gap(self) -> float:
        now = self._clock()
        gap = max(0.0, now - self._last)
        self._last = now
        return gap

    def _read_impl(self, offset: int, length: int) -> bytes:
        gap = self._gap()
        data = self._inner.read(offset, length)
        self._ops.append(TraceOp("read", offset, length, gap))
        return data

    def _write_impl(self, offset: int, data: bytes) -> None:
        gap = self._gap()
        self._inner.write(offset, data)
        self._ops.append(TraceOp("write", offset, len(data), gap))

    def _flush_impl(self) -> None:
        self._inner.flush()

    def _close_impl(self) -> None:
        self._inner.close()

    @property
    def backing(self) -> BlockDriver | None:
        return self._inner.backing

    def trace(self) -> BootTrace:
        """The trace recorded so far (a snapshot; capture continues)."""
        return BootTrace(self._os_name, self.size, list(self._ops))


# ---------------------------------------------------------------------------
# blkparse import
# ---------------------------------------------------------------------------

# A blkparse "completed" line looks like:
#   8,0  3  102  0.001234567  512  C  R  2048 + 64 [qemu-kvm]
# fields: dev, cpu, seq, timestamp, pid, action, rwbs, sector, "+",
# nsectors, [process].  We take C (complete) or Q (queue) actions.
_BLKPARSE_RE = re.compile(
    r"^\s*\d+,\d+\s+\d+\s+\d+\s+(?P<ts>\d+\.\d+)\s+\d+\s+"
    r"(?P<action>[A-Z])\s+(?P<rwbs>[RW][A-Z]*)\s+"
    r"(?P<sector>\d+)\s*\+\s*(?P<nsectors>\d+)"
)

_SECTOR = 512


def parse_blkparse(
    lines: Iterable[str],
    *,
    vmi_size: int,
    os_name: str = "blktrace",
    actions: tuple[str, ...] = ("Q",),
) -> BootTrace:
    """Convert ``blkparse`` text output into a :class:`BootTrace`.

    Only the requested ``actions`` are kept (default: Q, the issue
    events, which carry the guest-visible ordering).  Think times are
    the timestamp gaps between consecutive kept events.  Events beyond
    ``vmi_size`` are clipped; malformed lines are skipped.
    """
    ops: list[TraceOp] = []
    last_ts: float | None = None
    for line in lines:
        m = _BLKPARSE_RE.match(line)
        if not m or m.group("action") not in actions:
            continue
        ts = float(m.group("ts"))
        offset = int(m.group("sector")) * _SECTOR
        length = int(m.group("nsectors")) * _SECTOR
        if length <= 0 or offset >= vmi_size:
            continue
        length = min(length, vmi_size - offset)
        think = 0.0 if last_ts is None else max(0.0, ts - last_ts)
        last_ts = ts
        kind = "write" if m.group("rwbs").startswith("W") else "read"
        ops.append(TraceOp(kind, offset, length, think))
    return BootTrace(os_name, vmi_size, ops)
