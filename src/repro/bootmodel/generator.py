"""Deterministic synthesis of boot read traces from an OS profile.

The paper measured real boots; we cannot, so we synthesize traces that
match the published observables (see :mod:`repro.bootmodel.profiles`):
the unique-read working set (Table 1), the small-read regime that made
the authors tune NFS rwsize to 64 KiB (§5), the mostly-random access
pattern (§3.3), and the CPU/read-wait split (§7.3).

Determinism: the trace is a pure function of ``(profile, seed)``, so
every experiment and test sees identical workloads across runs, and the
"64 identical but independent copies of the CentOS VMI" of Figure 3 can
be modelled by reusing one trace per VMI copy.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.bootmodel.profiles import OSProfile
from repro.bootmodel.trace import BootTrace, TraceOp
from repro.imagefmt.driver import RangeSet
from repro.units import align_down, align_up

_SECTOR = 512
# Boot files cluster into a handful of on-disk zones (kernel+initrd,
# /lib, /etc, /usr/bin, ...), biased toward the front of the image.
_N_ZONES = 12


def generate_boot_trace(
    profile: OSProfile,
    seed: int = 0,
    *,
    working_set_override: int | None = None,
) -> BootTrace:
    """Generate the boot trace for one (VMI, VM) pair.

    ``working_set_override`` substitutes the profile's Table-1 working
    set, used by tests and by quota-sweep experiments that need smaller
    boots.
    """
    # crc32, not hash(): the builtin is salted per process
    # (PYTHONHASHSEED), which would make "a pure function of
    # (profile, seed)" silently false across runs.
    rng = np.random.default_rng(
        np.random.SeedSequence([zlib.crc32(profile.name.encode()), seed]))
    target_ws = working_set_override if working_set_override is not None \
        else profile.read_working_set
    if target_ws <= 0:
        raise ValueError("working set must be positive")
    if target_ws > profile.vmi_size:
        raise ValueError("working set cannot exceed the VMI size")

    zones = _make_zones(rng, profile.vmi_size)
    ops: list[TraceOp] = []
    covered = RangeSet()
    covered_bytes = 0
    cursor = int(zones[0])

    # Phase 1: unique reads until the working set is reached.
    stalls = 0
    while covered_bytes < target_ws:
        if stalls >= 8:
            # The zone-biased draws keep landing on covered ranges —
            # with a small image the reachable zone span can be smaller
            # than the target working set, which would stall this loop
            # near-forever.  Jump to the first uncovered gap instead.
            gaps = covered.gaps(0, profile.vmi_size)
            offset = align_down(gaps[0][0], _SECTOR) if gaps \
                else cursor
            stalls = 0
        elif ops and rng.random() < profile.sequential_fraction:
            offset = cursor
        else:
            zone = int(zones[rng.integers(len(zones))])
            jitter = int(rng.integers(0, max(profile.vmi_size // 64, 1)))
            offset = align_down(
                min(zone + jitter, profile.vmi_size - _SECTOR), _SECTOR)
        length = _draw_read_size(rng, profile.mean_read_size)
        length = min(length, profile.vmi_size - offset,
                     target_ws - covered_bytes + _SECTOR)
        length = max(_SECTOR, align_up(length, _SECTOR))
        if offset + length > profile.vmi_size:
            length = align_down(profile.vmi_size - offset, _SECTOR)
            if length <= 0:
                continue
        before = covered.total()
        covered.add(offset, length)
        covered_bytes = covered.total()
        if covered_bytes == before:
            # Fully re-read range: keep it (counts as natural re-read),
            # but bump the cursor so sequential runs escape the overlap.
            stalls += 1
            cursor = offset + length
            ops.append(TraceOp("read", offset, length, 0.0))
            continue
        stalls = 0
        ops.append(TraceOp("read", offset, length, 0.0))
        cursor = offset + length

    # Phase 2: deliberate re-reads of hot data (config files parsed by
    # several services, shared libraries mapped repeatedly, ...).
    reread_target = int(target_ws * profile.reread_fraction)
    reread_bytes = 0
    read_ops_snapshot = [op for op in ops if op.kind == "read"]
    while reread_bytes < reread_target and read_ops_snapshot:
        src = read_ops_snapshot[int(rng.integers(len(read_ops_snapshot)))]
        pos = int(rng.integers(0, len(ops) + 1))
        ops.insert(pos, TraceOp("read", src.offset, src.length, 0.0))
        reread_bytes += src.length

    # Phase 3: guest writes (boot logs, pid files) — land in the CoW.
    # Writes are append-style within a scratch zone (log files grow
    # sequentially), so the CoW-fill amplification they cause stays a
    # fraction of a CoW cluster per file, as with a real boot.
    n_writes = int(len(ops) * profile.write_fraction)
    write_cursor = align_down(int(profile.vmi_size * 0.9), _SECTOR)
    for _ in range(n_writes):
        length = int(rng.integers(1, 17)) * _SECTOR
        if write_cursor + length > profile.vmi_size:
            write_cursor = align_down(int(profile.vmi_size * 0.9), _SECTOR)
        pos = int(rng.integers(0, len(ops) + 1))
        ops.insert(pos, TraceOp("write", write_cursor, length, 0.0))
        write_cursor += length

    # Phase 4: distribute the boot's CPU time as think time before each
    # op (exponential weights — bursts of computation between I/O).
    weights = rng.exponential(1.0, size=len(ops))
    weights *= profile.cpu_time / weights.sum()
    ops = [
        TraceOp(op.kind, op.offset, op.length, float(w))
        for op, w in zip(ops, weights)
    ]
    return BootTrace(profile.name, profile.vmi_size, ops)


def _make_zones(rng: np.random.Generator, vmi_size: int) -> np.ndarray:
    """Zone origins, biased toward the front of the image (kernel area)."""
    raw = rng.beta(1.2, 3.0, size=_N_ZONES) * vmi_size * 0.85
    raw[0] = 0.0  # the bootloader/kernel zone is always at the start
    return np.sort(raw.astype(np.int64) // _SECTOR * _SECTOR)


def _draw_read_size(rng: np.random.Generator, mean: int) -> int:
    """Lognormal read sizes clipped to [512 B, 8×mean].

    Most boot reads are small (§5.1): the median sits well under the
    mean, with a tail of larger streaming reads.
    """
    sigma = 0.9
    mu = np.log(mean) - sigma * sigma / 2.0
    size = int(rng.lognormal(mu, sigma))
    return int(np.clip(size, _SECTOR, 8 * mean))
