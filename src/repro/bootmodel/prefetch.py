"""Mining boot traces into per-image prefetch plans.

The paper's boot working sets are tiny (≤ 200 MB, Table 1) and highly
repeatable per image — the property Micro-CernVM exploits with lazy
fetch + aggressive caching (arXiv:1311.2426) and the memory-streaming
work exploits by staying ahead of the consumer (arXiv:1406.5760).  A
:class:`PrefetchPlan` captures that repeatability offline: the
cluster-aligned extents a boot touches, *in boot order*, each with the
cumulative guest think time before its first touch (its ``phase``).
The executor (:mod:`repro.cluster.prefetch`) streams the plan into a
node-local cache ahead of the demand reads; the simulator replays the
same plan as its prefetch twin.

Plans are mined from either source the tracing stack produces:

* :class:`~repro.bootmodel.trace.BootTrace` objects
  (:func:`plan_from_trace`) — the replayer's own workload;
* JSONL trace files with ``block.read`` events
  (:func:`plan_from_jsonl`) — what a traced production boot leaves
  behind (DESIGN.md §10);

merged across runs with :func:`merge_plans`, or synthesized from an
:class:`~repro.bootmodel.profiles.OSProfile` when no observations
exist yet (:func:`default_plan`).  :class:`PlanStore` persists plans
as versioned JSON keyed by image name.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import OSProfile
from repro.bootmodel.trace import BootTrace
from repro.imagefmt.driver import RangeSet
from repro.units import align_down, align_up

#: Current on-disk plan format.  Readers refuse anything newer.
PLAN_VERSION = 1


@dataclass(frozen=True)
class PlanExtent:
    """One cluster-aligned extent of a prefetch plan.

    ``phase`` is the cumulative guest think time (seconds) that
    precedes the extent's first touch — the executor can use it to
    pace itself, the simulator uses it to order the twin stream.
    """

    offset: int
    length: int
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length <= 0 or self.phase < 0:
            raise ValueError("bad plan extent "
                             f"({self.offset}, {self.length}, {self.phase})")

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass
class PrefetchPlan:
    """The mined boot working set of one image, in boot order."""

    image: str
    """Image/profile key the plan belongs to (e.g. ``centos-6.3``)."""

    cluster_size: int
    """Alignment granularity the extents were rounded out to — pass
    the cache's cluster size so population matches copy-on-read."""

    source: str = "trace"
    """Where the plan came from: ``trace`` / ``jsonl`` / ``profile`` /
    ``merged``."""

    runs: int = 1
    """How many observed boots were mined into this plan."""

    extents: list[PlanExtent] = field(default_factory=list)
    version: int = PLAN_VERSION

    def total_bytes(self) -> int:
        return sum(e.length for e in self.extents)

    def __len__(self) -> int:
        return len(self.extents)

    def __iter__(self):
        return iter(self.extents)

    def clipped(self, size: int) -> "PrefetchPlan":
        """The same plan restricted to the first ``size`` bytes, for
        running against an image smaller than the mined one."""
        out = []
        for e in self.extents:
            if e.offset >= size:
                continue
            out.append(PlanExtent(e.offset, min(e.length, size - e.offset),
                                  e.phase))
        return PrefetchPlan(self.image, self.cluster_size, self.source,
                            self.runs, out, self.version)

    # -- (de)serialization --------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "version": self.version,
            "image": self.image,
            "cluster_size": self.cluster_size,
            "source": self.source,
            "runs": self.runs,
            "extents": [[e.offset, e.length, e.phase]
                        for e in self.extents],
        })

    @classmethod
    def from_json(cls, text: str) -> "PrefetchPlan":
        raw = json.loads(text)
        version = int(raw.get("version", 0))
        if version > PLAN_VERSION:
            raise ValueError(
                f"prefetch plan version {version} is newer than "
                f"supported version {PLAN_VERSION}")
        extents = [PlanExtent(int(o), int(ln), float(ph))
                   for o, ln, ph in raw["extents"]]
        return cls(image=str(raw["image"]),
                   cluster_size=int(raw["cluster_size"]),
                   source=str(raw.get("source", "trace")),
                   runs=int(raw.get("runs", 1)),
                   extents=extents, version=version)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "PrefetchPlan":
        with open(path, encoding="utf-8") as f:
            return cls.from_json(f.read())


def _mine(touches, image: str, cluster_size: int,
          source: str) -> PrefetchPlan:
    """First-touch accumulation: ``touches`` yields ``(offset, length,
    phase)`` in boot order; only the not-yet-covered aligned parts of
    each touch become plan extents (re-reads add nothing), contiguous
    follow-ups extend the tail extent in place."""
    if cluster_size < 1:
        raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
    covered = RangeSet()
    extents: list[PlanExtent] = []
    for offset, length, phase in touches:
        if length <= 0:
            continue
        start = align_down(offset, cluster_size)
        end = align_up(offset + length, cluster_size)
        for gap_off, gap_len in covered.gaps(start, end - start):
            covered.add(gap_off, gap_len)
            tail = extents[-1] if extents else None
            if tail is not None and tail.end == gap_off:
                extents[-1] = PlanExtent(tail.offset,
                                         tail.length + gap_len,
                                         tail.phase)
            else:
                extents.append(PlanExtent(gap_off, gap_len, phase))
    return PrefetchPlan(image=image, cluster_size=cluster_size,
                        source=source, runs=1, extents=extents)


def plan_from_trace(trace: BootTrace, *, align: int,
                    image: str | None = None) -> PrefetchPlan:
    """Mine one :class:`BootTrace` into a plan.

    Extents appear in boot order (first touch wins), aligned out to
    ``align`` bytes and clipped to the trace's VMI size; each carries
    the cumulative think time up to its first touch.
    """
    def touches():
        phase = 0.0
        for op in trace:
            phase += op.think_time
            if op.kind != "read":
                continue
            offset = min(op.offset, trace.vmi_size)
            length = min(op.length, trace.vmi_size - offset)
            yield offset, length, phase

    return _mine(touches(), image or trace.os_name, align, "trace")


def plan_from_jsonl(path: str, *, align: int, image: str,
                    layer: str = "base") -> PrefetchPlan:
    """Mine a JSONL trace file's ``block.read`` events into a plan.

    Only events whose ``layer`` attr matches (default ``base`` — the
    storage-node traffic) contribute; phases are event timestamps
    relative to the first matching read, so a wall-clock trace yields
    wall-clock phases.
    """
    def touches():
        t0 = None
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                if rec.get("type") != "event" \
                        or rec.get("name") != "block.read":
                    continue
                attrs = rec.get("attrs", {})
                if str(attrs.get("layer")) != layer:
                    continue
                ts = float(rec.get("ts", 0.0))
                if t0 is None:
                    t0 = ts
                yield (int(attrs.get("offset", 0)),
                       int(attrs.get("length", 0)),
                       max(0.0, ts - t0))

    return _mine(touches(), image, align, "jsonl")


def merge_plans(plans: list[PrefetchPlan]) -> PrefetchPlan:
    """Merge plans mined from several boots of the same image.

    The first plan's boot order wins; later plans only contribute
    extents (or parts of extents) the earlier ones did not cover —
    run-to-run jitter widens the plan without reordering it.  All
    plans must agree on image and cluster size.
    """
    if not plans:
        raise ValueError("nothing to merge")
    first = plans[0]
    for plan in plans[1:]:
        if plan.image != first.image:
            raise ValueError(
                f"cannot merge plans for different images: "
                f"{first.image!r} vs {plan.image!r}")
        if plan.cluster_size != first.cluster_size:
            raise ValueError(
                f"cannot merge plans with different cluster sizes: "
                f"{first.cluster_size} vs {plan.cluster_size}")
    if len(plans) == 1:
        return first

    def touches():
        for plan in plans:
            for e in plan.extents:
                yield e.offset, e.length, e.phase

    merged = _mine(touches(), first.image, first.cluster_size, "merged")
    merged.runs = sum(p.runs for p in plans)
    return merged


def default_plan(profile: OSProfile, *, align: int,
                 seed: int = 0) -> PrefetchPlan:
    """A plan synthesized from an OS profile, for images that have
    never been observed booting: the deterministic generated trace
    (the same one the experiments replay) is mined like a real one."""
    plan = plan_from_trace(generate_boot_trace(profile, seed),
                           align=align, image=profile.name)
    plan.source = "profile"
    return plan


class PlanStore:
    """Versioned JSON plan files keyed by image name, one per image."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def path_for(self, image: str) -> str:
        safe = re.sub(r"[^A-Za-z0-9._-]", "_", image)
        return os.path.join(self.directory, f"{safe}.plan.json")

    def save(self, plan: PrefetchPlan) -> str:
        path = self.path_for(plan.image)
        plan.save(path)
        return path

    def load(self, image: str) -> PrefetchPlan | None:
        path = self.path_for(image)
        if not os.path.exists(path):
            return None
        return PrefetchPlan.load(path)

    def images(self) -> list[str]:
        return sorted(
            name[:-len(".plan.json")]
            for name in os.listdir(self.directory)
            if name.endswith(".plan.json"))
