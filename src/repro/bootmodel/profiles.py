"""Per-OS boot profiles, calibrated to the paper's published numbers.

Sources for each constant:

* ``read_working_set`` — Table 1 ("Read working set size of various VMIs
  for booting the VM"): CentOS 6.3 → 85.2 MB, Debian 6.0.7 → 24.9 MB,
  Windows Server 2012 → 195.8 MB.
* ``warm_cache_size`` — Table 2 ("Cache quota necessary for various
  VMIs", 512 B cache clusters): CentOS → 93 MB, Windows → 201 MB,
  Debian → 40 MB.  The delta vs Table 1 is QCOW2 metadata and
  sector-granularity rounding.
* ``read_wait_fraction`` — §7.3: "in the CentOS case, the VM only waits
  17 % of its total boot time on reads".  We apply the same fraction to
  the other OSes for lack of published numbers.
* ``single_boot_time`` — Figure 2 left edge: a single CentOS VM boots in
  ≈ 35 s with plain QCOW2 over NFS.  Debian/Windows values are scaled by
  working set (no published single-boot figures for them).
* ``vmi_size`` — §2: "VMIs typically comprise one or more GB"; default
  OS installs of that era are a few GB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GiB, KiB, MB


@dataclass(frozen=True)
class OSProfile:
    """Boot behaviour of one operating-system image."""

    name: str
    vmi_size: int
    """Virtual size of the VM image in bytes."""

    read_working_set: int
    """Unique bytes read from the base image during boot (Table 1)."""

    warm_cache_size: int
    """Cache quota needed to fully absorb the boot (Table 2)."""

    single_boot_time: float
    """Wall-clock boot of one VM over uncontended NFS/QCOW2, seconds."""

    read_wait_fraction: float
    """Fraction of the boot spent waiting on reads (§7.3)."""

    mean_read_size: int = 32 * KiB
    """Average boot read size; 'most reads during boot are small' (§5.1),
    which is why the paper tunes NFS rwsize down to 64 KiB."""

    reread_fraction: float = 0.12
    """Fraction of read bytes that revisit already-read data (total reads
    exceed the unique working set slightly)."""

    sequential_fraction: float = 0.35
    """Fraction of reads that continue a sequential run (kernel/initrd
    streaming); the rest seek randomly — '[t]he read requests coming
    from different VMs are mostly random in nature' (§3.3)."""

    write_fraction: float = 0.04
    """Fraction of boot ops that are guest writes (logs, tmp files);
    these land in the CoW image and never touch cache or base."""

    @property
    def cpu_time(self) -> float:
        """Pure-CPU part of the boot (no read waits)."""
        return self.single_boot_time * (1.0 - self.read_wait_fraction)

    @property
    def read_wait_time(self) -> float:
        """Read-wait part of an uncontended boot."""
        return self.single_boot_time * self.read_wait_fraction

    @property
    def approx_read_count(self) -> int:
        total_read = self.read_working_set * (1 + self.reread_fraction)
        return max(1, round(total_read / self.mean_read_size))


CENTOS_63 = OSProfile(
    name="centos-6.3",
    vmi_size=4 * GiB,
    read_working_set=85_200_000,   # 85.2 MB, Table 1
    warm_cache_size=93 * MB,       # Table 2
    single_boot_time=35.0,         # Figure 2, single node
    read_wait_fraction=0.17,       # §7.3
)

DEBIAN_607 = OSProfile(
    name="debian-6.0.7",
    vmi_size=2 * GiB,
    read_working_set=24_900_000,   # 24.9 MB, Table 1
    warm_cache_size=40 * MB,       # Table 2
    single_boot_time=25.0,         # scaled; not published
    read_wait_fraction=0.17,
)

WINDOWS_2012 = OSProfile(
    name="windows-server-2012",
    vmi_size=12 * GiB,
    read_working_set=195_800_000,  # 195.8 MB, Table 1
    warm_cache_size=201 * MB,      # Table 2
    single_boot_time=70.0,         # scaled; not published
    read_wait_fraction=0.17,
    mean_read_size=48 * KiB,
)

OS_PROFILES: dict[str, OSProfile] = {
    p.name: p for p in (CENTOS_63, DEBIAN_607, WINDOWS_2012)
}


def tiny_profile(
    name: str = "tiny-test-os",
    vmi_size: int = 8 * 1024 * 1024,
    working_set: int = 1024 * 1024,
    boot_time: float = 2.0,
) -> OSProfile:
    """A scaled-down profile for fast tests: same shape, tiny sizes."""
    return OSProfile(
        name=name,
        vmi_size=vmi_size,
        read_working_set=working_set,
        warm_cache_size=int(working_set * 1.1),
        single_boot_time=boot_time,
        read_wait_fraction=0.17,
        mean_read_size=8 * KiB,
    )
