"""Boot trace records, statistics, and (de)serialization.

A boot trace is the ordered list of block operations a VM issues while
booting, each with the CPU think time that precedes it.  Traces are what
couple the boot model to both the file-backed image chain (real replay,
:mod:`repro.bootmodel.vm`) and the discrete-event testbed
(:mod:`repro.sim.cluster_sim`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.imagefmt.driver import RangeSet


@dataclass(frozen=True)
class TraceOp:
    """One boot-time block operation.

    ``think_time`` is the CPU time the guest spends *before* issuing
    this operation — the boot's computation is the sum of think times,
    its I/O wait is the sum of the operations' service times.
    """

    kind: str  # "read" | "write"
    offset: int
    length: int
    think_time: float

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"bad op kind {self.kind!r}")
        if self.offset < 0 or self.length < 0 or self.think_time < 0:
            raise ValueError("offset/length/think_time must be >= 0")


@dataclass
class BootTrace:
    """A full boot's worth of operations against one VMI."""

    os_name: str
    vmi_size: int
    ops: list[TraceOp] = field(default_factory=list)

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    # -- statistics ---------------------------------------------------

    def reads(self) -> Iterable[TraceOp]:
        return (op for op in self.ops if op.kind == "read")

    def writes(self) -> Iterable[TraceOp]:
        return (op for op in self.ops if op.kind == "write")

    def total_read_bytes(self) -> int:
        return sum(op.length for op in self.reads())

    def total_write_bytes(self) -> int:
        return sum(op.length for op in self.writes())

    def unique_read_bytes(self) -> int:
        """The read working set: Table 1's 'size of unique reads'."""
        rs = RangeSet()
        for op in self.reads():
            rs.add(op.offset, op.length)
        return rs.total()

    def total_think_time(self) -> float:
        return sum(op.think_time for op in self.ops)

    def read_count(self) -> int:
        return sum(1 for _ in self.reads())

    def max_offset(self) -> int:
        return max((op.offset + op.length for op in self.ops), default=0)

    # -- transformations ----------------------------------------------

    def coarsen(self, factor: int) -> "BootTrace":
        """Merge every ``factor`` consecutive reads into one operation.

        Used to speed up large cluster simulations: byte totals and
        think-time totals are preserved exactly, the op count drops by
        ``factor``.  Offsets of merged groups take the first op's offset
        (working-set accounting is therefore approximate — only use the
        coarse trace for timing studies, never for Table 1/2 measures).
        """
        if factor <= 1:
            return self
        out: list[TraceOp] = []
        group: list[TraceOp] = []
        for op in self.ops:
            if op.kind != "read":
                out.append(op)
                continue
            group.append(op)
            if len(group) == factor:
                out.append(_merge_reads(group))
                group = []
        if group:
            out.append(_merge_reads(group))
        return BootTrace(self.os_name, self.vmi_size, out)

    # -- (de)serialization ----------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "os_name": self.os_name,
            "vmi_size": self.vmi_size,
            "ops": [[op.kind, op.offset, op.length, op.think_time]
                    for op in self.ops],
        })

    @classmethod
    def from_json(cls, text: str) -> "BootTrace":
        raw = json.loads(text)
        ops = [TraceOp(kind=k, offset=o, length=ln, think_time=t)
               for k, o, ln, t in raw["ops"]]
        return cls(os_name=raw["os_name"], vmi_size=raw["vmi_size"],
                   ops=ops)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "BootTrace":
        with open(path, encoding="utf-8") as f:
            return cls.from_json(f.read())


def _merge_reads(group: list[TraceOp]) -> TraceOp:
    return TraceOp(
        kind="read",
        offset=group[0].offset,
        length=sum(op.length for op in group),
        think_time=sum(op.think_time for op in group),
    )
