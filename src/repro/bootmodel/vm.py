"""Replaying boot traces through a real image chain.

This is the file-backed half of the evaluation: replaying a trace
through ``base ← [cache ←] CoW`` measures exactly what the paper
measures at the storage node — bytes transferred (Figures 9, 10), the
unique working set (Table 1), and the resulting warm-cache file size
(Table 2).  Timing under contention is the simulator's job
(:mod:`repro.sim`); this module is about *data movement*, which is real.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.bootmodel.trace import BootTrace
from repro.imagefmt.chain import find_cache_layer
from repro.imagefmt.driver import BlockDriver
from repro.metrics.tracing import TRACER


@dataclass
class ReplayResult:
    """Traffic accounting from one boot replay."""

    os_name: str
    ops_replayed: int = 0
    guest_bytes_read: int = 0
    guest_bytes_written: int = 0
    base_bytes_read: int = 0
    """Bytes fetched from the base image — the storage-node traffic of
    Figures 9/10 ('observed traffic at the storage node')."""

    base_read_ops: int = 0
    unique_base_bytes: int = 0
    """Unique base bytes touched — Table 1's working-set measure."""

    cache_hit_bytes: int = 0
    cache_miss_bytes: int = 0
    cor_bytes_written: int = 0
    cache_file_size: int | None = None
    """Physical size of the cache image after the boot — Table 2."""

    cor_disabled: bool = False
    layers: list[str] = field(default_factory=list)


def bottom_layer(chain: BlockDriver) -> BlockDriver:
    node = chain
    while node.backing is not None:
        node = node.backing
    return node


def assign_trace_roles(chain: BlockDriver) -> list[BlockDriver]:
    """Label each chain layer for trace attribution; returns the layers
    top-to-bottom.

    Roles follow the paper's chain shape: the bottom image is ``base``
    (its ``block.read`` events are the storage-node traffic of Figures
    9/10), cache images are ``cache``, and the guest-facing top overlay
    is ``cow``.  A single-image chain is just ``base``.
    """
    layers: list[BlockDriver] = []
    node: BlockDriver | None = chain
    while node is not None:
        layers.append(node)
        node = node.backing
    for i, layer in enumerate(layers):
        if i == len(layers) - 1:
            layer.trace_role = "base"
        elif getattr(layer, "is_cache", False):
            layer.trace_role = "cache"
        elif i == 0:
            layer.trace_role = "cow"
        else:
            layer.trace_role = "overlay"
    return layers


def replay_through_chain(
    trace: BootTrace,
    chain: BlockDriver,
    *,
    track_unique: bool = True,
    vm_id: str | None = None,
    prefetcher=None,
    time_scale: float = 0.0,
) -> ReplayResult:
    """Replay every trace op against the top of an image chain.

    Reads and writes are clipped to the chain's virtual size (traces and
    images may disagree by a cluster when tests shrink things).  Returns
    the traffic accounting gathered from every layer's driver stats.

    ``time_scale`` > 0 paces the replay against the trace's think
    times: before each op the replay sleeps until ``time_scale`` times
    the cumulative think time has elapsed on the wall clock (a deficit
    clock, so many tiny think times cost one coarse sleep, and I/O
    stalls eat into the think budget the way real guest compute
    overlaps device waits).  The default replays at full speed —
    pure data movement, as before.

    With tracing enabled the replay runs inside a wall-clock ``vm.boot``
    span (named after ``vm_id`` when given), so every layer's
    ``block.read`` events attach causally to this boot; a final
    ``replay.summary`` event carries the same per-layer totals the
    returned :class:`ReplayResult` reports.

    ``prefetcher`` (a started-or-not
    :class:`~repro.cluster.prefetch.Prefetcher`) runs concurrently
    with the replay: it is started if needed, demand ops take its
    shared lock (image drivers are not thread-safe), and after the
    last op it is stopped, joined, and its hit/wasted accounting
    settled against the demand read ranges.
    """
    from contextlib import nullcontext

    base = bottom_layer(chain)
    assign_trace_roles(chain)
    if track_unique:
        base.enable_range_tracking()
    base_read0 = base.stats.bytes_read
    base_ops0 = base.stats.read_ops

    if prefetcher is not None and not prefetcher.started:
        prefetcher.start()
    demand_lock = prefetcher.lock if prefetcher is not None \
        else nullcontext()
    from repro.imagefmt.driver import RangeSet
    demand_reads = RangeSet() if prefetcher is not None else None

    if time_scale < 0:
        raise ValueError(f"time_scale must be >= 0, got {time_scale}")
    think_clock = 0.0
    paced_start = time.perf_counter()

    result = ReplayResult(os_name=trace.os_name)
    with TRACER.span("vm.boot", vm_id=vm_id or trace.os_name,
                     os_name=trace.os_name):
        for op in trace:
            if time_scale > 0:
                think_clock += op.think_time * time_scale
                deficit = think_clock \
                    - (time.perf_counter() - paced_start)
                if deficit > 0:
                    time.sleep(deficit)
            offset = min(op.offset, max(chain.size - 512, 0))
            length = min(op.length, chain.size - offset)
            if length <= 0:
                continue
            if op.kind == "read":
                with demand_lock:
                    chain.read(offset, length)
                if demand_reads is not None:
                    demand_reads.add(offset, length)
                result.guest_bytes_read += length
            else:
                with demand_lock:
                    chain.write(offset, b"\0" * length)
                result.guest_bytes_written += length
            result.ops_replayed += 1

        if prefetcher is not None:
            prefetcher.stop()
            prefetcher.join()
            prefetcher.account(
                demand_reads,
                align=getattr(prefetcher.cache, "cluster_size", None))

        result.base_bytes_read = base.stats.bytes_read - base_read0
        result.base_read_ops = base.stats.read_ops - base_ops0
        if track_unique:
            result.unique_base_bytes = base.stats.touched.total()

        node: BlockDriver | None = chain
        while node is not None:
            result.layers.append(node.path)
            node = node.backing

        cache = find_cache_layer(chain)
        if cache is not None:
            result.cache_hit_bytes = cache.stats.cache_hit_bytes
            result.cache_miss_bytes = cache.stats.cache_miss_bytes
            result.cor_bytes_written = cache.stats.cor_bytes_written
            result.cor_disabled = not cache.cache_runtime.cor.enabled
            cache.flush()
            result.cache_file_size = cache.physical_size
        if TRACER.enabled:
            TRACER.event(
                "replay.summary", vm_id=vm_id or trace.os_name,
                os_name=trace.os_name, base_path=base.path,
                ops_replayed=result.ops_replayed,
                guest_bytes_read=result.guest_bytes_read,
                guest_bytes_written=result.guest_bytes_written,
                base_bytes_read=result.base_bytes_read,
                unique_base_bytes=result.unique_base_bytes,
                cache_hit_bytes=result.cache_hit_bytes,
                cache_miss_bytes=result.cache_miss_bytes,
                cor_bytes_written=result.cor_bytes_written,
                cor_disabled=result.cor_disabled)
    return result


def warm_cache_by_boot(
    trace: BootTrace,
    base_path: str,
    cache_path: str,
    *,
    quota: int,
    cache_cluster_size: int = 512,
) -> ReplayResult:
    """Boot a sample VM once to warm a cache image (§3.2: 'the system
    can boot a sample VM upon a new VMI registration to create the
    cache').  The throwaway CoW overlay is deleted afterwards."""
    from repro.imagefmt.chain import create_cache_chain

    scratch_cow = cache_path + ".warmup-cow"
    chain = create_cache_chain(
        base_path, cache_path, scratch_cow,
        quota=quota, cache_cluster_size=cache_cluster_size,
    )
    try:
        with chain:
            result = replay_through_chain(trace, chain)
    finally:
        if os.path.exists(scratch_cow):
            os.unlink(scratch_cow)
    return result


def measure_boot_time_uncontended(
    trace: BootTrace,
    read_latency: float,
    read_bandwidth: float,
) -> float:
    """Analytic boot time for a single uncontended VM.

    ``boot = Σ think + Σ (latency + length/bandwidth)`` over reads that
    miss every cache; used as a sanity anchor for the simulator (the
    full model with contention lives in :mod:`repro.sim`).
    """
    wait = sum(read_latency + op.length / read_bandwidth
               for op in trace.reads())
    return trace.total_think_time() + wait


def make_sparse_base(path: str, profile_size: int) -> str:
    """A sparse raw base image of the profile's VMI size.

    The replayed boots only care about which *ranges* they touch, so a
    hole-filled base (reads return zeros) moves exactly the same byte
    counts a real OS image would, without multi-GB test fixtures.
    """
    from repro.imagefmt.raw import RawImage

    RawImage.create(path, profile_size).close()
    return path
