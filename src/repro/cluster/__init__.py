"""The deployment layer: cache pools, placement, scheduling.

This is where the paper's Sections 3.4 (cache-aware cloud scheduler)
and 6 (cache placement, Algorithm 1) live.  The layer sits on top of
the simulated testbed (:mod:`repro.sim`) and turns "boot N VMs from
these VMIs" requests into image chains, node assignments, and post-boot
cache management — the integration with the cloud middleware that the
paper names as its next step.
"""

from repro.cluster.cache_manager import CachePool, CacheRegistry
from repro.cluster.deployment import Deployment, DeploymentResult
from repro.cluster.middleware import Cloud, VMIDescriptor
from repro.cluster.peerfill import (
    PeerFillReport,
    fill_cache,
    resolve_peers,
)
from repro.cluster.placement import PlacementPlan, plan_chain
from repro.cluster.prefetch import Prefetcher, PrefetchReport
from repro.cluster.scheduler import (
    CacheAwareScheduler,
    LoadAwareStrategy,
    PackingStrategy,
    StripingStrategy,
)
from repro.cluster.warmer import (
    WarmReport,
    checksum_extents,
    warm_cache,
    working_set_extents,
)

__all__ = [
    "CachePool",
    "CacheRegistry",
    "plan_chain",
    "PlacementPlan",
    "CacheAwareScheduler",
    "PackingStrategy",
    "StripingStrategy",
    "LoadAwareStrategy",
    "Deployment",
    "DeploymentResult",
    "Cloud",
    "VMIDescriptor",
    "Prefetcher",
    "PrefetchReport",
    "WarmReport",
    "checksum_extents",
    "warm_cache",
    "working_set_extents",
    "PeerFillReport",
    "fill_cache",
    "resolve_peers",
]
