"""Cache pools with quota accounting and LRU eviction.

Section 3.4: "One of the other tasks of a cache-aware scheduler should
be the eviction of VMI caches whenever the allocated cache space is
full for a new VMI cache.  This can be a policy such as LRU at the node
or cloud level."  A :class:`CachePool` is one bounded pool (a compute
node's reserved disk space, or the storage node's memory); a
:class:`CacheRegistry` tracks the pool of every location in the
cluster.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.sim.blockio import SimImage


@dataclass
class CachePoolStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    replacements: int = 0
    rejected_too_big: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachePool:
    """An LRU pool of cache images for one physical location."""

    def __init__(self, name: str, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[str, SimImage] = OrderedDict()
        self.used_bytes = 0
        self.stats = CachePoolStats()

    # -- lookup -----------------------------------------------------------

    def get(self, vmi_id: str) -> SimImage | None:
        """Warm-cache lookup; refreshes LRU recency on hit."""
        cache = self._entries.get(vmi_id)
        if cache is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(vmi_id)
        self.stats.hits += 1
        return cache

    def peek(self, vmi_id: str) -> SimImage | None:
        """Lookup without LRU refresh or stats (for scheduling scans)."""
        return self._entries.get(vmi_id)

    def __contains__(self, vmi_id: str) -> bool:
        return vmi_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def vmi_ids(self) -> list[str]:
        """Cached VMI ids, least recently used first."""
        return list(self._entries)

    # -- insertion / eviction ----------------------------------------------

    def put(self, vmi_id: str, cache: SimImage) -> list[SimImage]:
        """Insert a cache image, evicting LRU entries to make room.

        Returns every image this pool stopped holding — LRU victims
        *and* a replaced or stale entry for the same ``vmi_id`` (the
        caller owns any cleanup, e.g. freeing simulated memory).  An
        image bigger than the whole pool is rejected and not cached;
        any existing entry for that ``vmi_id`` is dropped too, because
        the caller is telling us it is outdated and serving it as a
        future hit would resurrect stale data.
        """
        size = cache.physical_bytes
        evicted: list[SimImage] = []
        if size > self.capacity_bytes:
            self.stats.rejected_too_big += 1
            stale = self.remove(vmi_id)
            if stale is not None:
                evicted.append(stale)
            return evicted
        if vmi_id in self._entries:
            replaced = self._entries.pop(vmi_id)
            self.used_bytes -= replaced.physical_bytes
            self.stats.replacements += 1
            evicted.append(replaced)
        while self.used_bytes + size > self.capacity_bytes \
                and self._entries:
            _victim_id, victim = self._entries.popitem(last=False)
            self.used_bytes -= victim.physical_bytes
            self.stats.evictions += 1
            evicted.append(victim)
        self._entries[vmi_id] = cache
        self.used_bytes += size
        self.stats.insertions += 1
        return evicted

    def remove(self, vmi_id: str) -> SimImage | None:
        cache = self._entries.pop(vmi_id, None)
        if cache is not None:
            self.used_bytes -= cache.physical_bytes
        return cache

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def __repr__(self) -> str:
        return (f"<CachePool {self.name!r} {len(self._entries)} entries "
                f"{self.used_bytes}/{self.capacity_bytes}B>")


class CacheRegistry:
    """All cache pools in the cluster: one per compute node + the
    storage node's memory pool."""

    def __init__(
        self,
        node_ids: list[str],
        *,
        node_capacity_bytes: int,
        storage_capacity_bytes: int,
    ) -> None:
        self.node_pools: dict[str, CachePool] = {
            node_id: CachePool(f"{node_id}.cachepool",
                               node_capacity_bytes)
            for node_id in node_ids
        }
        self.storage_pool = CachePool("storage-mem.cachepool",
                                      storage_capacity_bytes)

    def node_pool(self, node_id: str) -> CachePool:
        return self.node_pools[node_id]

    def nodes_with_cache(self, vmi_id: str) -> list[str]:
        """Node ids holding a warm cache for this VMI (§3.4: the
        scheduler prefers these)."""
        return [node_id for node_id, pool in self.node_pools.items()
                if vmi_id in pool]

    def invalidate_vmi(self, vmi_id: str) -> int:
        """Drop every cache of a VMI, cluster-wide.

        §3's validity rule: a cache "can be reused many times in the
        future as long as the base image remains unchanged" — so when
        an operator commits a new golden image over a base, all its
        caches must go.  Returns the number of entries dropped.
        """
        dropped = 0
        for pool in list(self.node_pools.values()) + [self.storage_pool]:
            if pool.remove(vmi_id) is not None:
                dropped += 1
        return dropped

    def total_cached_vmis(self) -> int:
        ids = set(self.storage_pool.vmi_ids())
        for pool in self.node_pools.values():
            ids.update(pool.vmi_ids())
        return len(ids)
