"""Deployment waves: turn VM requests into chains, boots, and cache
bookkeeping.

One :class:`Deployment` owns a testbed and a cache registry and runs
*waves* of simultaneous VM startups — the unit of the paper's §5
experiments.  The ``cache_mode`` selects which evaluation setup the
wave reproduces:

``none``
    Plain on-demand QCOW2 (the §2 baseline; Figures 2 and 3).

``compute-disk``
    VMI caches on the compute nodes' disks (Figures 7, 11, 12).  Cold
    caches are staged in compute-node memory during boot and flushed to
    the local disk after VM shutdown, off the critical path (§5.1).

``storage-mem``
    VMI caches in the storage node's memory (Figures 13, 14).  One VM
    per VMI creates the cache and ships it back — with the transfer
    charged to that VM's boot time, as the paper does — while its
    siblings proceed with plain QCOW2.

``algorithm1``
    The §6 recommendation: chain to a local cache if present, else to
    the storage-memory cache (creating a local one on the way), else
    create cold and copy back on shutdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.bootmodel.trace import BootTrace
from repro.cluster.cache_manager import CacheRegistry
from repro.cluster.placement import PlacementPlan, plan_chain
from repro.cluster.warmer import working_set_extents
from repro.metrics.registry import get_registry
from repro.metrics.tracing import TRACER
from repro.sim.blockio import SimImage
from repro.sim.cluster_sim import (
    BootJob,
    ScenarioResult,
    Testbed,
    boot_vms,
)
from repro.units import MB

CacheMode = Literal["none", "compute-disk", "storage-mem", "algorithm1"]

#: §2.3: "a VMI cache entry would need to have in the order of 250 MB
#: (providing some margin)".
DEFAULT_CACHE_QUOTA = 250 * MB


@dataclass
class VMRequest:
    """One VM to start in a wave."""

    vm_id: str
    vmi_id: str
    node_id: str


@dataclass
class DeploymentResult:
    """A wave's outcome: boot measurements plus cache bookkeeping."""

    scenario: ScenarioResult
    decisions: dict[str, str] = field(default_factory=dict)
    post_boot_seconds: float = 0.0
    """Simulated time spent on off-critical-path work after the boots
    (cache flushes to disk, Algorithm 1 copy-backs)."""

    @property
    def mean_boot_time(self) -> float:
        return self.scenario.mean_boot_time


class Deployment:
    """Runs deployment waves against one testbed."""

    def __init__(
        self,
        testbed: Testbed,
        registry: CacheRegistry,
        *,
        cache_mode: CacheMode = "algorithm1",
        cache_quota: int = DEFAULT_CACHE_QUOTA,
        cache_cluster_bits: int = 9,
    ) -> None:
        if cache_mode not in ("none", "compute-disk", "storage-mem",
                              "algorithm1"):
            raise ValueError(f"unknown cache mode {cache_mode!r}")
        self.testbed = testbed
        self.registry = registry
        self.cache_mode = cache_mode
        self.cache_quota = cache_quota
        self.cache_cluster_bits = cache_cluster_bits
        self.bases: dict[str, SimImage] = {}
        self.traces: dict[str, BootTrace] = {}

    # -- VMI registration ---------------------------------------------------

    def register_vmi(self, vmi_id: str, size: int,
                     trace: BootTrace) -> SimImage:
        base = self.testbed.make_base(vmi_id, size)
        self.bases[vmi_id] = base
        self.traces[vmi_id] = trace
        return base

    def prewarm(self, vmi_id: str, node_id: str, *,
                register: Literal["storage", "node"] = "storage",
                plan=None) -> float:
        """Warm a VMI cache from its trace's working set, ahead of any
        wave — the simulated counterpart of
        :func:`repro.cluster.warmer.warm_cache`.

        Instead of booting a sample VM (which serializes cold reads in
        boot order), the working set is read cluster-aligned through a
        fresh cache staged in ``node_id``'s memory, then the populated
        cache is registered: ``register="storage"`` ships it to the
        storage node's tmpfs (Figure 13 arrangement), ``"node"``
        flushes it to the compute node's local disk (Figure 7).
        Subsequent waves then take the warm-cache path.  Returns the
        simulated seconds the warm-up took.

        ``plan`` (a :class:`~repro.bootmodel.prefetch.PrefetchPlan`)
        substitutes a mined plan's extents for the trace-derived
        working set — the plan-driven entry point matching the real
        datapath's :class:`~repro.cluster.prefetch.Prefetcher`.
        """
        if register not in ("storage", "node"):
            raise ValueError(f"unknown register target {register!r}")
        tb = self.testbed
        base = self.bases[vmi_id]
        trace = self.traces[vmi_id]
        node = tb.node_by_id(node_id)
        cache = SimImage(
            f"{vmi_id}.prewarm", base.size,
            tb.compute_mem_location(node, f"{vmi_id}.prewarm"),
            cluster_bits=self.cache_cluster_bits,
            backing=base,
            cache_quota=self.cache_quota,
        )
        if plan is not None:
            extents = [(e.offset, e.length)
                       for e in plan.clipped(cache.size).extents]
        else:
            extents = working_set_extents(trace, size=cache.size,
                                          align=cache.cluster_size)
        t0 = tb.env.now

        def warm():
            plan = []
            for offset, length in extents:
                cache.read(offset, length, plan)
            for req in plan:
                yield from tb.execute(req, node)
            if register == "storage":
                yield from tb.copy_cache_to_storage_memory(cache)
            else:
                yield from tb.flush_cache_to_local_disk(node, cache)

        tb.env.run(until=tb.env.process(warm()))
        if register == "storage":
            evicted = self.registry.storage_pool.put(vmi_id, cache)
            for victim in evicted:
                tb.storage.memory.free(victim.physical_bytes)
        else:
            self.registry.node_pool(node_id).put(vmi_id, cache)
        if TRACER.enabled:
            TRACER.record_span(
                "deploy.prewarm", t0, tb.env.now,
                vmi_id=vmi_id, node=node_id, register=register,
                extents=len(extents))
        return tb.env.now - t0

    # -- wave execution -------------------------------------------------------

    def run_wave(self, requests: list[VMRequest],
                 *, prefetch_plans: dict | None = None
                 ) -> DeploymentResult:
        """Start all requested VMs simultaneously.

        ``prefetch_plans`` maps ``vmi_id`` to a
        :class:`~repro.bootmodel.prefetch.PrefetchPlan`; matching VMs
        boot with the plan-driven prefetch twin running alongside
        their demand stream (``BootJob.prefetch_plan``) — the Figure
        11-style ablation at cluster scale.
        """
        tb = self.testbed
        plans: list[tuple[VMRequest, PlacementPlan]] = []
        cold_creator_per_vmi: dict[str, str] = {}
        cold_creator_per_node_vmi: set[tuple[str, str]] = set()

        # The wave span's ids are allocated up front so every VM boot
        # inside the wave can parent onto it (the span itself is
        # recorded once the wave's virtual end time is known).
        wave_ids = TRACER.allocate_ids() if TRACER.enabled else None
        t0 = tb.env.now

        for req in requests:
            base = self.bases[req.vmi_id]
            node = tb.node_by_id(req.node_id)
            plan = self._plan_for(req, base, node,
                                  cold_creator_per_vmi,
                                  cold_creator_per_node_vmi)
            plans.append((req, plan))
            get_registry().counter(
                "deploy_placements_total",
                decision=plan.decision).inc()
            if wave_ids is not None:
                TRACER.record_span(
                    "deploy.plan", tb.env.now, tb.env.now,
                    trace_id=wave_ids[0], parent_id=wave_ids[1],
                    vm_id=req.vm_id, vmi_id=req.vmi_id,
                    node=req.node_id, decision=plan.decision)

        self._run_pre_boot(plans)
        jobs = []
        for req, plan in plans:
            node = tb.node_by_id(req.node_id)
            cow = SimImage(
                f"{req.vm_id}.cow", plan.backing_for_cow.size,
                tb.compute_mem_location(node, f"{req.vm_id}.cow"),
                backing=plan.backing_for_cow,
            )
            epilogue = None
            if self.cache_mode == "storage-mem" \
                    and "copy-cache-to-storage" in plan.post_boot:
                cache = plan.new_cache

                def epilogue(cache=cache):  # noqa: B023 - bound above
                    return tb.copy_cache_to_storage_memory(cache)

            jobs.append(BootJob(req.vm_id, node, cow,
                                self.traces[req.vmi_id],
                                epilogue=epilogue,
                                prefetch_plan=(prefetch_plans or {})
                                .get(req.vmi_id)))

        scenario = boot_vms(tb, jobs, trace_parent=wave_ids)
        post_t0 = tb.env.now
        self._run_post_boot(plans)
        result = DeploymentResult(
            scenario=scenario,
            decisions={req.vm_id: plan.decision for req, plan in plans},
            post_boot_seconds=tb.env.now - post_t0,
        )
        if wave_ids is not None:
            TRACER.record_span(
                "deploy.wave", t0, tb.env.now,
                trace_id=wave_ids[0], span_id=wave_ids[1],
                vms=len(requests), cache_mode=self.cache_mode,
                mean_boot_time=scenario.mean_boot_time,
                post_boot_seconds=result.post_boot_seconds)
        return result

    # -- planning -------------------------------------------------------------

    def _plan_for(
        self,
        req: VMRequest,
        base: SimImage,
        node,
        cold_creator_per_vmi: dict[str, str],
        cold_creator_per_node_vmi: set[tuple[str, str]],
    ) -> PlacementPlan:
        if self.cache_mode == "none":
            return PlacementPlan(backing_for_cow=base,
                                 decision="no-cache")

        if self.cache_mode == "compute-disk":
            local = self.registry.node_pool(node.node_id).get(base.name)
            if local is not None:
                return PlacementPlan(backing_for_cow=local,
                                     decision="local-warm")
            key = (node.node_id, base.name)
            if key in cold_creator_per_node_vmi:
                return PlacementPlan(backing_for_cow=base,
                                     decision="no-cache")
            cold_creator_per_node_vmi.add(key)
            cache = self._new_cache(req, base, node)
            return PlacementPlan(
                backing_for_cow=cache, new_cache=cache, decision="cold",
                post_boot=["flush-cache-to-local-disk", "register-local"],
            )

        if self.cache_mode == "storage-mem":
            warm = self.registry.storage_pool.get(base.name)
            if warm is not None:
                return PlacementPlan(backing_for_cow=warm,
                                     decision="storage-warm")
            if base.name in cold_creator_per_vmi:
                return PlacementPlan(backing_for_cow=base,
                                     decision="no-cache")
            cold_creator_per_vmi[base.name] = req.vm_id
            cache = self._new_cache(req, base, node)
            return PlacementPlan(
                backing_for_cow=cache, new_cache=cache, decision="cold",
                post_boot=["copy-cache-to-storage",
                           "register-storage"],
            )

        # algorithm1
        key = (node.node_id, base.name)
        create_cold = key not in cold_creator_per_node_vmi
        plan = plan_chain(
            self.testbed, self.registry, node, base,
            quota=self.cache_quota,
            cache_cluster_bits=self.cache_cluster_bits,
            create_cold_cache=create_cold,
            vm_name=req.vm_id,
        )
        if plan.decision == "cold":
            cold_creator_per_node_vmi.add(key)
            if base.name in cold_creator_per_vmi:
                # Another node already ships this VMI's cache back.
                plan.post_boot.remove("copy-cache-to-storage")
            else:
                cold_creator_per_vmi[base.name] = req.vm_id
        elif plan.decision == "storage-warm":
            cold_creator_per_node_vmi.add(key)
        return plan

    def _new_cache(self, req: VMRequest, base: SimImage,
                   node) -> SimImage:
        """A cold cache staged in the compute node's memory (Figure 7:
        populate in memory to keep slow synchronous writes off the boot
        path)."""
        return SimImage(
            f"{req.vm_id}.cache", base.size,
            self.testbed.compute_mem_location(node,
                                              f"{req.vm_id}.cache"),
            cluster_bits=self.cache_cluster_bits,
            backing=base,
            cache_quota=self.cache_quota,
        )

    # -- pre-boot actions --------------------------------------------------------

    def _run_pre_boot(
            self, plans: list[tuple[VMRequest, PlacementPlan]]) -> None:
        """Algorithm 1's 'if Cache_base is on disk then copy Base_cache
        to tmpfs': promote storage-disk caches into storage memory
        before the wave boots."""
        tb = self.testbed
        promoted: set[str] = set()
        procs = []
        for _req, plan in plans:
            if "promote-storage-cache-to-tmpfs" not in plan.pre_boot:
                continue
            storage_cache = plan.backing_for_cow.backing \
                if plan.new_cache is not None else plan.backing_for_cow
            if storage_cache is None \
                    or storage_cache.location.kind != "nfs" \
                    or storage_cache.name in promoted:
                continue
            promoted.add(storage_cache.name)

            def promote(cache=storage_cache):
                yield from tb.storage.disk.read(
                    cache.physical_bytes,
                    stream=cache.location.file_id, offset=0)
                yield from tb.storage.memory.write(cache.physical_bytes)
                cache.location = tb.storage_mem_location(
                    cache.location.file_id)

            procs.append(tb.env.process(promote()))
        if procs:
            tb.env.run(until=tb.env.all_of(procs))

    # -- post-boot actions ------------------------------------------------------

    def _run_post_boot(
            self, plans: list[tuple[VMRequest, PlacementPlan]]) -> None:
        tb = self.testbed
        procs = []
        storage_copies: dict[str, SimImage] = {}
        for req, plan in plans:
            cache = plan.new_cache
            if cache is None:
                continue
            node = tb.node_by_id(req.node_id)
            if "flush-cache-to-local-disk" in plan.post_boot:
                procs.append(tb.env.process(
                    tb.flush_cache_to_local_disk(node, cache)))
            if "copy-cache-to-storage" in plan.post_boot \
                    and self.cache_mode == "algorithm1":
                # The storage node receives its own physical copy; the
                # original stays on (moves to) the compute node's disk.
                vmi_id = self._vmi_of(plan)
                copy = cache.clone_to(
                    tb.compute_mem_location(node,
                                            f"{cache.name}.shipping"))
                storage_copies[vmi_id] = copy
                procs.append(tb.env.process(
                    tb.copy_cache_to_storage_memory(copy)))
        if procs:
            tb.env.run(until=tb.env.all_of(procs))
        # Register in pools once the physical placement settled.
        for req, plan in plans:
            cache = plan.new_cache
            if cache is None:
                continue
            vmi_id = self._vmi_of(plan)
            if "register-local" in plan.post_boot:
                pool = self.registry.node_pool(req.node_id)
                pool.put(vmi_id, cache)
            storage_bound = storage_copies.pop(vmi_id, None) \
                if self.cache_mode == "algorithm1" else (
                    cache if "register-storage" in plan.post_boot
                    else None)
            if storage_bound is not None:
                evicted = self.registry.storage_pool.put(
                    vmi_id, storage_bound)
                for victim in evicted:
                    tb.storage.memory.free(victim.physical_bytes)

    @staticmethod
    def _vmi_of(plan: PlacementPlan) -> str:
        img = plan.backing_for_cow
        while img.backing is not None:
            img = img.backing
        return img.name
