"""The IaaS middleware facade.

``Cloud`` plays the role OpenNebula plays on DAS-4: it owns the node
inventory, accepts VMI registrations, schedules VM requests onto nodes
(cache-aware, §3.4), and runs deployment waves.  The paper's "next
step of our work is to integrate this scheme into the cloud scheduler"
— this module is that integration, built so the caching layer stays
middleware-agnostic underneath (the chains are plain image files).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bootmodel.trace import BootTrace
from repro.cluster.cache_manager import CacheRegistry
from repro.cluster.deployment import (
    DEFAULT_CACHE_QUOTA,
    CacheMode,
    Deployment,
    DeploymentResult,
    VMRequest,
)
from repro.cluster.scheduler import (
    CacheAwareScheduler,
    NodeState,
    PlacementStrategy,
    make_states,
)
from repro.sim.cluster_sim import Testbed
from repro.units import GiB


@dataclass
class VMIDescriptor:
    """One registered VM image."""

    vmi_id: str
    size: int
    trace: BootTrace


class Cloud:
    """A small IaaS: testbed + registry + scheduler + deployment."""

    def __init__(
        self,
        *,
        n_compute: int = 64,
        network: str = "1gbe",
        cache_mode: CacheMode = "algorithm1",
        strategy: PlacementStrategy | None = None,
        cache_affinity: bool = True,
        slots_per_node: int = 8,
        node_cache_capacity: int = 2 * GiB,
        storage_cache_capacity: int = 16 * GiB,
        cache_quota: int = DEFAULT_CACHE_QUOTA,
        cache_cluster_bits: int = 9,
        testbed: Testbed | None = None,
    ) -> None:
        self.testbed = testbed if testbed is not None else Testbed(
            n_compute=n_compute, network=network)
        node_ids = [n.node_id for n in self.testbed.computes]
        self.registry = CacheRegistry(
            node_ids,
            node_capacity_bytes=node_cache_capacity,
            storage_capacity_bytes=storage_cache_capacity,
        )
        self.scheduler = CacheAwareScheduler(
            strategy, cache_affinity=cache_affinity)
        self.deployment = Deployment(
            self.testbed, self.registry,
            cache_mode=cache_mode,
            cache_quota=cache_quota,
            cache_cluster_bits=cache_cluster_bits,
        )
        self.states: dict[str, NodeState] = make_states(
            node_ids, capacity_slots=slots_per_node)
        self.vmis: dict[str, VMIDescriptor] = {}
        self._vm_counter = 0

    # -- VMI lifecycle ------------------------------------------------------

    def register_vmi(self, vmi_id: str, size: int,
                     trace: BootTrace, *,
                     prewarm: bool = False) -> VMIDescriptor:
        """Register an image on the storage node's NFS export.

        ``prewarm=True`` implements §3.2's eager option: "the system
        can boot a sample VM upon a new VMI registration to create the
        cache".  A throwaway sample VM boots immediately (simulated
        time passes), leaving warm caches behind per the cache mode —
        so the first *user* request already hits them.
        """
        if vmi_id in self.vmis:
            raise ValueError(f"VMI {vmi_id!r} already registered")
        desc = VMIDescriptor(vmi_id, size, trace)
        self.vmis[vmi_id] = desc
        self.deployment.register_vmi(vmi_id, size, trace)
        if prewarm:
            if self.deployment.cache_mode == "none":
                raise ValueError(
                    "prewarm is meaningless with cache_mode='none'")
            result = self.start_vms([(vmi_id, 1)])
            # Release the sample VM's slot; its caches stay.
            for record in result.scenario.records:
                state = self.states[record.node_id]
                state.used_slots = max(0, state.used_slots - 1)
        return desc

    # -- VM lifecycle --------------------------------------------------------

    def start_vms(
        self,
        requests: list[tuple[str, int]],
        *,
        node_override: list[str] | None = None,
    ) -> DeploymentResult:
        """Start ``count`` VMs per ``(vmi_id, count)``, simultaneously.

        The scheduler assigns nodes (warm-cache affinity first) unless
        ``node_override`` pins VM *i* to a node id — used by the
        benchmarks to reproduce the paper's fixed one-VM-per-node
        layout.
        """
        wave: list[VMRequest] = []
        i = 0
        for vmi_id, count in requests:
            if vmi_id not in self.vmis:
                raise KeyError(f"unregistered VMI {vmi_id!r}")
            for _ in range(count):
                if node_override is not None:
                    node_id = node_override[i]
                    self.states[node_id].used_slots += 1
                else:
                    node_id = self.scheduler.select(
                        vmi_id, self.states, self.registry)
                wave.append(VMRequest(
                    vm_id=f"vm{self._vm_counter:04d}",
                    vmi_id=vmi_id, node_id=node_id))
                self._vm_counter += 1
                i += 1
        return self.deployment.run_wave(wave)

    def shutdown_all(self) -> None:
        """Release every VM slot (caches stay warm — that's the point)."""
        for state in self.states.values():
            state.used_slots = 0

    # -- introspection ---------------------------------------------------------

    def warm_nodes(self, vmi_id: str) -> list[str]:
        return self.registry.nodes_with_cache(vmi_id)

    @property
    def env(self):
        return self.testbed.env
