"""Peer-to-peer cache fill: warm a booting node from its neighbors.

The paper's Figure 11 problem: every cache miss in a scale-out
deployment lands on the one central storage node, so cold boots
serialize behind its disks.  But after the first wave of boots the
*cluster itself* holds the working set — every warm compute node has a
byte-identical cache.  This module lets a cold node fill its cache
from those peers and touch the storage node only for what no peer can
serve, turning deployment bandwidth from "one storage node" into "the
whole rack".

Trust model.  Peers are fast but not authoritative: the booting node
first obtains the **authoritative manifest** (cluster-index → SHA-256,
:mod:`repro.imagefmt.manifest`) from the storage node (or a persisted
warm-up), then verifies every peer-served cluster against it before
writing a byte.  A slow, stale, or corrupt peer can therefore waste
one fetch, never poison a cache — the fallback ladder is

1. **local** — a content-addressed :class:`~repro.imagefmt.manifest.
   ContentIndex` over caches this node already holds (cross-VMI dedup:
   identical clusters of *different* base images hash identically);
2. **peer** — clusters the peer's own manifest claims, fetched over
   the ordinary v5 block protocol and digest-verified;
3. **storage** — everything else, plus every verify failure, peer
   timeout, or mid-transfer death, read from the cache's backing
   exactly like an ordinary warm-up.

A fill therefore **never fails the boot**: with zero usable peers it
degrades to exactly the storage-node warm-up path.

Peer discovery is a view, not a protocol: :func:`resolve_peers` reads
a :class:`~repro.metrics.fleet.FleetSnapshot` (every healthy node's
``/healthz`` already advertises its block address and which exports
carry manifests) and returns dialable URLs, warmest first.  A static
peer list works the same — peers are just ``nbd://`` URLs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import QuotaExceededError, RemoteError
from repro.imagefmt.manifest import ClusterManifest, ContentIndex
from repro.metrics.registry import get_registry
from repro.metrics.tracing import TRACER
from repro.remote import protocol as wire
from repro.units import MiB


def resolve_peers(snapshot, export: str, *,
                  exclude: "tuple | list | set" = ()) -> list[str]:
    """Warm-peer URLs for ``export`` from a fleet health view.

    Walks a :class:`~repro.metrics.fleet.FleetSnapshot`'s nodes and
    keeps every healthy one whose health document advertises a block
    address and an open export of that name.  Peers whose export
    carries a manifest sort first (they serve a fill without a lazy
    server-side scan); ``exclude`` drops the booting node itself.
    """
    candidates: list[tuple[int, str]] = []
    for node in snapshot.nodes.values():
        if node.name in exclude or node.status != "ok":
            continue
        health = node.health or {}
        addr = health.get("block_address")
        entry = (health.get("exports") or {}).get(export)
        if not addr or len(addr) != 2 or not entry:
            continue
        if not entry.get("open"):
            continue
        rank = 0 if entry.get("manifest") else 1
        candidates.append((rank, f"nbd://{addr[0]}:{addr[1]}/{export}"))
    return [url for _rank, url in sorted(candidates)]


@dataclass
class PeerFillReport:
    """What one :func:`fill_cache` run did, and from where."""

    vmi_id: str = ""
    clusters_needed: int = 0
    clusters_from_local: int = 0    # ContentIndex cross-image dedup
    clusters_from_peer: int = 0
    clusters_from_storage: int = 0
    bytes_from_local: int = 0
    bytes_from_peer: int = 0
    bytes_from_storage: int = 0
    verify_failures: int = 0        # peer clusters that failed digests
    peer_errors: int = 0            # connects/transfers that died
    peers_used: list[str] = field(default_factory=list)
    quota_exhausted: bool = False
    seconds: float = 0.0

    @property
    def bytes_total(self) -> int:
        return (self.bytes_from_local + self.bytes_from_peer
                + self.bytes_from_storage)

    @property
    def storage_offload_fraction(self) -> float | None:
        """Fraction of filled bytes that never touched central
        storage — the per-boot version of the Fig 11 y-axis.  None
        when the fill moved no bytes."""
        total = self.bytes_total
        if not total:
            return None
        return 1.0 - self.bytes_from_storage / total

    def summary(self) -> dict:
        return {
            "vmi_id": self.vmi_id,
            "clusters_needed": self.clusters_needed,
            "clusters_from_local": self.clusters_from_local,
            "clusters_from_peer": self.clusters_from_peer,
            "clusters_from_storage": self.clusters_from_storage,
            "bytes_from_local": self.bytes_from_local,
            "bytes_from_peer": self.bytes_from_peer,
            "bytes_from_storage": self.bytes_from_storage,
            "verify_failures": self.verify_failures,
            "peer_errors": self.peer_errors,
            "peers_used": list(self.peers_used),
            "quota_exhausted": self.quota_exhausted,
            "storage_offload_fraction": self.storage_offload_fraction,
            "seconds": self.seconds,
        }


def _count(name: str, amount: float = 1, **labels) -> None:
    get_registry().counter(name, **labels).inc(amount)


class _PeerSession:
    """One connected peer: its image handle and usable manifest."""

    __slots__ = ("url", "img", "manifest")

    def __init__(self, url, img, manifest) -> None:
        self.url = url
        self.img = img
        self.manifest = manifest


def fill_cache(
    cache,
    authoritative: ClusterManifest,
    *,
    peers: "list[str] | tuple" = (),
    content_index: ContentIndex | None = None,
    connect=None,
    op_timeout: float = 5.0,
    connect_timeout: float = 2.0,
    batch_bytes: int = 8 * MiB,
    flush: bool = True,
) -> PeerFillReport:
    """Fill ``cache`` with the clusters of ``authoritative``, cheapest
    source first.

    ``authoritative`` is the trusted manifest (fetched from the
    storage node via :meth:`RemoteImage.fetch_manifest`, or loaded
    from a warm-up's persisted copy).  ``peers`` are candidate
    ``nbd://`` URLs tried in order; ``content_index`` enables the
    local cross-image dedup rung.  ``connect`` defaults to
    :meth:`RemoteImage.connect` (injectable for tests).

    Every failure mode inside the fill — unreachable peer, protocol
    clamp below v5, digest mismatch, mid-transfer death, a peer whose
    manifest geometry differs — degrades toward the storage rung; only
    storage-rung errors (the same errors an ordinary warm-up would
    hit) propagate.
    """
    if connect is None:
        from repro.remote.client import RemoteImage
        connect = RemoteImage.connect
    report = PeerFillReport(vmi_id=authoritative.vmi_id)
    started = time.perf_counter()
    _count("peerfill_runs_total")

    needed = _needed_clusters(cache, authoritative)
    report.clusters_needed = len(needed)

    with TRACER.span("cache.peerfill", path=cache.path,
                     vmi_id=authoritative.vmi_id) as span:
        try:
            if needed and content_index is not None:
                needed = _fill_from_local(cache, authoritative, needed,
                                          content_index, report)
            for url in peers:
                if not needed:
                    break
                session = _open_peer(url, authoritative, connect,
                                     connect_timeout, op_timeout,
                                     report)
                if session is None:
                    continue
                try:
                    needed = _fill_from_peer(cache, authoritative,
                                             needed, session, report,
                                             batch_bytes)
                finally:
                    try:
                        session.img.close()
                    except Exception:
                        pass
            if needed:
                _fill_from_storage(cache, authoritative, needed,
                                   report, batch_bytes)
        except QuotaExceededError:
            runtime = getattr(cache, "cache_runtime", None)
            if runtime is not None:
                runtime.cor.record_space_error()
            report.quota_exhausted = True
        if flush and not cache.closed:
            cache.flush()
        span.attrs.update(report.summary())

    report.seconds = time.perf_counter() - started
    return report


def _needed_clusters(cache, manifest: ClusterManifest) -> list[int]:
    """Manifested clusters the cache does not already hold."""
    have: set[int] = set()
    map_clusters = getattr(cache, "map_clusters", None)
    if map_clusters is not None:
        cluster = manifest.cluster_size
        for off, length, allocated in map_clusters():
            if not allocated:
                continue
            first = off // cluster
            last = (off + length - 1) // cluster
            have.update(range(first, last + 1))
    return sorted(i for i in manifest.digests if i not in have)


def _store(cache, manifest: ClusterManifest, index: int,
           data: bytes) -> int:
    offset, length = manifest.cluster_extent(index)
    cache.write(offset, data[:length])
    return length


def _fill_from_local(cache, manifest, needed, index: ContentIndex,
                     report: PeerFillReport) -> list[int]:
    """Rung 1: clusters some already-held cache can serve by content."""
    remaining: list[int] = []
    for i in needed:
        data = index.fetch(manifest.digests[i])
        if data is None:
            remaining.append(i)
            continue
        n = _store(cache, manifest, i, data)
        report.clusters_from_local += 1
        report.bytes_from_local += n
        _count("peerfill_bytes_total", n, source="local")
        _count("peerfill_clusters_total", source="local")
    return remaining


def _open_peer(url: str, authoritative: ClusterManifest, connect,
               connect_timeout: float, op_timeout: float,
               report: PeerFillReport) -> _PeerSession | None:
    """Dial one peer and vet its manifest; None when unusable.

    Unusable covers: unreachable, clamped below v5 (no manifest
    support), manifest geometry mismatch.  All are silent downgrades —
    the ladder just moves on.
    """
    try:
        img = connect(url, read_only=True,
                      timeout=connect_timeout, op_timeout=op_timeout,
                      max_retries=0)
    except (RemoteError, wire.ProtocolError, OSError):
        report.peer_errors += 1
        _count("peerfill_peer_errors_total")
        return None
    try:
        manifest = img.fetch_manifest()
    except wire.ProtocolError:
        # Pre-v5 peer: cannot prove what it holds, so it cannot be a
        # fill source (asking blind would bounce its misses off the
        # storage node — the exact traffic this exists to avoid).
        img.close()
        return None
    except (RemoteError, wire.RemoteOpError, OSError):
        report.peer_errors += 1
        _count("peerfill_peer_errors_total")
        img.close()
        return None
    if (manifest.cluster_size != authoritative.cluster_size
            or manifest.size != authoritative.size):
        img.close()
        return None
    return _PeerSession(url, img, manifest)


def _batch_extents(manifest: ClusterManifest, clusters: list[int],
                   batch_bytes: int):
    """Yield lists of (cluster, offset, length) bounded by
    ``batch_bytes``, contiguous runs merged by read_batch anyway."""
    batch: list[tuple[int, int, int]] = []
    load = 0
    for i in clusters:
        offset, length = manifest.cluster_extent(i)
        batch.append((i, offset, length))
        load += length
        if load >= batch_bytes:
            yield batch
            batch, load = [], 0
    if batch:
        yield batch


def _fill_from_peer(cache, authoritative, needed, session: _PeerSession,
                    report: PeerFillReport,
                    batch_bytes: int) -> list[int]:
    """Rung 2: digest-verified clusters from one warm peer.

    Only clusters the peer's manifest claims *with the authoritative
    digest* are requested — asking for anything else would be served
    by the peer's own backing chain, i.e. bounced off central storage.
    A transport failure abandons the peer mid-transfer; everything not
    yet verified stays needed.
    """
    digests = authoritative.digests
    askable = [i for i in needed
               if session.manifest.digests.get(i) == digests[i]]
    if not askable:
        return needed
    filled: set[int] = set()
    report.peers_used.append(session.url)
    try:
        for batch in _batch_extents(authoritative, askable,
                                    batch_bytes):
            blobs = session.img.read_batch(
                [(off, ln) for _i, off, ln in batch])
            for (i, _off, ln), data in zip(batch, blobs):
                if not authoritative.verify_cluster(i, data):
                    report.verify_failures += 1
                    _count("peerfill_verify_failures_total")
                    continue
                _store(cache, authoritative, i, data)
                filled.add(i)
                report.clusters_from_peer += 1
                report.bytes_from_peer += ln
                _count("peerfill_bytes_total", ln, source="peer")
                _count("peerfill_clusters_total", source="peer")
    except (RemoteError, wire.RemoteOpError, wire.ProtocolError,
            OSError):
        report.peer_errors += 1
        _count("peerfill_peer_errors_total")
    return [i for i in needed if i not in filled]


def _fill_from_storage(cache, authoritative, needed,
                       report: PeerFillReport,
                       batch_bytes: int) -> None:
    """Rung 3: the cache's backing — the ordinary warm-up datapath.

    Storage is the trust root, so its bytes are written unverified;
    errors here are real boot errors and propagate.
    """
    backing = cache.backing
    if backing is None:
        raise ValueError(
            f"{cache.path}: {len(needed)} clusters have no peer "
            f"source and the cache has no backing to fall back to")
    for batch in _batch_extents(authoritative, needed, batch_bytes):
        reqs = [(off, min(ln, max(0, backing.size - off)))
                for _i, off, ln in batch]
        blobs = backing.read_batch([r for r in reqs if r[1] > 0])
        it = iter(blobs)
        for (i, off, ln), (_o, req_ln) in zip(batch, reqs):
            data = next(it) if req_ln > 0 else b""
            if len(data) < ln:
                data += b"\0" * (ln - len(data))
            _store(cache, authoritative, i, data)
            report.clusters_from_storage += 1
            report.bytes_from_storage += ln
            _count("peerfill_bytes_total", ln, source="storage")
            _count("peerfill_clusters_total", source="storage")
