"""Cache placement: Algorithm 1 of the paper (Section 6).

::

    Input:  Compute node C, Storage node S, VMI Base
    Output: A VMI to be chained to a CoW image

    if Cache_base exists in C:        return Cache_base
    if Cache_base exists in S:
        if Cache_base is on disk:     copy it to tmpfs
        create NewCache_base on C, chained to Cache_base
        return NewCache_base
    create Cache_base on C, chained to Base
    copy Cache_base to S on VM shutdown
    return Cache_base

The function below is a *planner*: it inspects the pools and returns a
:class:`PlacementPlan` describing which image the CoW overlay should be
backed by, what must happen before the boot (promote a storage-disk
cache to tmpfs) and after it (flush the new cache to the local disk,
copy it back to the storage node).  The deployment layer executes the
plan against the simulated testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cache_manager import CacheRegistry
from repro.sim.blockio import SimImage
from repro.sim.cluster_sim import Testbed
from repro.sim.node import ComputeNode


@dataclass
class PlacementPlan:
    """The outcome of Algorithm 1 for one VM."""

    backing_for_cow: SimImage
    """What the CoW overlay chains to (a cache, or the bare base)."""

    new_cache: SimImage | None = None
    """Cache image created on the compute node for this boot, if any."""

    decision: str = ""
    """Which branch of Algorithm 1 fired: ``local-warm``,
    ``storage-warm``, ``cold``, or ``no-cache``."""

    pre_boot: list[str] = field(default_factory=list)
    """Actions before the boot: ``promote-storage-cache-to-tmpfs``."""

    post_boot: list[str] = field(default_factory=list)
    """Actions after the boot: ``flush-cache-to-local-disk``,
    ``copy-cache-to-storage``, ``register-local``."""


def plan_chain(
    testbed: Testbed,
    registry: CacheRegistry,
    node: ComputeNode,
    base: SimImage,
    *,
    quota: int,
    cache_cluster_bits: int = 9,
    create_cold_cache: bool = True,
    vm_name: str = "vm",
) -> PlacementPlan:
    """Algorithm 1: pick or create the proper cache for one VM boot.

    ``create_cold_cache=False`` models the paper's shared-VMI rule
    (§5.3.2): "only one of the VMs creates and transfers the cache back
    to the storage node while other VMs just proceed with normal
    QCOW2" — the remaining VMs get a ``no-cache`` plan.
    """
    vmi_id = base.name

    # Branch 1: a warm cache on this compute node.
    local = registry.node_pool(node.node_id).get(vmi_id)
    if local is not None:
        return PlacementPlan(backing_for_cow=local,
                             decision="local-warm")

    # Branch 2: a warm cache at the storage node.
    storage_cache = registry.storage_pool.get(vmi_id)
    if storage_cache is not None:
        pre = []
        if storage_cache.location.kind == "nfs":
            # "if Cache_base is on disk then copy Base_cache to tmpfs"
            pre.append("promote-storage-cache-to-tmpfs")
        new_cache = SimImage(
            f"{vm_name}.cache", base.size,
            testbed.compute_mem_location(node, f"{vm_name}.cache"),
            cluster_bits=cache_cluster_bits,
            backing=storage_cache,
            cache_quota=quota,
        )
        return PlacementPlan(
            backing_for_cow=new_cache,
            new_cache=new_cache,
            decision="storage-warm",
            pre_boot=pre,
            post_boot=["flush-cache-to-local-disk", "register-local"],
        )

    # Branch 3: no cache anywhere — create one here (unless this VM
    # lost the one-creator-per-VMI race).
    if not create_cold_cache:
        return PlacementPlan(backing_for_cow=base, decision="no-cache")
    new_cache = SimImage(
        f"{vm_name}.cache", base.size,
        testbed.compute_mem_location(node, f"{vm_name}.cache"),
        cluster_bits=cache_cluster_bits,
        backing=base,
        cache_quota=quota,
    )
    return PlacementPlan(
        backing_for_cow=new_cache,
        new_cache=new_cache,
        decision="cold",
        post_boot=["flush-cache-to-local-disk", "register-local",
                   "copy-cache-to-storage"],
    )
