"""Background prefetch of a boot plan into a node-local cache.

The executor half of :mod:`repro.bootmodel.prefetch`: a
:class:`Prefetcher` streams a mined :class:`~repro.bootmodel.prefetch.
PrefetchPlan` from the backing image into the cache *while the VM
boots*, so demand reads that would each pay a WAN round-trip find
their clusters already local.  Contrast with
:func:`repro.cluster.warmer.warm_cache`, which fills a cache ahead of
any boot: the prefetcher runs concurrently with the demand stream and
therefore must never get in its way.

Priority rules (DESIGN.md §12):

* the prefetch stream uses its **own** connection to the storage node
  (``source=``), so its in-flight window never head-of-line blocks
  the demand connection's;
* its window stays small (``depth`` chunks of ``chunk_bytes``), and
  between batches it checks the cache's demand read counter — any
  demand activity observed triggers a backoff sleep before the next
  batch;
* cache writes take the shared ``lock`` the replayer holds around
  demand operations (image drivers are not thread-safe);
* quota exhaustion mirrors copy-on-read's §4.3 reaction: record the
  space error, stop prefetching, never fail the boot.

Like the warmer, prefetch populates whole cluster-aligned extents with
backing bytes — exactly what copy-on-read would write for the same
ranges — so a prefetched cache is checksum-identical to a
``warm_cache`` fill of the same working set.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.bootmodel.prefetch import PrefetchPlan
from repro.errors import QuotaExceededError
from repro.imagefmt.driver import BlockDriver, RangeSet
from repro.imagefmt.manifest import ClusterManifest
from repro.metrics.registry import get_registry
from repro.metrics.tracing import TRACER
from repro.units import KiB


def intersect_bytes(a: RangeSet, b: RangeSet) -> int:
    """Bytes covered by both range sets."""
    total = 0
    ai = a.intervals()
    bi = b.intervals()
    i = j = 0
    while i < len(ai) and j < len(bi):
        lo = max(ai[i][0], bi[j][0])
        hi = min(ai[i][1], bi[j][1])
        if lo < hi:
            total += hi - lo
        if ai[i][1] <= bi[j][1]:
            i += 1
        else:
            j += 1
    return total


@dataclass
class PrefetchReport:
    """What one prefetch run did, and how much of it mattered."""

    extents: int = 0
    chunks_fetched: int = 0
    batches: int = 0
    bytes_fetched: int = 0
    source_bytes: int = 0
    """Bytes actually read from the source connection — differs from
    ``bytes_fetched`` only when plan extents ran past a shorter
    backing and the tail was zero-filled locally.  Equals the trace's
    ``prefetch``-layer ``block.read`` byte sum by construction."""

    backoffs: int = 0
    seconds: float = 0.0
    quota_exhausted: bool = False
    stopped_early: bool = False
    verify_failures: int = 0
    """Peer-sourced clusters that failed manifest verification and
    were refetched from the trusted backing (``verify=``)."""

    hit_bytes: int = 0
    """Prefetched bytes the demand stream actually read (filled in by
    :meth:`Prefetcher.account`)."""
    wasted_bytes: int = 0
    """Prefetched bytes no demand read ever touched."""


class Prefetcher:
    """Streams a plan's extents into ``cache`` on a background thread.

    ``source`` is the dedicated low-priority connection to fetch from
    (its ``trace_role`` is set to ``"prefetch"`` so its ``block.read``
    events land in their own attribution row); when omitted, the
    cache's own backing is used — correct, but then prefetch and
    demand share one wire window.  ``lock`` serializes cache access
    against the demand path; pass the same lock to the replayer.

    ``verify=`` turns an *untrusted* source — a warm peer instead of
    the storage node — into a safe one: every fetched cluster is
    checked against the authoritative manifest, and a mismatch is
    silently refetched from the trusted backing (counted in
    ``report.verify_failures`` and ``peerfill_verify_failures_total``).
    This is the prefetch face of :mod:`repro.cluster.peerfill`'s
    trust model.
    """

    def __init__(
        self,
        cache: BlockDriver,
        plan: PrefetchPlan,
        *,
        source: BlockDriver | None = None,
        depth: int = 4,
        chunk_bytes: int = 256 * KiB,
        backoff_seconds: float = 0.002,
        lock: threading.Lock | None = None,
        verify: ClusterManifest | None = None,
    ) -> None:
        if cache.backing is None and source is None:
            raise ValueError(
                f"{cache.path}: cache has no backing and no source= "
                f"to prefetch from")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if chunk_bytes < 1:
            raise ValueError(
                f"chunk_bytes must be >= 1, got {chunk_bytes}")
        self.cache = cache
        self.plan = plan
        self.source = source if source is not None else cache.backing
        if source is not None and source.trace_role is None:
            source.trace_role = "prefetch"
        if verify is not None and cache.backing is None:
            raise ValueError(
                f"{cache.path}: verify= needs a trusted backing to "
                f"refetch mismatched clusters from")
        self.verify = verify
        self.depth = depth
        self.chunk_bytes = chunk_bytes
        self.backoff_seconds = backoff_seconds
        self.lock = lock if lock is not None else threading.Lock()
        self.report = PrefetchReport()
        self.prefetched = RangeSet()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------

    @property
    def started(self) -> bool:
        return self._thread is not None

    def start(self) -> "Prefetcher":
        if self._thread is not None:
            raise RuntimeError("prefetcher already started")
        self._thread = threading.Thread(
            target=self.run, name="prefetcher", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Ask the background run to stop after its current batch."""
        self._stop.set()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    # -- the stream ---------------------------------------------------

    def run(self) -> PrefetchReport:
        """Fetch the plan; callable directly for a synchronous fill."""
        cache = self.cache
        plan = self.plan.clipped(cache.size)
        self.report.extents = len(plan.extents)
        chunks: list[tuple[int, int]] = []
        for e in plan.extents:
            offset, remaining = e.offset, e.length
            while remaining > 0:
                step = min(remaining, self.chunk_bytes)
                chunks.append((offset, step))
                offset += step
                remaining -= step

        started = time.perf_counter()
        demand_ops = cache.stats.read_ops
        with TRACER.span("cache.prefetch", path=cache.path,
                         image=plan.image) as span:
            i = 0
            while i < len(chunks):
                if self._stop.is_set():
                    self.report.stopped_early = True
                    break
                # Demand wins: any demand reads since the last batch
                # mean the guest is actively waiting on the cache —
                # yield the floor before fetching more.
                now_ops = cache.stats.read_ops
                if now_ops != demand_ops:
                    demand_ops = now_ops
                    self.report.backoffs += 1
                    time.sleep(self.backoff_seconds)
                batch = chunks[i:i + self.depth]
                i += self.depth
                if not self._fetch_batch(batch):
                    break
            span.attrs.update(
                extents=self.report.extents,
                chunks_fetched=self.report.chunks_fetched,
                batches=self.report.batches,
                bytes_fetched=self.report.bytes_fetched,
                source_bytes=self.report.source_bytes,
                backoffs=self.report.backoffs,
                quota_exhausted=self.report.quota_exhausted,
                stopped_early=self.report.stopped_early)
        self.report.seconds = time.perf_counter() - started
        registry = get_registry()
        registry.counter("prefetch_runs_total").inc()
        registry.counter("prefetch_bytes_total").inc(
            self.report.bytes_fetched)
        if self.report.quota_exhausted:
            registry.counter("prefetch_quota_exhausted_total").inc()
        return self.report

    def _fetch_batch(self, batch: list[tuple[int, int]]) -> bool:
        source = self.source
        # Plans may extend past a shorter backing: fetch what exists,
        # zero-fill the rest locally — and never put a zero-length
        # read on the wire.
        clipped = [(min(off, source.size),
                    max(0, min(ln, source.size - off)))
                   for off, ln in batch]
        reqs = [(off, ln) for off, ln in clipped if ln > 0]
        fetched = iter(source.read_batch(reqs))
        blobs = [next(fetched) if ln > 0 else b""
                 for _off, ln in clipped]
        self.report.batches += 1
        self.report.source_bytes += sum(ln for _off, ln in reqs)
        for (off, ln), blob in zip(batch, blobs):
            if len(blob) < ln:
                blob += b"\0" * (ln - len(blob))
            if self.verify is not None:
                blob = self._verified(off, blob)
            with self.lock:
                try:
                    self.cache.write(off, blob)
                except QuotaExceededError:
                    # §4.3 semantics, same as inline CoR and the
                    # warmer: remember the space error, stop filling,
                    # let the boot proceed on demand reads.
                    runtime = getattr(self.cache, "cache_runtime", None)
                    if runtime is not None:
                        runtime.cor.record_space_error()
                    self.report.quota_exhausted = True
                    return False
            self.prefetched.add(off, ln)
            self.report.chunks_fetched += 1
            self.report.bytes_fetched += ln
        return True

    def _verified(self, offset: int, blob: bytes) -> bytes:
        """Replace peer clusters that fail their digest with trusted
        backing bytes.

        Only whole manifested clusters inside the chunk can be judged;
        unmanifested clusters and partial coverage at the chunk edges
        pass through unchanged (a peer serves zeros there, exactly
        like an unpopulated cache).
        """
        manifest = self.verify
        cluster = manifest.cluster_size
        backing = self.cache.backing
        patched: bytearray | None = None
        pos = (cluster - offset % cluster) % cluster  # next boundary
        while pos < len(blob):
            index = (offset + pos) // cluster
            c_off, c_len = manifest.cluster_extent(index)
            if pos + c_len > len(blob):
                break  # partial tail coverage: cannot judge
            piece = blob[pos:pos + c_len]
            if index in manifest \
                    and not manifest.verify_cluster(index, piece):
                self.report.verify_failures += 1
                get_registry().counter(
                    "peerfill_verify_failures_total").inc()
                good = backing.read(
                    c_off, max(0, min(c_len, backing.size - c_off)))
                good += b"\0" * (c_len - len(good))
                if patched is None:
                    patched = bytearray(blob)
                patched[pos:pos + c_len] = good
            pos += c_len
        return bytes(patched) if patched is not None else blob

    # -- effectiveness ------------------------------------------------

    def account(self, demand: RangeSet, *,
                align: int | None = None) -> PrefetchReport:
        """Split the prefetched bytes into hit vs wasted against the
        demand stream's read ranges.

        Pass ``align`` (the cache cluster size) to round demand reads
        out to the granularity prefetch populates at — a demand read
        of any part of a prefetched cluster makes that cluster a hit,
        matching how copy-on-read would have populated it anyway.
        """
        if align is not None and align > 1:
            rounded = RangeSet()
            for start, end in demand.intervals():
                start = (start // align) * align
                end = ((end + align - 1) // align) * align
                rounded.add(start, end - start)
            demand = rounded
        self.report.hit_bytes = intersect_bytes(self.prefetched, demand)
        self.report.wasted_bytes = (self.prefetched.total()
                                    - self.report.hit_bytes)
        registry = get_registry()
        registry.counter("prefetch_hit_bytes_total").inc(
            self.report.hit_bytes)
        registry.counter("prefetch_wasted_bytes_total").inc(
            self.report.wasted_bytes)
        return self.report
