"""The cache-aware cloud scheduler (paper Section 3.4).

OpenNebula's stock scheduler offers three placement strategies —
packing, striping, and load-aware mapping.  The paper's design point:
"One of the goals of a cache-aware scheduler should be allocation of
VMs to nodes with an existing warm cache.  This heuristic can be used
in conjunction with any of the above desired strategies."

:class:`CacheAwareScheduler` implements exactly that composition: the
warm-cache affinity filter runs first, the wrapped strategy breaks
ties among the remaining candidates.  The paper leaves the evaluation
of this scheduler to future work; our benchmarks include it as an
extension (mixed warm/cold populations, §5.3.1's "a cache-aware
scheduler should always prefer the nodes with a warm cache").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.cluster.cache_manager import CacheRegistry
from repro.errors import SchedulingError
from repro.metrics.registry import get_registry


@dataclass
class NodeState:
    """Scheduler-visible state of one compute node."""

    node_id: str
    capacity_slots: int = 8
    """How many VMs fit (paper hardware: 8 cores per node)."""

    used_slots: int = 0
    load: float = 0.0
    """An external load metric (e.g. CPU utilization) for the
    load-aware strategy."""

    @property
    def free_slots(self) -> int:
        return self.capacity_slots - self.used_slots

    @property
    def is_full(self) -> bool:
        return self.free_slots <= 0


class PlacementStrategy(ABC):
    """Scores candidate nodes; the highest score wins."""

    name: str = "abstract"

    @abstractmethod
    def score(self, state: NodeState) -> float: ...


class PackingStrategy(PlacementStrategy):
    """OpenNebula 'packing': minimize the number of nodes in use by
    preferring the fullest node that still fits."""

    name = "packing"

    def score(self, state: NodeState) -> float:
        return state.used_slots


class StripingStrategy(PlacementStrategy):
    """OpenNebula 'striping': spread VMs for maximum per-VM resources."""

    name = "striping"

    def score(self, state: NodeState) -> float:
        return -state.used_slots


class LoadAwareStrategy(PlacementStrategy):
    """OpenNebula 'load-aware': prefer the least-loaded node."""

    name = "load-aware"

    def score(self, state: NodeState) -> float:
        return -state.load


@dataclass
class SchedulerStats:
    scheduled: int = 0
    warm_placements: int = 0
    cold_placements: int = 0


class CacheAwareScheduler:
    """Warm-cache affinity composed with a base placement strategy."""

    def __init__(self, strategy: PlacementStrategy | None = None,
                 *, cache_affinity: bool = True) -> None:
        self.strategy = strategy or StripingStrategy()
        self.cache_affinity = cache_affinity
        self.stats = SchedulerStats()

    def select(
        self,
        vmi_id: str,
        states: dict[str, NodeState],
        registry: CacheRegistry | None = None,
    ) -> str:
        """Pick a node for one VM of ``vmi_id`` and claim a slot.

        Raises :class:`SchedulingError` when every node is full.
        """
        candidates = [s for s in states.values() if not s.is_full]
        if not candidates:
            raise SchedulingError(
                f"no free slots for a VM of {vmi_id!r}")
        chosen_from_warm = False
        if self.cache_affinity and registry is not None:
            warm_ids = set(registry.nodes_with_cache(vmi_id))
            warm = [s for s in candidates if s.node_id in warm_ids]
            if warm:
                candidates = warm
                chosen_from_warm = True
        best = max(candidates,
                   key=lambda s: (self.strategy.score(s), s.node_id))
        best.used_slots += 1
        self.stats.scheduled += 1
        if chosen_from_warm:
            self.stats.warm_placements += 1
        else:
            self.stats.cold_placements += 1
        # Mirror the placement decision into the process-wide registry
        # (per-scheduler SchedulerStats stay the per-run measure).
        get_registry().counter(
            "scheduler_placements_total",
            strategy=self.strategy.name,
            outcome="warm" if chosen_from_warm else "cold",
        ).inc()
        return best.node_id


def make_states(node_ids: list[str],
                capacity_slots: int = 8) -> dict[str, NodeState]:
    """Fresh scheduler state for a set of nodes."""
    return {nid: NodeState(nid, capacity_slots=capacity_slots)
            for nid in node_ids}
