"""Parallel cache warming from boot-trace working sets.

The paper creates a VMI cache by booting a sample VM against a
CoR-enabled cache chain (§3.2) — correct, but latency-bound: every
cold read of the sample boot pays one full round-trip to the storage
node, so warming a working set of thousands of small extents over a
network backing is dominated by RTTs, not bytes.

This module warms a cache from the *working set* instead of the boot
order: the trace's read extents are merged (``RangeSet``), aligned out
to the cache's cluster size, and fetched from the backing image in
batches through :meth:`~repro.imagefmt.driver.BlockDriver.read_batch`
— which the pipelined remote client overlaps up to its window depth,
so the Figure 8-style cache-creation path costs ~extents/depth
round-trips instead of one per extent.

Equivalence to the serial path: copy-on-read populates whole covering
clusters with backing bytes, so writing the cluster-aligned merged
working set (fetched from the same backing) into the cache produces a
byte-for-byte identical cache content — the benchmark checksums both.
Under quota pressure the two paths may populate *different* subsets
(population order differs); the warmer mirrors CoR's reaction to a
space error (``record_space_error`` — §4.3) and reports it.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro.bootmodel.trace import BootTrace
from repro.errors import QuotaExceededError
from repro.imagefmt.driver import BlockDriver, RangeSet
from repro.imagefmt.manifest import (
    DEFAULT_CLUSTER_SIZE,
    ClusterManifest,
    ManifestBuilder,
)
from repro.metrics.registry import get_registry
from repro.metrics.tracing import TRACER
from repro.units import MiB, align_down, align_up


def working_set_extents(
    trace: BootTrace,
    *,
    size: int | None = None,
    align: int = 1,
) -> list[tuple[int, int]]:
    """The trace's merged read working set as (offset, length) extents.

    Extents are aligned out to ``align`` bytes (pass the cache's
    cluster size so population matches copy-on-read's cluster
    granularity) and clipped to ``size`` the same way the replayer
    clips trace ops, so the warmed ranges match a serial sample boot
    against a ``size``-byte chain.
    """
    if align < 1:
        raise ValueError(f"align must be >= 1, got {align}")
    merged = RangeSet()
    for op in trace.reads():
        offset, length = op.offset, op.length
        if size is not None:
            # Mirror replay_through_chain's clipping exactly.
            offset = min(offset, max(size - 512, 0))
            length = min(length, size - offset)
        if length > 0:
            merged.add(offset, length)
    aligned = RangeSet()
    for start, end in merged.intervals():
        start = align_down(start, align)
        end = align_up(end, align)
        if size is not None:
            end = min(end, size)
        aligned.add(start, end - start)
    return [(start, end - start) for start, end in aligned.intervals()]


@dataclass
class WarmReport:
    """What one :func:`warm_cache` run did."""

    extents: int = 0
    batches: int = 0
    bytes_requested: int = 0  # working-set bytes asked of the backing
    bytes_written: int = 0    # bytes stored into the cache
    seconds: float = 0.0
    quota_exhausted: bool = False
    fsync_ops: int = 0        # durability barriers the final flush cost
    manifest: ClusterManifest | None = None  # when manifest_vmi_id set


def warm_cache(
    cache: BlockDriver,
    trace: BootTrace | None = None,
    *,
    extents: list[tuple[int, int]] | None = None,
    batch_bytes: int = 8 * MiB,
    flush: bool = True,
    manifest_vmi_id: str | None = None,
    save_manifest: bool = True,
) -> WarmReport:
    """Populate ``cache`` with its backing's working-set bytes.

    Pass either a ``trace`` (the working set is derived, aligned to the
    cache's cluster size) or precomputed ``extents``.  Extents are
    fetched from ``cache.backing`` in ``batch_bytes``-sized batches via
    ``read_batch`` — pipelined when the backing is a v2
    :class:`~repro.remote.client.RemoteImage` — and written into the
    cache.  A quota exhaustion stops the warm-up, disables further
    copy-on-read exactly as the inline CoR path does, and is reported
    rather than raised.

    ``manifest_vmi_id`` additionally builds a cluster-hash manifest
    *while* warming — the bytes are already in hand, so the digests
    cost one SHA-256 pass and zero extra reads.  It lands on
    ``WarmReport.manifest`` and (``save_manifest``, the default) is
    persisted next to the cache image, ready to be attached to a
    block-server export for peer-to-peer fill.  Manifest building
    requires cluster-aligned extents (trace-derived working sets are;
    explicit ``extents`` must be aligned by the caller).
    """
    backing = cache.backing
    if backing is None:
        raise ValueError(f"{cache.path}: cache has no backing to warm from")
    if (trace is None) == (extents is None):
        raise ValueError("pass exactly one of trace= or extents=")
    if extents is None:
        align = getattr(cache, "cluster_size", 1)
        extents = working_set_extents(trace, size=cache.size, align=align)
    builder = None
    if manifest_vmi_id is not None:
        builder = ManifestBuilder(
            manifest_vmi_id, cache.size,
            getattr(cache, "cluster_size", DEFAULT_CLUSTER_SIZE))

    report = WarmReport(extents=len(extents))
    started = time.perf_counter()
    batch: list[tuple[int, int]] = []
    batch_load = 0

    def run_batch() -> bool:
        nonlocal batch, batch_load
        if not batch:
            return True
        report.batches += 1
        # The working set may extend past a shorter backing image;
        # fetch what exists and zero-fill the tail (what CoR's
        # ``_read_from_backing`` does).  Extents lying wholly past the
        # backing clip to zero length — those never go on the wire (a
        # degenerate ``(backing.size, 0)`` read is a wasted round-trip
        # per extent), they are zero-filled locally.
        clipped = [(min(off, backing.size),
                    max(0, min(ln, backing.size - off)))
                   for off, ln in batch]
        reqs = [(off, ln) for off, ln in clipped if ln > 0]
        fetched = iter(backing.read_batch(reqs))
        blobs = [next(fetched) if ln > 0 else b""
                 for off, ln in clipped]
        for (off, ln), blob in zip(batch, blobs):
            if len(blob) < ln:
                blob += b"\0" * (ln - len(blob))
            try:
                cache.write(off, blob)
            except QuotaExceededError:
                runtime = getattr(cache, "cache_runtime", None)
                if runtime is not None:
                    runtime.cor.record_space_error()
                report.quota_exhausted = True
                return False
            report.bytes_written += ln
            if builder is not None:
                builder.add_extent(off, blob)
        batch = []
        batch_load = 0
        return True

    with TRACER.span("cache.warm", path=cache.path) as span:
        for offset, length in extents:
            report.bytes_requested += length
            batch.append((offset, length))
            batch_load += length
            if batch_load >= batch_bytes:
                if not run_batch():
                    break
        else:
            run_batch()
        if flush and not cache.closed:
            # A warmed cache is only *durably* warm after its ordered
            # flush; count what the barriers cost so Figure 8-style
            # runs can separate fetch time from durability time.
            fsyncs_before = cache.stats.fsync_ops
            cache.flush()
            report.fsync_ops = cache.stats.fsync_ops - fsyncs_before
        if builder is not None:
            report.manifest = builder.build()
            if save_manifest:
                report.manifest.save(cache_path=cache.path)
        span.attrs.update(
            extents=report.extents, batches=report.batches,
            bytes_requested=report.bytes_requested,
            bytes_written=report.bytes_written,
            quota_exhausted=report.quota_exhausted,
            fsync_ops=report.fsync_ops)
    report.seconds = time.perf_counter() - started
    registry = get_registry()
    registry.counter("warmer_runs_total").inc()
    registry.counter("warmer_bytes_written_total").inc(
        report.bytes_written)
    if report.quota_exhausted:
        registry.counter("warmer_quota_exhausted_total").inc()
    return report


def checksum_extents(img: BlockDriver,
                     extents: list[tuple[int, int]],
                     *, chunk_size: int = 4 * MiB) -> str:
    """SHA-256 over the given extents' contents, for byte-for-byte
    equivalence checks between warmed caches.

    Large extents are streamed through the digest in ``chunk_size``
    pieces so checksumming a multi-hundred-MB working set never
    materializes a whole extent in memory.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    digest = hashlib.sha256()
    for offset, length in extents:
        while length > 0:
            step = min(length, chunk_size)
            digest.update(img.read(offset, step))
            offset += step
            length -= step
    return digest.hexdigest()
