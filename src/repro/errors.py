"""Exception hierarchy for the repro package.

The hierarchy mirrors the layers of the system: image-format errors
(:class:`ImageError` and subclasses), simulation errors
(:class:`SimulationError`), and cluster/deployment errors
(:class:`ClusterError`).  ``QuotaExceededError`` is the Python analogue of
the "space error" that the paper's modified QCOW2 ``write`` path returns
when a cache image hits its quota (Section 4.3); callers in the read path
catch it and disable further copy-on-read writes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


# --------------------------------------------------------------------------
# Image format layer
# --------------------------------------------------------------------------


class ImageError(ReproError):
    """Base class for image-format errors."""


class InvalidImageError(ImageError):
    """The file is not a valid image (bad magic, version, or structure)."""


class CorruptImageError(ImageError):
    """The image metadata is internally inconsistent (e.g. pointers past
    end-of-file, refcount mismatches found by ``check``)."""


class UnsupportedFeatureError(ImageError):
    """The image uses an incompatible feature this implementation lacks."""


class ImageClosedError(ImageError):
    """An operation was attempted on a closed image."""


class ReadOnlyImageError(ImageError):
    """A write was attempted on an image opened read-only."""


class OutOfBoundsError(ImageError):
    """A read or write touches offsets outside the virtual disk size."""


class BackingChainError(ImageError):
    """The backing chain is malformed (loop, missing file, size mismatch)."""


class QuotaExceededError(ImageError):
    """Writing to a cache image would exceed its quota.

    This is the "space error" of Section 4.3: the read path treats it as a
    signal to stop populating the cache rather than as a failure of the
    guest-visible read.
    """

    def __init__(self, requested: int, quota: int, used: int) -> None:
        super().__init__(
            f"cache quota exceeded: need {requested} bytes, "
            f"quota {quota}, used {used}"
        )
        self.requested = requested
        self.quota = quota
        self.used = used


# --------------------------------------------------------------------------
# Remote transport layer
# --------------------------------------------------------------------------


class RemoteError(ImageError):
    """Base class for remote block-transport failures.

    Raised by :class:`~repro.remote.client.RemoteImage` when an
    operation cannot be completed even after its bounded
    reconnect-and-retry loop.  Subclasses distinguish *deadline
    exceeded* from *peer unreachable*; both subclass
    :class:`ImageError` because a remote image is just another block
    driver in a backing chain.
    """


class RemoteTimeoutError(RemoteError):
    """A remote operation exceeded its deadline (after all retries).

    Each wire round-trip is bounded by the client's ``op_timeout``; a
    timeout abandons the connection (the framing can no longer be
    trusted) and triggers a reconnect-and-retry.  This error surfaces
    only once the retry budget is exhausted.
    """


class RemoteDisconnectedError(RemoteError):
    """The server connection was lost and could not be re-established.

    Raised when the peer closes mid-stream, resets, or refuses new
    connections for longer than the client's retry budget allows.
    """


# --------------------------------------------------------------------------
# Simulation layer
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulation errors."""


class SimDeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class SimInterrupt(SimulationError):
    """A simulated process was interrupted by another process."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


# --------------------------------------------------------------------------
# Cluster layer
# --------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for deployment/scheduling errors."""


class SchedulingError(ClusterError):
    """No node satisfies the placement request."""


class CacheMissError(ClusterError):
    """A cache lookup failed where a hit was required."""
