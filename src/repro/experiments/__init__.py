"""Experiment runners: one function per table/figure of the paper.

Each runner builds the right testbed/cloud, executes the workload, and
returns an :class:`~repro.metrics.collectors.ExperimentLog` holding the
series the paper plots.  The benchmark harness
(``benchmarks/bench_*.py``) wraps these runners in pytest-benchmark
targets; the examples and tests reuse them at smaller scale.

Axis scaling: every runner takes the x-axis points as a parameter, with
the paper's full axis as the default — so quick runs can use a subset
without changing the experiment logic.
"""

from repro.experiments.common import (
    FULL_NODE_AXIS,
    FULL_VMI_AXIS,
    QUICK_NODE_AXIS,
    QUICK_VMI_AXIS,
    centos_trace,
)
from repro.experiments.microbench import (
    run_fig08_cache_creation,
    run_fig09_storage_traffic,
    run_fig10_final_arrangement,
    run_tab1_working_sets,
    run_tab2_cache_quota,
)
from repro.experiments.placement_exp import run_sec6_placement
from repro.experiments.scaling import (
    run_fig02_scaling_nodes,
    run_fig03_scaling_vmis,
    run_fig11_cached_scaling_nodes,
    run_fig12_cached_scaling_vmis,
    run_fig14_storage_mem_scaling_vmis,
)
from repro.experiments.ablations import (
    run_mixed_warm_cold,
    run_prefetch_ablation,
    run_scheduler_ablation,
)

__all__ = [
    "centos_trace",
    "FULL_NODE_AXIS",
    "FULL_VMI_AXIS",
    "QUICK_NODE_AXIS",
    "QUICK_VMI_AXIS",
    "run_fig02_scaling_nodes",
    "run_fig03_scaling_vmis",
    "run_fig11_cached_scaling_nodes",
    "run_fig12_cached_scaling_vmis",
    "run_fig14_storage_mem_scaling_vmis",
    "run_fig08_cache_creation",
    "run_fig09_storage_traffic",
    "run_fig10_final_arrangement",
    "run_tab1_working_sets",
    "run_tab2_cache_quota",
    "run_sec6_placement",
    "run_scheduler_ablation",
    "run_mixed_warm_cold",
    "run_prefetch_ablation",
]
