"""Extension experiments beyond the paper's figures.

The paper leaves two things unquantified: the cache-aware scheduler
(§3.4, "left for future work") and mixed warm/cold populations (§5.3.1,
"we do not present quantitative results for such mixed scenarios").
These runners fill both gaps using the same testbed.
"""

from __future__ import annotations

from repro.cluster.middleware import Cloud
from repro.experiments.common import make_cloud, one_vm_per_node_wave
from repro.metrics.collectors import ExperimentLog
from repro.sim.node import PageCache


def _age_page_cache(cloud: Cloud) -> None:
    """Model time passing between waves: other tenants' I/O has turned
    the storage node's page cache over, so cold chains pay the disk
    again.  VMI caches (the paper's mechanism) survive — they are
    files, not page-cache residue; that asymmetry is exactly what the
    scheduler ablation needs to expose."""
    storage = cloud.testbed.storage
    storage.page_cache = PageCache(storage.page_cache.capacity)


def run_scheduler_ablation(
    n_nodes: int = 16,
    n_vms: int = 8,
    network: str = "1gbe",
) -> ExperimentLog:
    """Cache-aware affinity on vs off.

    Warm ``n_vms`` nodes first, release the slots, then request
    ``n_vms`` new VMs.  With affinity the scheduler lands every VM on a
    warm node (boot ≈ single VM); without it, striping spreads the VMs
    over cold nodes that must re-fetch everything.
    """
    log = ExperimentLog(
        "ablation-scheduler",
        "Cache-aware scheduling: affinity on vs off")
    on = log.new_series("affinity on")
    off = log.new_series("affinity off")
    for affinity, series in ((True, on), (False, off)):
        cloud, vmis = make_cloud(n_compute=n_nodes, network=network,
                                 cache_mode="compute-disk")
        cloud.scheduler.cache_affinity = affinity
        # Warm the first n_vms nodes.
        cloud.start_vms([(vmis[0], n_vms)],
                        node_override=[f"node{i:02d}"
                                       for i in range(n_vms)])
        cloud.shutdown_all()
        _age_page_cache(cloud)
        result = cloud.start_vms([(vmis[0], n_vms)])
        series.add(n_vms, result.mean_boot_time)
        warm_hits = sum(1 for d in result.decisions.values()
                        if d == "local-warm")
        log.record_scalar(
            f"warm_placements_affinity_{'on' if affinity else 'off'}",
            warm_hits)
    return log


def run_prefetch_ablation(network: str = "1gbe") -> ExperimentLog:
    """§7.3: how much could informed prefetching help a boot?

    The paper: "Our preliminary experience with prefetching, however,
    showed no substantial benefit.  For example, in the CentOS case,
    the VM only waits 17% of its total boot time on reads and
    prefetching can only mask that."  We boot one VM with and without
    idealized (perfect-disclosure) prefetching and measure the gain —
    it must stay at or below the read-wait fraction.
    """
    from repro.bootmodel.profiles import CENTOS_63
    from repro.experiments.common import centos_trace
    from repro.sim.blockio import SimImage
    from repro.sim.cluster_sim import BootJob, Testbed, boot_vms

    log = ExperimentLog(
        "ablation-prefetch",
        "Idealized informed prefetching vs the plain boot (§7.3)")
    times = log.new_series("boot time")
    for i, prefetch in enumerate((False, True)):
        tb = Testbed(n_compute=1, network=network)
        tb.storage.page_cache.insert("base.raw", 0,
                                     CENTOS_63.vmi_size)
        node = tb.computes[0]
        base = tb.make_base("base.raw", CENTOS_63.vmi_size)
        chain = SimImage("vm.cow", base.size,
                         tb.compute_mem_location(node, "vm.cow"),
                         backing=base)
        res = boot_vms(tb, [BootJob("vm", node, chain, centos_trace(),
                                    prefetch=prefetch)])
        times.add(i, res.records[0].boot_time)
    plain, prefetched = times.ys()
    log.record_scalar("improvement_pct",
                      100 * (plain - prefetched) / plain)
    log.record_scalar("paper_read_wait_pct",
                      100 * CENTOS_63.read_wait_fraction)
    return log


def run_mixed_warm_cold(
    n_nodes: int = 16,
    network: str = "1gbe",
    warm_fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> ExperimentLog:
    """§5.3.1's mixed scenario: X% of nodes start from a warm cache.

    "Regardless of the node allocations, the nodes with a warm cache
    contribute to reducing the network load on the storage node(s)."
    """
    log = ExperimentLog(
        "ablation-mixed",
        "Mixed warm/cold populations (fraction of warm nodes)")
    boot = log.new_series("mean boot time")
    traffic = log.new_series("storage traffic", unit="MB")
    for frac in warm_fractions:
        cloud, vmis = make_cloud(n_compute=n_nodes, network=network,
                                 cache_mode="compute-disk")
        n_warm = round(frac * n_nodes)
        if n_warm:
            cloud.start_vms(
                [(vmis[0], n_warm)],
                node_override=[f"node{i:02d}" for i in range(n_warm)])
            cloud.shutdown_all()
            _age_page_cache(cloud)
        cloud.scheduler.cache_affinity = False  # fixed layout
        result = one_vm_per_node_wave(cloud, vmis, n_nodes)
        boot.add(frac, result.mean_boot_time)
        traffic.add(frac, result.scenario.storage_nfs_bytes / 1e6)
    return log
