"""Shared builders for the experiment runners."""

from __future__ import annotations

import functools

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import CENTOS_63, OSProfile
from repro.bootmodel.trace import BootTrace
from repro.cluster.middleware import Cloud
from repro.units import MB

# The paper's x-axes (Figures 2, 3, 11, 12, 14).
FULL_NODE_AXIS = [1, 4, 8, 16, 32, 64]
FULL_VMI_AXIS = [1, 4, 8, 16, 32, 64]
# Quick axes keep the endpoints and the crossover region.
QUICK_NODE_AXIS = [1, 8, 64]
QUICK_VMI_AXIS = [1, 16, 64]

#: Quota used by the scaling experiments: large enough to hold any of
#: the paper's working sets (§2.3's "in the order of 250 MB").
SCALING_QUOTA = 250 * MB


@functools.lru_cache(maxsize=8)
def centos_trace(seed: int = 1) -> BootTrace:
    """The CentOS 6.3 boot trace used by every scaling experiment."""
    return generate_boot_trace(CENTOS_63, seed=seed)


def make_cloud(
    *,
    n_compute: int,
    network: str,
    cache_mode: str,
    profile: OSProfile = CENTOS_63,
    n_vmis: int = 1,
    trace: BootTrace | None = None,
    quota: int = SCALING_QUOTA,
) -> tuple[Cloud, list[str]]:
    """A cloud with ``n_vmis`` independent copies of the profile's VMI
    registered (the Figure 3 methodology: '64 identical but independent
    copies of the CentOS VMI')."""
    cloud = Cloud(
        n_compute=n_compute,
        network=network,
        cache_mode=cache_mode,
        cache_quota=quota,
        slots_per_node=8,
        storage_cache_capacity=16_000 * MB,
        node_cache_capacity=2_000 * MB,
    )
    trace = trace if trace is not None else centos_trace()
    vmi_ids = []
    for j in range(n_vmis):
        vmi_id = f"{profile.name}-{j:02d}"
        cloud.register_vmi(vmi_id, profile.vmi_size, trace)
        vmi_ids.append(vmi_id)
    return cloud, vmi_ids


def one_vm_per_node_wave(cloud: Cloud, vmi_ids: list[str],
                         n_nodes: int):
    """Run a wave with VM *i* pinned to node *i*, VMI ``i % len(vmis)``
    — the paper's fixed experiment layout."""
    requests = []
    override = []
    # Group VMs by VMI to issue (vmi, count) pairs while preserving the
    # i -> node i, i -> vmi i%k mapping.
    per_vm = [(vmi_ids[i % len(vmi_ids)], f"node{i:02d}")
              for i in range(n_nodes)]
    for vmi_id, node_id in per_vm:
        requests.append((vmi_id, 1))
        override.append(node_id)
    return cloud.start_vms(requests, node_override=override)


def prewarm(cloud: Cloud, vmi_ids: list[str], n_nodes: int) -> None:
    """Run (and discard) a cold wave so caches exist, then release the
    slots — the 'warm cache' precondition of §5.3."""
    one_vm_per_node_wave(cloud, vmi_ids, n_nodes)
    cloud.shutdown_all()
