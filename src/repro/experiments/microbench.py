"""The single-node microbenchmarks: Figures 8, 9, 10 and Tables 1, 2.

These mix the two halves of the reproduction deliberately:

* *data movement* (Figures 9, 10 traffic; Tables 1, 2) is measured on
  **real files** through :mod:`repro.imagefmt` — the byte counts are
  genuinely produced by the reproduced QCOW2 driver;
* *boot time* (Figures 8, 10) comes from the one-compute-node
  **simulated** testbed, since time depends on the modelled hardware.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import CENTOS_63, OS_PROFILES, OSProfile
from repro.bootmodel.trace import BootTrace
from repro.bootmodel.vm import (
    make_sparse_base,
    replay_through_chain,
    warm_cache_by_boot,
)
from repro.experiments.common import centos_trace
from repro.imagefmt.chain import create_cache_chain, create_cow_chain
from repro.metrics.collectors import ExperimentLog
from repro.sim.blockio import SimImage, sim_cache_chain
from repro.sim.cluster_sim import BootJob, Testbed, boot_vms
from repro.units import KiB, MB

# Figure 8/9/10 x-axis: cache quota in (decimal) MB, 0–140.
FULL_QUOTA_AXIS_MB = [10, 20, 40, 60, 80, 100, 120, 140]
QUICK_QUOTA_AXIS_MB = [20, 60, 100, 140]


def _workdir() -> str:
    base = "/dev/shm" if os.path.isdir("/dev/shm") else None
    return tempfile.mkdtemp(prefix="repro-bench-", dir=base)


# ---------------------------------------------------------------------------
# Figure 8: cache-creation overhead (boot time vs quota) — simulated
# ---------------------------------------------------------------------------


def _sim_boot_once(
    *,
    network: str = "1gbe",
    cache_kind: str | None,
    quota: int,
    warm: bool,
    trace: BootTrace | None = None,
    vmi_size: int | None = None,
    cache_cluster_bits: int = 9,
    warm_page_cache: bool = True,
) -> float:
    """Boot one VM on a fresh 1-node testbed; return its boot time.

    ``cache_kind`` None → plain QCOW2; otherwise the cache image lives
    at that location ('compute-mem', 'compute-disk', 'storage-mem').
    ``warm`` pre-populates the cache with the trace's reads first.

    ``warm_page_cache`` reflects how the paper's single-node
    microbenchmarks actually ran: repeated boots of one VMI leave its
    working set in the storage node's page cache, which is why their
    QCOW2 baseline sits at ~35 s rather than paying cold disk seeks.
    The *scaling* experiments (Figures 2/3/11/12/14) use cold storage.
    """
    trace = trace if trace is not None else centos_trace()
    vmi_size = vmi_size if vmi_size is not None else CENTOS_63.vmi_size
    tb = Testbed(n_compute=1, network=network)
    node = tb.computes[0]
    base = tb.make_base("base.raw", vmi_size)
    if warm_page_cache:
        tb.storage.page_cache.insert(base.name, 0, vmi_size)
    if cache_kind is None:
        chain = SimImage("vm.cow", base.size,
                         tb.compute_mem_location(node, "vm.cow"),
                         backing=base)
    else:
        if cache_kind == "compute-disk":
            loc = tb.compute_disk_location(node, "vm.cache")
        elif cache_kind == "compute-mem":
            loc = tb.compute_mem_location(node, "vm.cache")
        else:
            loc = tb.storage_mem_location("vm.cache")
        chain, cache = sim_cache_chain(
            base, cache_location=loc,
            cow_location=tb.compute_mem_location(node, "vm.cow"),
            quota=quota, cache_cluster_bits=cache_cluster_bits)
        if warm:
            for op in trace.reads():
                length = min(op.length, cache.size - op.offset)
                if length > 0:
                    cache.read(op.offset, length, [])
    result = boot_vms(tb, [BootJob("vm", node, chain, trace)])
    return result.records[0].boot_time


def run_fig08_cache_creation(
    quota_axis_mb: list[int] | None = None,
) -> ExperimentLog:
    """Figure 8: boot time vs cache quota for four configurations.

    Paper result: warm ≈ QCOW2; cold with the cache in memory ≈ QCOW2;
    cold with the cache on disk is far slower (synchronous writes).
    """
    axis = quota_axis_mb or FULL_QUOTA_AXIS_MB
    log = ExperimentLog("fig08",
                        "Cache creation overhead vs cache quota (1GbE)")
    warm = log.new_series("Warm cache")
    cold_mem = log.new_series("Cold cache - on mem")
    cold_disk = log.new_series("Cold cache - on disk")
    plain = log.new_series("QCOW2")
    qcow2_time = _sim_boot_once(cache_kind=None, quota=0, warm=False)
    for mb in axis:
        quota = mb * MB
        warm.add(mb, _sim_boot_once(cache_kind="compute-disk",
                                    quota=quota, warm=True))
        cold_mem.add(mb, _sim_boot_once(cache_kind="compute-mem",
                                        quota=quota, warm=False))
        cold_disk.add(mb, _sim_boot_once(cache_kind="compute-disk",
                                         quota=quota, warm=False))
        plain.add(mb, qcow2_time)
    return log


# ---------------------------------------------------------------------------
# Figure 9: traffic at the storage node vs quota — real files
# ---------------------------------------------------------------------------


def _real_traffic(
    workdir: str,
    trace: BootTrace,
    base_path: str,
    *,
    quota: int,
    cluster_size: int,
    tag: str,
) -> tuple[float, float]:
    """(cold_mb, warm_mb) transferred from the base for one config."""
    cache_p = os.path.join(workdir, f"cache-{tag}.qcow2")
    cow_p = os.path.join(workdir, f"cow-{tag}.qcow2")
    with create_cache_chain(base_path, cache_p, cow_p, quota=quota,
                            cache_cluster_size=cluster_size) as chain:
        cold = replay_through_chain(trace, chain, track_unique=False)
    os.unlink(cow_p)
    cow2_p = os.path.join(workdir, f"cow2-{tag}.qcow2")
    with create_cache_chain(base_path, cache_p, cow2_p, quota=quota,
                            cache_cluster_size=cluster_size) as chain:
        warm = replay_through_chain(trace, chain, track_unique=False)
    os.unlink(cow2_p)
    os.unlink(cache_p)
    return cold.base_bytes_read / MB, warm.base_bytes_read / MB


def run_fig09_storage_traffic(
    quota_axis_mb: list[int] | None = None,
    trace: BootTrace | None = None,
    vmi_size: int | None = None,
) -> ExperimentLog:
    """Figure 9: observed storage traffic vs quota, 512 B vs 64 KiB
    cache clusters, measured on real image files.

    Paper result: cold cache at 64 KiB clusters moves *more* data than
    plain QCOW2 (partial-cluster fills); 512 B fixes it; warm traffic
    shrinks as the quota grows.
    """
    axis = quota_axis_mb or FULL_QUOTA_AXIS_MB
    trace = trace if trace is not None else centos_trace()
    vmi_size = vmi_size if vmi_size is not None else CENTOS_63.vmi_size
    workdir = _workdir()
    log = ExperimentLog(
        "fig09", "Traffic at the storage node vs cache quota")
    series = {
        ("warm", 512): log.new_series("Warm cache - cluster = 512B",
                                      unit="MB"),
        ("warm", 64 * KiB): log.new_series(
            "Warm cache - cluster = 64KB", unit="MB"),
        ("cold", 512): log.new_series("Cold cache - cluster = 512B",
                                      unit="MB"),
        ("cold", 64 * KiB): log.new_series(
            "Cold cache - cluster = 64KB", unit="MB"),
    }
    plain = log.new_series("QCOW2", unit="MB")
    try:
        base_path = make_sparse_base(
            os.path.join(workdir, "base.raw"), vmi_size)
        with create_cow_chain(base_path,
                              os.path.join(workdir,
                                           "plain.qcow2")) as chain:
            qcow2_mb = replay_through_chain(
                trace, chain, track_unique=False).base_bytes_read / MB
        for mb in axis:
            for cluster in (512, 64 * KiB):
                cold_mb, warm_mb = _real_traffic(
                    workdir, trace, base_path,
                    quota=mb * MB, cluster_size=cluster,
                    tag=f"{mb}-{cluster}")
                series[("cold", cluster)].add(mb, cold_mb)
                series[("warm", cluster)].add(mb, warm_mb)
            plain.add(mb, qcow2_mb)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return log


# ---------------------------------------------------------------------------
# Figure 10: the final arrangement — time (sim) + traffic (real files)
# ---------------------------------------------------------------------------


def run_fig10_final_arrangement(
    quota_axis_mb: list[int] | None = None,
    trace: BootTrace | None = None,
    vmi_size: int | None = None,
) -> ExperimentLog:
    """Figure 10: 512 B cache clusters, cold cache in memory — boot
    time and transfer size vs quota.

    Paper result: cold ≈ warm ≈ QCOW2 in boot time (cache creation has
    near-zero overhead); warm transfer size falls to ~0 once the quota
    exceeds the ~90 MB working set.
    """
    axis = quota_axis_mb or FULL_QUOTA_AXIS_MB
    trace = trace if trace is not None else centos_trace()
    vmi_size = vmi_size if vmi_size is not None else CENTOS_63.vmi_size
    log = ExperimentLog(
        "fig10",
        "Final arrangement: memory-staged 512B-cluster cache")
    t_warm = log.new_series("Warm cache - boot time")
    t_cold = log.new_series("Cold cache - boot time")
    t_plain = log.new_series("QCOW2 - boot time")
    x_warm = log.new_series("Warm cache - tx size", unit="MB")
    x_cold = log.new_series("Cold cache - tx size", unit="MB")
    x_plain = log.new_series("QCOW2 - tx size", unit="MB")

    qcow2_time = _sim_boot_once(cache_kind=None, quota=0, warm=False,
                                trace=trace, vmi_size=vmi_size)
    workdir = _workdir()
    try:
        base_path = make_sparse_base(
            os.path.join(workdir, "base.raw"), vmi_size)
        with create_cow_chain(base_path,
                              os.path.join(workdir,
                                           "plain.qcow2")) as chain:
            qcow2_mb = replay_through_chain(
                trace, chain, track_unique=False).base_bytes_read / MB
        for mb in axis:
            quota = mb * MB
            t_warm.add(mb, _sim_boot_once(
                cache_kind="compute-disk", quota=quota, warm=True,
                trace=trace, vmi_size=vmi_size))
            t_cold.add(mb, _sim_boot_once(
                cache_kind="compute-mem", quota=quota, warm=False,
                trace=trace, vmi_size=vmi_size))
            t_plain.add(mb, qcow2_time)
            cold_mb, warm_mb = _real_traffic(
                workdir, trace, base_path, quota=quota,
                cluster_size=512, tag=f"f10-{mb}")
            x_cold.add(mb, cold_mb)
            x_warm.add(mb, warm_mb)
            x_plain.add(mb, qcow2_mb)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return log


# ---------------------------------------------------------------------------
# Tables 1 and 2 — real files
# ---------------------------------------------------------------------------

PAPER_TABLE1_MB = {
    "centos-6.3": 85.2,
    "debian-6.0.7": 24.9,
    "windows-server-2012": 195.8,
}

PAPER_TABLE2_MB = {
    "centos-6.3": 93.0,
    "debian-6.0.7": 40.0,
    "windows-server-2012": 201.0,
}


def run_tab1_working_sets(
    profiles: dict[str, OSProfile] | None = None,
) -> ExperimentLog:
    """Table 1: unique bytes read from the base image during boot,
    measured at the real base file under a plain QCOW2 overlay."""
    profiles = profiles or OS_PROFILES
    log = ExperimentLog("tab1", "Read working set size of various VMIs")
    series = log.new_series("Size of unique reads", unit="MB")
    workdir = _workdir()
    try:
        for i, (name, profile) in enumerate(sorted(profiles.items())):
            trace = generate_boot_trace(profile, seed=1)
            base_path = make_sparse_base(
                os.path.join(workdir, f"{name}.raw"), profile.vmi_size)
            with create_cow_chain(
                    base_path,
                    os.path.join(workdir, f"{name}.qcow2")) as chain:
                res = replay_through_chain(trace, chain)
            series.add(i, res.unique_base_bytes / MB)
            log.record_scalar(f"{name}_unique_mb",
                              res.unique_base_bytes / MB)
            if name in PAPER_TABLE1_MB:
                log.record_scalar(f"{name}_paper_mb",
                                  PAPER_TABLE1_MB[name])
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return log


def run_tab2_cache_quota(
    profiles: dict[str, OSProfile] | None = None,
) -> ExperimentLog:
    """Table 2: physical size of a fully warmed 512 B-cluster cache
    image per OS (the quota an operator must budget)."""
    profiles = profiles or OS_PROFILES
    log = ExperimentLog("tab2", "Cache quota necessary for various VMIs")
    series = log.new_series("Warm cache size", unit="MB")
    workdir = _workdir()
    try:
        for i, (name, profile) in enumerate(sorted(profiles.items())):
            trace = generate_boot_trace(profile, seed=1)
            base_path = make_sparse_base(
                os.path.join(workdir, f"{name}.raw"), profile.vmi_size)
            res = warm_cache_by_boot(
                trace, base_path,
                os.path.join(workdir, f"{name}.cache.qcow2"),
                quota=300 * MB)
            series.add(i, res.cache_file_size / MB)
            log.record_scalar(f"{name}_cache_mb",
                              res.cache_file_size / MB)
            if name in PAPER_TABLE2_MB:
                log.record_scalar(f"{name}_paper_mb",
                                  PAPER_TABLE2_MB[name])
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return log
