"""Section 6: cache placement comparison and Algorithm 1 in action."""

from __future__ import annotations

from repro.experiments.common import make_cloud, one_vm_per_node_wave
from repro.experiments.microbench import _sim_boot_once
from repro.metrics.collectors import ExperimentLog
from repro.units import MB


def run_sec6_placement(
    quota: int = 250 * MB,
    networks: tuple[str, ...] = ("ib", "1gbe"),
) -> ExperimentLog:
    """§6: warm-cache boot time, compute-node disk vs storage memory.

    Paper result: "at most 1% difference in startup times between a
    cache on the compute node's disk, compared to the storage's
    memory" (on the fast network) — placement can be chosen for
    operational reasons, not performance.
    """
    log = ExperimentLog(
        "sec6", "Warm cache placement: compute disk vs storage memory")
    disk = log.new_series("Compute node disk")
    mem = log.new_series("Storage node memory")
    for i, network in enumerate(networks):
        t_disk = _sim_boot_once(network=network,
                                cache_kind="compute-disk",
                                quota=quota, warm=True)
        t_mem = _sim_boot_once(network=network,
                               cache_kind="storage-mem",
                               quota=quota, warm=True)
        disk.add(i, t_disk)
        mem.add(i, t_mem)
        diff = abs(t_disk - t_mem) / max(t_disk, t_mem)
        log.record_scalar(f"{network}_difference_pct", 100 * diff)
        log.note(f"{network}: disk={t_disk:.2f}s mem={t_mem:.2f}s "
                 f"({100 * diff:.1f}% apart)")
    return log


def run_algorithm1_walkthrough(
    n_nodes: int = 8,
) -> ExperimentLog:
    """Exercise every branch of Algorithm 1 across three waves and
    record which decisions fire (a behavioural regression net for §6).
    """
    log = ExperimentLog(
        "alg1", "Algorithm 1 decisions across deployment waves")
    cloud, vmis = make_cloud(n_compute=n_nodes, network="ib",
                             cache_mode="algorithm1")
    decisions = log.new_series("decision mix", unit="count")

    # Wave 1: everything cold.
    w1 = one_vm_per_node_wave(cloud, vmis, n_nodes // 2)
    log.record_scalar("wave1_cold", _count(w1, "cold"))
    cloud.shutdown_all()

    # Wave 2: same nodes are local-warm, new nodes go storage-warm.
    w2 = one_vm_per_node_wave(cloud, vmis, n_nodes)
    log.record_scalar("wave2_local_warm", _count(w2, "local-warm"))
    log.record_scalar("wave2_storage_warm", _count(w2, "storage-warm"))
    cloud.shutdown_all()

    # Wave 3: everything local-warm.
    w3 = one_vm_per_node_wave(cloud, vmis, n_nodes)
    log.record_scalar("wave3_local_warm", _count(w3, "local-warm"))
    for i, wave in enumerate((w1, w2, w3), start=1):
        decisions.add(i, wave.mean_boot_time)
    return log


def _count(result, decision: str) -> int:
    return sum(1 for d in result.decisions.values() if d == decision)
