"""The scalability experiments: Figures 2, 3, 11, 12, and 14.

All of them boot VMs simultaneously on the simulated DAS-4 and measure
mean boot time ("the time from invoking KVM ... until the VM connects
back", §5), varying the node count or the number of distinct VMIs.
"""

from __future__ import annotations

from repro.bootmodel.profiles import CENTOS_63
from repro.experiments.common import (
    FULL_NODE_AXIS,
    FULL_VMI_AXIS,
    make_cloud,
    one_vm_per_node_wave,
)
from repro.metrics.collectors import ExperimentLog


def run_fig02_scaling_nodes(
    node_axis: list[int] | None = None,
    networks: tuple[str, ...] = ("ib", "1gbe"),
) -> ExperimentLog:
    """Figure 2: plain QCOW2, one VMI, 1..64 simultaneous boots.

    Paper result: 1 GbE grows linearly past ~8 nodes (network
    saturation); 32 Gb IB stays constant.
    """
    node_axis = node_axis or FULL_NODE_AXIS
    log = ExperimentLog(
        "fig02", "Booting time vs #nodes, single VMI, QCOW2")
    for network in networks:
        series = log.new_series(f"QCOW2 - {_label(network)}")
        for n in node_axis:
            cloud, vmis = make_cloud(n_compute=n, network=network,
                                     cache_mode="none")
            result = one_vm_per_node_wave(cloud, vmis, n)
            series.add(n, result.mean_boot_time)
    return log


def run_fig03_scaling_vmis(
    vmi_axis: list[int] | None = None,
    networks: tuple[str, ...] = ("ib", "1gbe"),
    n_nodes: int = 64,
) -> ExperimentLog:
    """Figure 3: plain QCOW2, 64 nodes, 1..64 distinct VMIs.

    Paper result: boot time rises steeply with the VMI count on both
    networks — the storage node's disks become the bottleneck.
    """
    vmi_axis = vmi_axis or FULL_VMI_AXIS
    log = ExperimentLog(
        "fig03", f"Booting time vs #VMIs, {n_nodes} nodes, QCOW2")
    for network in networks:
        series = log.new_series(f"QCOW2 - {_label(network)}")
        for k in vmi_axis:
            cloud, vmis = make_cloud(n_compute=n_nodes, network=network,
                                     cache_mode="none", n_vmis=k)
            result = one_vm_per_node_wave(cloud, vmis, n_nodes)
            series.add(k, result.mean_boot_time)
    return log


def run_fig11_cached_scaling_nodes(
    node_axis: list[int] | None = None,
    network: str = "1gbe",
) -> ExperimentLog:
    """Figure 11: single VMI over 1 GbE with compute-disk caches.

    Paper result: cold caches cost the same as QCOW2; warm caches make
    64 simultaneous boots as fast as a single one.
    """
    node_axis = node_axis or FULL_NODE_AXIS
    log = ExperimentLog(
        "fig11",
        f"Caching a single VMI at compute nodes, {_label(network)}")
    warm = log.new_series("Warm cache")
    cold = log.new_series("Cold cache")
    plain = log.new_series("QCOW2")
    for n in node_axis:
        cloud, vmis = make_cloud(n_compute=n, network=network,
                                 cache_mode="compute-disk")
        cold_result = one_vm_per_node_wave(cloud, vmis, n)
        cold.add(n, cold_result.mean_boot_time)
        cloud.shutdown_all()
        warm_result = one_vm_per_node_wave(cloud, vmis, n)
        warm.add(n, warm_result.mean_boot_time)

        qcloud, qvmis = make_cloud(n_compute=n, network=network,
                                   cache_mode="none")
        plain.add(n, one_vm_per_node_wave(qcloud, qvmis,
                                          n).mean_boot_time)
    return log


def run_fig12_cached_scaling_vmis(
    vmi_axis: list[int] | None = None,
    networks: tuple[str, ...] = ("1gbe", "ib"),
    n_nodes: int = 64,
) -> ExperimentLog:
    """Figure 12: 64 nodes, many VMIs, caches on compute-node disks.

    Paper result: warm caches stay flat (both bottlenecks bypassed);
    cold ≈ QCOW2.
    """
    vmi_axis = vmi_axis or FULL_VMI_AXIS
    log = ExperimentLog(
        "fig12",
        f"Caching many VMIs at the compute nodes' disk, {n_nodes} nodes")
    for network in networks:
        tag = _label(network)
        warm = log.new_series(f"Warm cache - {tag}")
        cold = log.new_series(f"Cold cache - {tag}")
        plain = log.new_series(f"QCOW2 - {tag}")
        for k in vmi_axis:
            cloud, vmis = make_cloud(n_compute=n_nodes, network=network,
                                     cache_mode="compute-disk",
                                     n_vmis=k)
            cold_result = one_vm_per_node_wave(cloud, vmis, n_nodes)
            cold.add(k, cold_result.mean_boot_time)
            cloud.shutdown_all()
            warm_result = one_vm_per_node_wave(cloud, vmis, n_nodes)
            warm.add(k, warm_result.mean_boot_time)

            qcloud, qvmis = make_cloud(n_compute=n_nodes,
                                       network=network,
                                       cache_mode="none", n_vmis=k)
            plain.add(k, one_vm_per_node_wave(qcloud, qvmis,
                                              n_nodes).mean_boot_time)
    return log


def run_fig14_storage_mem_scaling_vmis(
    vmi_axis: list[int] | None = None,
    networks: tuple[str, ...] = ("1gbe", "ib"),
    n_nodes: int = 64,
) -> ExperimentLog:
    """Figure 14: 64 nodes, many VMIs, caches in storage-node memory.

    Paper result: warm caches remove the disk bottleneck entirely; on
    1 GbE the network bound remains, on IB the curve is flat.  Cold
    boots include the cache copy-back time.
    """
    vmi_axis = vmi_axis or FULL_VMI_AXIS
    log = ExperimentLog(
        "fig14",
        f"Caching many VMIs on the storage node's memory, "
        f"{n_nodes} nodes")
    for network in networks:
        tag = _label(network)
        warm = log.new_series(f"Warm cache - {tag}")
        cold = log.new_series(f"Cold cache - {tag}")
        plain = log.new_series(f"QCOW2 - {tag}")
        for k in vmi_axis:
            cloud, vmis = make_cloud(n_compute=n_nodes, network=network,
                                     cache_mode="storage-mem",
                                     n_vmis=k)
            cold_result = one_vm_per_node_wave(cloud, vmis, n_nodes)
            cold.add(k, cold_result.mean_boot_time)
            cloud.shutdown_all()
            warm_result = one_vm_per_node_wave(cloud, vmis, n_nodes)
            warm.add(k, warm_result.mean_boot_time)

            qcloud, qvmis = make_cloud(n_compute=n_nodes,
                                       network=network,
                                       cache_mode="none", n_vmis=k)
            plain.add(k, one_vm_per_node_wave(qcloud, qvmis,
                                              n_nodes).mean_boot_time)
    log.note(
        "cold series includes the cache transfer to the storage node, "
        "charged to the creator VM's boot (as in the paper)")
    return log


def _label(network: str) -> str:
    labels = {"1gbe": "1GbE", "ib": "32GbIB"}
    try:
        return labels[network]
    except KeyError:
        raise ValueError(
            f"unknown network {network!r}; options: "
            f"{sorted(labels)}") from None


def single_vm_reference(network: str = "1gbe") -> float:
    """Boot time of one uncontended VM (the paper's headline claim
    compares 64 warm boots against this number)."""
    cloud, vmis = make_cloud(n_compute=1, network=network,
                             cache_mode="none", profile=CENTOS_63)
    return one_vm_per_node_wave(cloud, vmis, 1).mean_boot_time
