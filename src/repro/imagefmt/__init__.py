"""QCOW2-style image format with the SC'13 VMI-cache extension.

This subpackage is a faithful, file-backed reimplementation of the part of
QEMU that the paper modifies: the QCOW2 block driver (two-level L1/L2
cluster mapping, backing-file chains, refcount-based cluster allocation,
header extensions) plus the ~150-line cache extension of Section 4.3
(quota and current-size header fields, copy-on-read population, space
errors on quota exhaustion, immutability with respect to the base image).

Public entry points:

* :func:`repro.imagefmt.qcow2.Qcow2Image.create` /
  :meth:`~repro.imagefmt.qcow2.Qcow2Image.open` — the image driver.
* :func:`repro.imagefmt.raw.RawImage.create` — raw base images.
* :mod:`repro.imagefmt.chain` — the qemu-img chaining workflow of §4.4
  (base ← cache ← CoW).
* :mod:`repro.imagefmt.qemu_img` — a ``qemu-img``-like command-line facade
  (``repro-img create/info/check/map``).
"""

from repro.imagefmt.chain import (
    create_cache_chain,
    create_cow_chain,
    open_chain,
)
from repro.imagefmt.driver import open_image
from repro.imagefmt.manifest import (
    ClusterManifest,
    ContentIndex,
    ManifestBuilder,
    build_manifest,
)
from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage

__all__ = [
    "Qcow2Image",
    "RawImage",
    "open_image",
    "create_cow_chain",
    "create_cache_chain",
    "open_chain",
    "ClusterManifest",
    "ManifestBuilder",
    "ContentIndex",
    "build_manifest",
]
