"""Quota accounting and copy-on-read state for cache images.

This module is deliberately free of file I/O: the same policy object
drives both the file-backed driver (:mod:`repro.imagefmt.qcow2`) and the
simulator's in-memory image model (:mod:`repro.sim.blockio`), so the
scalability experiments exercise the identical quota/CoR decisions the
real format makes.

Semantics per Section 4.3 of the paper:

* A cache image has a fixed byte ``quota``; the *current size* of the
  image file (metadata included) must stay within it.
* Populating writes check the quota first; an insufficient quota raises
  :class:`~repro.errors.QuotaExceededError` — the paper's "space error".
* The read path catches the space error once and then stops attempting
  to cache future cold reads ("we stop writing to the cache for the
  future cold reads").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QuotaExceededError
from repro.imagefmt.refcount import RefcountGeometry
from repro.units import div_round_up


@dataclass
class QuotaPolicy:
    """Byte-quota check for a cache image.

    ``quota == 0`` means "not a cache" (mirrors the qemu-img convention
    of Section 4.3: a non-zero quota passed to ``create`` marks the new
    image as a cache).
    """

    quota: int

    def __post_init__(self) -> None:
        if self.quota < 0:
            raise ValueError("quota must be non-negative")

    @property
    def is_cache(self) -> bool:
        return self.quota > 0

    def refcount_reserve(self, cluster_bits: int) -> int:
        """Bytes to reserve for refcount blocks written at flush time.

        Refcount blocks are allocated lazily when the image is flushed,
        *after* quota checks have passed; reserving their worst case up
        front keeps the final file size within quota.
        """
        geo = RefcountGeometry(cluster_bits)
        max_clusters = div_round_up(self.quota, geo.cluster_size)
        blocks = div_round_up(max_clusters, geo.block_entries)
        # +1 cluster of slack for refcount-table growth.
        return (blocks + 1) * geo.cluster_size

    def check(
        self, physical_size: int, upcoming_bytes: int, cluster_bits: int
    ) -> None:
        """Raise QuotaExceededError if an allocation would bust the quota."""
        if not self.is_cache:
            return
        projected = (
            physical_size + upcoming_bytes
            + self.refcount_reserve(cluster_bits)
        )
        if projected > self.quota:
            raise QuotaExceededError(
                requested=upcoming_bytes,
                quota=self.quota,
                used=physical_size,
            )

    def headroom(self, physical_size: int, cluster_bits: int) -> int:
        """Bytes still allocatable before the quota check would fail."""
        if not self.is_cache:
            return 2**63
        room = self.quota - physical_size \
            - self.refcount_reserve(cluster_bits)
        return max(0, room)


@dataclass
class CorState:
    """Copy-on-read enablement with the one-way trip of §4.3.

    Once a populating write fails with a space error, CoR is disabled for
    the rest of the image's open lifetime; reads keep recursing to the
    base image but stop trying to cache.
    """

    enabled: bool = True
    disabled_reason: str | None = None
    space_errors: int = 0

    def disable(self, reason: str = "quota exhausted") -> None:
        self.enabled = False
        self.disabled_reason = reason

    def record_space_error(self) -> None:
        self.space_errors += 1
        self.disable()


@dataclass
class CacheRuntime:
    """Bundles the per-open cache state a driver needs."""

    quota_policy: QuotaPolicy
    cor: CorState = field(default_factory=CorState)

    @property
    def is_cache(self) -> bool:
        return self.quota_policy.is_cache
