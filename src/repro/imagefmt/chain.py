"""Backing-chain construction: the qemu-img workflow of Section 4.4.

Normal QCOW2 operation chains ``base ← CoW``; with VMI caches there is
one extra step, producing ``base ← cache ← CoW``:

1. invoke create with a cache quota and the base as backing file → cache;
2. invoke create with no quota and the cache as backing file → CoW;
3. boot the VM from the CoW image.

With a warm cache only step 2 is repeated per VM — "with a warm cache,
there is obviously no need to invoke qemu-img for creating the cache".
"""

from __future__ import annotations

import os

from repro.errors import BackingChainError
from repro.imagefmt.constants import (
    DEFAULT_CLUSTER_SIZE,
    FORMAT_QCOW2,
    MAX_CHAIN_DEPTH,
)
from repro.imagefmt.driver import BlockDriver, open_image, probe_format
from repro.imagefmt.qcow2 import Qcow2Image
from repro.units import SECTOR_SIZE


def create_cow_chain(
    base_path: str,
    cow_path: str,
    *,
    base_format: str | None = None,
    cluster_size: int = DEFAULT_CLUSTER_SIZE,
    sync: str | None = None,
) -> Qcow2Image:
    """State of the art (§2): a CoW overlay directly on the base image.

    Returns the CoW image opened read-write, ready to boot from.
    ``sync`` defaults to the crash-safe ``barrier`` mode (DESIGN.md §9);
    benchmarks pass ``sync="none"`` to opt out.
    """
    if base_format is None:
        base_format = probe_format(base_path)
    return Qcow2Image.create(
        cow_path,
        backing_file=base_path,
        backing_format=base_format,
        cluster_size=cluster_size,
        sync=sync,
    )


def create_cache_image(
    base_path: str,
    cache_path: str,
    *,
    quota: int,
    base_format: str | None = None,
    cluster_size: int = SECTOR_SIZE,
    sync: str | None = None,
) -> Qcow2Image:
    """Step 1 of §4.4: a cache image backed by the base.

    The default cluster size is 512 bytes — the paper's choice after the
    Figure 9 study showed 64 KiB cache clusters amplify storage traffic.
    """
    if quota <= 0:
        raise ValueError("a cache image needs a positive quota")
    if base_format is None:
        base_format = probe_format(base_path)
    return Qcow2Image.create(
        cache_path,
        backing_file=base_path,
        backing_format=base_format,
        cluster_size=cluster_size,
        cache_quota=quota,
        sync=sync,
    )


def create_cache_chain(
    base_path: str,
    cache_path: str,
    cow_path: str,
    *,
    quota: int,
    base_format: str | None = None,
    cache_cluster_size: int = SECTOR_SIZE,
    cow_cluster_size: int = DEFAULT_CLUSTER_SIZE,
    sync: str | None = None,
) -> Qcow2Image:
    """The full §4.4 workflow: base ← cache ← CoW.

    Creates the cache image if it does not already exist (a pre-existing
    file is treated as a warm cache and reused as-is), then the CoW
    overlay on top of it.  Returns the CoW image opened read-write; its
    ``.backing`` is the cache, whose ``.backing`` is the base.
    """
    if not os.path.exists(cache_path):
        cache = create_cache_image(
            base_path,
            cache_path,
            quota=quota,
            base_format=base_format,
            cluster_size=cache_cluster_size,
            sync=sync,
        )
        cache.close()
    return Qcow2Image.create(
        cow_path,
        backing_file=cache_path,
        backing_format=FORMAT_QCOW2,
        cluster_size=cow_cluster_size,
        sync=sync,
    )


def open_chain(path: str, *, read_only: bool = False) -> BlockDriver:
    """Open an image with its full backing chain, validating it."""
    img = open_image(path, read_only=read_only)
    validate_chain(img)
    return img


def validate_chain(img: BlockDriver) -> None:
    """Check depth, loops, and size monotonicity of a backing chain."""
    seen: set[str] = set()
    depth = 0
    node: BlockDriver | None = img
    top_size = img.size
    while node is not None:
        depth += 1
        if depth > MAX_CHAIN_DEPTH:
            raise BackingChainError(
                f"backing chain deeper than {MAX_CHAIN_DEPTH}")
        real = os.path.realpath(node.path)
        if real in seen:
            raise BackingChainError(f"backing chain loop at {node.path}")
        seen.add(real)
        if node.size > top_size and node is not img:
            # A bigger backing file is legal in QCOW2 (extra bytes are
            # simply invisible), so merely note it; nothing to raise.
            pass
        node = node.backing


def chain_paths(img: BlockDriver) -> list[str]:
    """Paths of the chain from the active layer down to the base."""
    out = []
    node: BlockDriver | None = img
    while node is not None:
        out.append(node.path)
        node = node.backing
    return out


def find_cache_layer(img: BlockDriver) -> Qcow2Image | None:
    """Return the first cache image in the chain, if any."""
    node: BlockDriver | None = img
    while node is not None:
        if isinstance(node, Qcow2Image) and node.is_cache:
            return node
        node = node.backing
    return None
