"""Image maintenance operations: commit and rebase.

``qemu-img`` ships these alongside ``create``; a cloud running VMI
caches needs them for image lifecycle work (flattening a CoW overlay
into a new golden image, re-pointing overlays at a moved base).  Both
respect the paper's §3 invariants:

* **Immutability**: committing into a *cache* image is refused — a
  cache may only ever hold data copied from its base ("we only write
  the data that comes from the base image into the cache").
* **Cache invalidation**: committing into a base image changes it, so
  every cache derived from it becomes stale ("an immutable cache, once
  created, can be reused many times in the future *as long as the base
  image remains unchanged*").  ``commit`` therefore returns the chain
  it wrote through, and the cluster layer drops matching pool entries.
"""

from __future__ import annotations

from repro.errors import BackingChainError, ImageError
from repro.imagefmt.driver import BlockDriver, open_image, probe_format
from repro.imagefmt.qcow2 import Qcow2Image
from repro.units import MiB

_COPY_CHUNK = 1 * MiB


def commit(overlay: Qcow2Image) -> int:
    """Write the overlay's allocated data into its backing image.

    Returns the number of bytes committed.  The backing must be open
    read-write (pass a chain opened with ``read_only=False`` whose
    backing is writable) and must not be a cache image.
    """
    backing = overlay.backing
    if backing is None:
        raise BackingChainError(
            f"{overlay.path} has no backing file to commit into")
    if isinstance(backing, Qcow2Image) and backing.is_cache:
        raise ImageError(
            f"refusing to commit into cache image {backing.path}: "
            "caches are immutable with respect to guest data (§3)")
    if backing.read_only:
        raise ImageError(
            f"backing image {backing.path} is read-only; reopen the "
            "chain writable to commit")
    committed = 0
    for offset, length, allocated in overlay.map_clusters():
        if not allocated:
            continue
        pos = offset
        end = min(offset + length, backing.size)
        while pos < end:
            n = min(_COPY_CHUNK, end - pos)
            backing.write(pos, overlay.read(pos, n))
            committed += n
            pos += n
    backing.flush()
    return committed


def open_chain_for_commit(overlay_path: str) -> Qcow2Image:
    """Open ``overlay ← backing`` with the backing writable.

    The normal open path makes non-cache backings read-only (§4.3);
    commit is the one operation that legitimately writes the backing.
    """
    header = Qcow2Image.peek_header(overlay_path)
    if header.backing_file is None:
        raise BackingChainError(
            f"{overlay_path} has no backing file to commit into")
    backing_path = Qcow2Image._resolve_backing_path(
        overlay_path, header.backing_file)
    fmt = header.backing_format or probe_format(backing_path)
    backing = open_image(backing_path, fmt, read_only=False)
    overlay = Qcow2Image.open(overlay_path, read_only=False,
                              open_backing=False)
    overlay._backing = backing
    return overlay


def rebase(
    image_path: str,
    new_backing_path: str | None,
    *,
    new_backing_format: str | None = None,
    unsafe: bool = False,
) -> int:
    """Re-point an image's backing file.

    Safe mode (default) keeps guest-visible content identical: every
    range that would read differently through the new backing is first
    copied into the image itself.  ``unsafe`` just rewrites the header
    (qemu-img's ``rebase -u``), for when the caller *knows* the new
    backing has identical content (e.g. the same base moved to another
    path).  ``new_backing_path=None`` flattens: afterwards the image is
    standalone.  Returns bytes copied into the image.
    """
    copied = 0
    with Qcow2Image.open(image_path, read_only=False) as img:
        old_backing = img.backing
        new_backing: BlockDriver | None = None
        if new_backing_path is not None:
            new_backing = open_image(new_backing_path,
                                     new_backing_format,
                                     read_only=True)
        try:
            if not unsafe:
                copied = _copy_divergent(img, old_backing, new_backing)
            img.header.backing_file = new_backing_path
            img.header.backing_format = (
                new_backing.format_name if new_backing is not None
                else None)
            img._rewrite_header()
        finally:
            if new_backing is not None:
                new_backing.close()
    return copied


def _copy_divergent(
    img: Qcow2Image,
    old_backing: BlockDriver | None,
    new_backing: BlockDriver | None,
) -> int:
    """Copy into ``img`` every unallocated range whose old-chain view
    differs from the new backing's view."""
    copied = 0
    for offset, length, allocated in img.map_clusters():
        if allocated:
            continue  # local data wins regardless of backing
        pos = offset
        end = offset + length
        while pos < end:
            n = min(_COPY_CHUNK, end - pos)
            old_view = _view(old_backing, pos, n)
            new_view = _view(new_backing, pos, n)
            if old_view != new_view:
                img.write(pos, old_view)
                copied += n
            pos += n
    img.flush()
    return copied


def _view(backing: BlockDriver | None, offset: int, length: int) -> bytes:
    if backing is None:
        return b"\0" * length
    avail = max(0, min(length, backing.size - offset))
    data = backing.read(offset, avail) if avail else b""
    return data + b"\0" * (length - avail)
