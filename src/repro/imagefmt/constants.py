"""On-disk constants of the QCOW2-style format.

The layout follows the QCOW2 version-2 specification (McLoughlin, "The
QCOW2 Image Format", 2008 — reference [11] of the paper) so that the
structures the paper discusses in Section 4.1 (QCowHeader, L1/L2 tables,
cluster pointers) are bit-compatible with the real format.  The VMI-cache
fields are carried in a *header extension*, exactly as the paper does for
backward compatibility (Section 4.3).
"""

from __future__ import annotations

from repro.units import KiB, MiB

# "QFI\xfb" — the QCOW magic number.
QCOW_MAGIC = 0x514649FB
QCOW_VERSION = 2

# Fixed header size of a version-2 header, in bytes.
HEADER_SIZE_V2 = 72

# Cluster sizes: the spec allows 2^9 (512 B, one sector) .. 2^21 (2 MiB).
# The paper's cache images use the 512 B minimum (Section 5.1, Figure 9);
# the QCOW2 default is 64 KiB.
MIN_CLUSTER_BITS = 9
MAX_CLUSTER_BITS = 21
DEFAULT_CLUSTER_BITS = 16
DEFAULT_CLUSTER_SIZE = 64 * KiB

# L1/L2 entry layout (64-bit big-endian words).
L1E_OFFSET_MASK = 0x00FFFFFFFFFFFE00  # bits 9..55: L2 table offset
L2E_OFFSET_MASK = 0x00FFFFFFFFFFFE00  # bits 9..55: cluster offset
OFLAG_COPIED = 1 << 63  # refcount == 1, cluster is writable in place
OFLAG_COMPRESSED = 1 << 62  # not supported by this implementation

# Refcounts are 16-bit big-endian (refcount_order 4, the v2 fixed value).
REFCOUNT_ENTRY_SIZE = 2

# Header extension type codes.  Extensions live between the end of the
# header and the backing-file name, each encoded as
# ``u32 type, u32 length, length bytes, pad to 8``, terminated by type 0.
HEXT_END = 0x00000000
HEXT_BACKING_FORMAT = 0xE2792ACA  # standard: backing file format name
# Our VMI-cache extension: two u64 fields, quota and current size, the
# "two more 8-byte fields" of Section 4.3.  The type code spells "VMIC".
HEXT_VMI_CACHE = 0x564D4943
VMI_CACHE_EXT_SIZE = 16
# Incompatible-feature bits (the v2 header has no feature fields, so we
# carry them in an extension; the type code spells "FEAT").  An open()
# that sees a bit it does not know must refuse the image.
HEXT_FEATURES = 0x46454154
FEATURES_EXT_SIZE = 8
FEATURE_DIRTY = 1 << 0  # image was not cleanly closed; recover on open
KNOWN_INCOMPATIBLE_FEATURES = FEATURE_DIRTY

# Durability modes for writable qcow2 images (the ``sync=`` knob).
# ``barrier`` orders metadata flushes behind fsync barriers (data
# clusters -> refcounts/L2 -> L1 -> header) and maintains the dirty
# bit durably; ``none`` is the pre-crash-consistency behaviour for
# benchmarks that measure pure datapath cost.  The default may be
# overridden process-wide with the REPRO_IMG_SYNC environment variable.
SYNC_NONE = "none"
SYNC_BARRIER = "barrier"
SYNC_MODES = (SYNC_NONE, SYNC_BARRIER)

# Sanity bound used by open(): refuse absurd virtual sizes (the spec has
# no limit, but a corrupt header should not make us allocate petabytes).
MAX_VIRTUAL_SIZE = 64 * 1024 * 1024 * MiB  # 64 TiB

# Maximum backing-chain depth accepted by open_chain(); the paper's
# longest chain is base <- cache <- CoW (depth 3), but nothing in the
# format forbids deeper stacks (e.g. base <- cache <- cache <- CoW when
# chaining per Algorithm 1), so allow some headroom while still catching
# loops early.
MAX_CHAIN_DEPTH = 16

FORMAT_RAW = "raw"
FORMAT_QCOW2 = "qcow2"
