"""Image conversion: ``qemu-img convert`` for the repro formats.

Converting flattens: the output holds the full guest-visible content of
the input *chain*, with zero detection so sparse regions stay sparse in
both raw and qcow2 outputs.  A cloud's registration pipeline uses this
to turn uploaded images into base VMIs (and, with ``cache_quota``, to
pre-size a cache image directly from a warm one).
"""

from __future__ import annotations

from repro.imagefmt.constants import (
    DEFAULT_CLUSTER_SIZE,
    FORMAT_QCOW2,
    FORMAT_RAW,
)
from repro.imagefmt.driver import BlockDriver, open_image
from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage
from repro.units import MiB

_COPY_CHUNK = 2 * MiB


def convert(
    src_path: str,
    dst_path: str,
    *,
    output_format: str = FORMAT_QCOW2,
    cluster_size: int = DEFAULT_CLUSTER_SIZE,
    src_format: str | None = None,
) -> int:
    """Copy the guest-visible content of ``src`` (and its whole backing
    chain) into a fresh standalone image.  Returns non-zero data bytes
    written."""
    with open_image(src_path, src_format, read_only=True) as src:
        if output_format == FORMAT_RAW:
            dst: BlockDriver = RawImage.create(dst_path, src.size)
        elif output_format == FORMAT_QCOW2:
            dst = Qcow2Image.create(dst_path, src.size,
                                    cluster_size=cluster_size)
        else:
            raise ValueError(
                f"unsupported output format {output_format!r}")
        written = 0
        try:
            pos = 0
            while pos < src.size:
                n = min(_COPY_CHUNK, src.size - pos)
                data = src.read(pos, n)
                for off, chunk in _nonzero_runs(data):
                    dst.write(pos + off, chunk)
                    written += len(chunk)
                pos += n
        finally:
            dst.close()
    return written


def _nonzero_runs(data: bytes, granularity: int = 4096):
    """Yield (offset, bytes) for the non-zero spans of ``data``.

    Zero detection at 4 KiB granularity keeps holes sparse without
    byte-level scanning cost.
    """
    n = len(data)
    pos = 0
    run_start: int | None = None
    while pos < n:
        block = data[pos: pos + granularity]
        is_zero = block.count(0) == len(block)
        if is_zero:
            if run_start is not None:
                yield run_start, data[run_start:pos]
                run_start = None
        else:
            if run_start is None:
                run_start = pos
        pos += granularity
    if run_start is not None:
        yield run_start, data[run_start:n]
