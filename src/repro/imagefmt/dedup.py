"""Content-based deduplication analysis for VMI caches (paper §8).

The paper's closing future work: "we think it is worthwhile to
investigate data compression and deduplication techniques ... in the
context of VMI caches to gain even more storage efficacy", building on
the §7.3 observation that "VMIs created from the same operating system
distribution share content".

This module quantifies that opportunity on real cache images: it
chunks every *allocated* cluster range, fingerprints the content, and
reports how many bytes are duplicated within one image and shared
across a set of images (e.g. the caches of ten CentOS-derived VMIs on
one compute node).  It is analysis, not transformation — the paper's
immutability requirement means a deduplicating store would live below
the image format, and the numbers here size that store.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field

from repro.imagefmt.qcow2 import Qcow2Image
from repro.units import is_power_of_two

DEFAULT_CHUNK_SIZE = 4096


def content_fingerprints(
    image: Qcow2Image,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Counter:
    """Multiset of content digests over the image's allocated data.

    Only clusters allocated *in this image* are read (for a cache
    image: exactly the data it absorbed from its base) — reading
    through the backing chain would count the base's content instead.
    """
    if not is_power_of_two(chunk_size):
        raise ValueError("chunk size must be a power of two")
    digests: Counter = Counter()
    for offset, length, allocated in image.map_clusters():
        if not allocated:
            continue
        pos = offset
        end = offset + length
        while pos < end:
            n = min(chunk_size, end - pos)
            data = image.read(pos, n)
            digests[hashlib.sha256(data).digest()] += 1
            pos += n
    return digests


@dataclass
class DedupReport:
    """Outcome of a dedup analysis over one or more images."""

    chunk_size: int
    total_bytes: int
    unique_bytes: int
    per_image_allocated: dict[str, int] = field(default_factory=dict)

    @property
    def duplicate_bytes(self) -> int:
        return self.total_bytes - self.unique_bytes

    @property
    def dedup_ratio(self) -> float:
        """total / unique: 1.0 means no duplication at all."""
        if self.unique_bytes == 0:
            return 1.0
        return self.total_bytes / self.unique_bytes

    @property
    def savings_fraction(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return self.duplicate_bytes / self.total_bytes


def analyze_dedup(
    images: list[Qcow2Image],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> DedupReport:
    """How much cache-pool space would a content-addressed store save?

    Pass several cache images (same or different VMIs); the report's
    ``unique_bytes`` is the store's footprint, ``total_bytes`` what the
    plain per-image files occupy in data clusters.
    """
    if not images:
        raise ValueError("need at least one image to analyze")
    merged: Counter = Counter()
    per_image: dict[str, int] = {}
    for image in images:
        fps = content_fingerprints(image, chunk_size)
        merged.update(fps)
        per_image[image.path] = sum(fps.values()) * chunk_size
    total_chunks = sum(merged.values())
    unique_chunks = len(merged)
    return DedupReport(
        chunk_size=chunk_size,
        total_bytes=total_chunks * chunk_size,
        unique_bytes=unique_chunks * chunk_size,
        per_image_allocated=per_image,
    )


def cross_image_shared_bytes(
    a: Qcow2Image,
    b: Qcow2Image,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> int:
    """Bytes of content appearing in both images (pairwise overlap)."""
    fa = content_fingerprints(a, chunk_size)
    fb = content_fingerprints(b, chunk_size)
    shared = sum(min(fa[d], fb[d]) for d in fa.keys() & fb.keys())
    return shared * chunk_size
