"""Block-driver abstraction and format registry.

Mirrors the QEMU block layer the paper plugs into (Section 4.2): every
format implements ``create``, ``open``, ``close``, ``read``, and ``write``;
``qemu-img`` and ``qemu-kvm`` then use drivers interchangeably.  The
public :meth:`BlockDriver.read` / :meth:`BlockDriver.write` do bounds and
state checking and statistics accounting once, delegating to per-format
``_read_impl`` / ``_write_impl``.

Statistics matter here: the paper's Figures 9 and 10 plot *observed
traffic at the storage node*, which in this reproduction is simply the
``stats.bytes_read`` of the base image's driver, and Table 1's "size of
unique reads" is the measure of its ``stats.touched`` range set.

Locking contract.  Drivers are single-threaded by default: nothing in
this layer takes locks, and callers that share a driver across threads
must serialize access themselves (the block server does this with a
per-export reader-writer lock).  A driver whose *read path* is safe to
run from several threads at once declares it via
:attr:`BlockDriver.supports_concurrent_reads`; the block server then
dispatches ``REQ_READ`` under a shared lock.  The declaration means:

* ``_read_impl`` performs no writes to the image and tolerates
  concurrent invocations (positional I/O, no shared file offset;
  internal metadata caches may race only benignly — e.g. two threads
  parsing the same L2 table produce identical entries);
* :class:`DriverStats` counters are plain unsynchronized attributes,
  so under concurrent reads they are best-effort — the server-side
  :class:`~repro.remote.server.ExportStats` (mutex-guarded) are the
  authoritative traffic numbers in that mode;
* range tracking (``enable_range_tracking``) must not be enabled on a
  driver served concurrently: :class:`RangeSet` mutation is not
  thread-safe.  The block server enforces this at ``add_export`` time
  by serializing any export whose backing chain has tracking enabled;
  enable tracking *before* registering the export.

A driver with a backing chain may declare concurrent-read support only
if every image in the chain does — a read-only overlay still forwards
cold reads to its backing, so a remote or writable-cache backing
poisons the whole chain.

Writes, flushes, and reads that may populate state (copy-on-read
caches) are never concurrency-safe and always need exclusive access.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    ImageClosedError,
    InvalidImageError,
    OutOfBoundsError,
    ReadOnlyImageError,
)
from repro.metrics.tracing import TRACER


class RangeSet:
    """A union of half-open integer intervals, kept sorted and disjoint.

    Used to measure *unique* bytes touched in an image — the "read working
    set size" of Table 1 is ``RangeSet.total()`` over all boot reads of
    the base image.
    """

    def __init__(self) -> None:
        self._ranges: list[tuple[int, int]] = []

    def add(self, start: int, length: int) -> int:
        """Cover ``[start, start+length)``; returns newly covered bytes."""
        if length <= 0:
            return 0
        end = start + length
        ranges = self._ranges
        # Binary search for the first interval that could overlap/merge.
        i = self._first_candidate(start)
        new_start, new_end = start, end
        j = i
        absorbed = 0
        while j < len(ranges) and ranges[j][0] <= new_end:
            new_start = min(new_start, ranges[j][0])
            new_end = max(new_end, ranges[j][1])
            absorbed += ranges[j][1] - ranges[j][0]
            j += 1
        ranges[i:j] = [(new_start, new_end)]
        return (new_end - new_start) - absorbed

    def _first_candidate(self, start: int) -> int:
        """Index of the first interval whose end is >= start."""
        ranges = self._ranges
        lo, hi = 0, len(ranges)
        while lo < hi:
            mid = (lo + hi) // 2
            if ranges[mid][1] < start:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def gaps(self, start: int, length: int) -> list[tuple[int, int]]:
        """Sub-ranges of ``[start, start+length)`` NOT covered, as
        (offset, length) pairs in ascending order."""
        if length <= 0:
            return []
        end = start + length
        out: list[tuple[int, int]] = []
        pos = start
        i = self._first_candidate(start)
        while pos < end and i < len(self._ranges):
            s, e = self._ranges[i]
            if s >= end:
                break
            if s > pos:
                out.append((pos, s - pos))
            pos = max(pos, e)
            i += 1
        if pos < end:
            out.append((pos, end - pos))
        return out

    def covered_in(self, start: int, length: int) -> int:
        """Bytes of ``[start, start+length)`` that are covered."""
        missing = sum(ln for _, ln in self.gaps(start, length))
        return max(0, length - missing)

    def total(self) -> int:
        """Total number of bytes covered."""
        return sum(e - s for s, e in self._ranges)

    def contains(self, offset: int) -> bool:
        for s, e in self._ranges:
            if s <= offset < e:
                return True
            if s > offset:
                return False
        return False

    def intervals(self) -> list[tuple[int, int]]:
        return list(self._ranges)

    def __len__(self) -> int:
        return len(self._ranges)

    def __repr__(self) -> str:
        return f"RangeSet({len(self._ranges)} ranges, {self.total()} bytes)"


@dataclass
class DriverStats:
    """I/O counters for one driver instance.

    ``bytes_read``/``bytes_written`` count guest-visible traffic through
    this driver's public interface.  For QCOW2 images,
    ``backing_bytes_read`` additionally counts what this image pulled from
    its backing file (on-demand transfers), and ``cor_bytes_written``
    counts copy-on-read bytes stored into a cache image.
    ``rmw_fill_bytes`` counts backing bytes fetched only to complete
    partial-cluster writes (the Fig 9 read-modify-write amplification),
    and ``quota_stops`` counts cache-quota space errors (each one is the
    paper's "space error → stop caching" transition; only the first
    actually disables CoR).  ``fsync_ops`` counts durability barriers
    issued by the ordered flush (zero in ``sync="none"`` mode).
    """

    read_ops: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    bytes_written: int = 0
    flush_ops: int = 0
    backing_read_ops: int = 0
    backing_bytes_read: int = 0
    cor_write_ops: int = 0
    cor_bytes_written: int = 0
    cache_hit_bytes: int = 0
    cache_miss_bytes: int = 0
    rmw_fill_ops: int = 0
    rmw_fill_bytes: int = 0
    quota_stops: int = 0
    fsync_ops: int = 0
    touched: RangeSet = field(default_factory=RangeSet)
    track_ranges: bool = False

    def record_read(self, offset: int, length: int) -> None:
        self.read_ops += 1
        self.bytes_read += length
        if self.track_ranges:
            self.touched.add(offset, length)

    def record_write(self, offset: int, length: int) -> None:
        self.write_ops += 1
        self.bytes_written += length


class BlockDriver(ABC):
    """Base class for image drivers (raw, qcow2)."""

    format_name: str = "abstract"

    def __init__(self, path: str, size: int, read_only: bool) -> None:
        self.path = path
        self.size = size
        self.read_only = read_only
        self.closed = False
        self.stats = DriverStats()
        # Chain role for trace attribution ("base" / "cache" / "cow");
        # assigned by chain builders, falls back to the format name.
        self.trace_role: str | None = None

    # -- public checked interface -----------------------------------------

    def read(self, offset: int, length: int) -> bytes:
        self._check_open()
        self._check_bounds(offset, length)
        if length == 0:
            return b""
        data = self._read_impl(offset, length)
        if len(data) != length:
            raise InvalidImageError(
                f"driver returned {len(data)} bytes for a {length}-byte read")
        self.stats.record_read(offset, length)
        # Emitted exactly where record_read runs, so per-layer event
        # sums in a trace equal DriverStats by construction (the Fig 9
        # invariant boot_report relies on).
        if TRACER.enabled:
            TRACER.event("block.read",
                         layer=self.trace_role or self.format_name,
                         path=self.path, offset=offset, length=length)
        return data

    def write(self, offset: int, data: bytes) -> None:
        self._check_open()
        if self.read_only:
            raise ReadOnlyImageError(f"{self.path} is opened read-only")
        self._check_bounds(offset, len(data))
        if not data:
            return
        self._write_impl(offset, bytes(data))
        self.stats.record_write(offset, len(data))
        if TRACER.enabled:
            TRACER.event("block.write",
                         layer=self.trace_role or self.format_name,
                         path=self.path, offset=offset, length=len(data))

    def read_batch(self, extents: list[tuple[int, int]]) -> list[bytes]:
        """Read several ``(offset, length)`` extents, results in order.

        The default is a serial loop; transports that can overlap
        requests (the pipelined remote client) override this so a
        batch costs far fewer round-trips than N serial reads.  Bulk
        consumers — the cache warmer populating a working set — should
        prefer this over per-extent ``read`` calls.
        """
        return [self.read(offset, length) for offset, length in extents]

    def flush(self) -> None:
        self._check_open()
        self.stats.flush_ops += 1
        self._flush_impl()

    def close(self) -> None:
        if self.closed:
            return
        self._close_impl()
        self.closed = True

    # -- hooks -------------------------------------------------------------

    @abstractmethod
    def _read_impl(self, offset: int, length: int) -> bytes: ...

    @abstractmethod
    def _write_impl(self, offset: int, data: bytes) -> None: ...

    def _flush_impl(self) -> None:  # pragma: no cover - trivial default
        pass

    @abstractmethod
    def _close_impl(self) -> None: ...

    @property
    def backing(self) -> "BlockDriver | None":
        """The backing image, if any (None for raw images)."""
        return None

    def image_info(self) -> dict:
        """qemu-img-info-style summary; formats extend this dict."""
        return {
            "format": self.format_name,
            "virtual_size": self.size,
            "is_cache": False,
        }

    @property
    def supports_concurrent_reads(self) -> bool:
        """True when ``_read_impl`` may run from several threads at once.

        See the locking contract in this module's docstring.  The
        conservative default is False; formats opt in explicitly.
        """
        return False

    # -- helpers -----------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise ImageClosedError(f"{self.path} is closed")

    def _check_bounds(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise OutOfBoundsError(
                f"negative offset/length: {offset}/{length}")
        if offset + length > self.size:
            raise OutOfBoundsError(
                f"access [{offset}, {offset + length}) beyond "
                f"virtual size {self.size} of {self.path}")

    def enable_range_tracking(self) -> None:
        """Start recording the unique byte ranges read (Table 1 measure)."""
        self.stats.track_ranges = True

    def chain_depth(self) -> int:
        """Number of images in this backing chain, including this one."""
        depth = 1
        img = self.backing
        while img is not None:
            depth += 1
            img = img.backing
        return depth

    def __enter__(self) -> "BlockDriver":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else (
            "ro" if self.read_only else "rw")
        return (f"<{type(self).__name__} {self.path!r} "
                f"size={self.size} {state}>")


# -- format registry --------------------------------------------------------

_OPENERS: dict[str, Callable[..., BlockDriver]] = {}
_PROBES: list[tuple[str, Callable[[bytes], bool]]] = []


def register_format(
    name: str,
    opener: Callable[..., BlockDriver],
    probe: Callable[[bytes], bool],
) -> None:
    """Register a format's open() and magic-probe functions."""
    _OPENERS[name] = opener
    _PROBES.append((name, probe))


def probe_format(path: str) -> str:
    """Detect the image format from the first bytes of the file."""
    with open(path, "rb") as f:
        head = f.read(512)
    for name, probe in _PROBES:
        if probe(head):
            return name
    return "raw"


def open_image(
    path: str, fmt: str | None = None, *, read_only: bool = True, **kwargs
) -> BlockDriver:
    """Open an image by path, auto-probing the format when ``fmt`` is None.

    This is the moral equivalent of QEMU's ``bdrv_open``; backing files of
    QCOW2 images are opened through it recursively.
    """
    if fmt is None:
        fmt = probe_format(path)
    try:
        opener = _OPENERS[fmt]
    except KeyError:
        raise InvalidImageError(f"unknown image format {fmt!r}") from None
    return opener(path, read_only=read_only, **kwargs)
