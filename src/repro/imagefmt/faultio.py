"""Kill-point fault injection for crash-consistency tests.

:class:`CrashFile` wraps a :class:`~repro.imagefmt.fileio.PositionalFile`
and simulates what a real crash does to a file: writes that were never
fsynced may be lost, partially applied (torn), or applied out of order.
The OS page cache makes a naive "kill the process" test useless — every
buffered write is still visible afterwards — so the shim keeps a journal
of *unsynced* writes (old bytes, new bytes, pre-op file size) and, at
``crash()``, rolls them all back and re-applies only the subset a chosen
crash model says survived:

``drop-all``
    nothing unsynced reached the platter (writeback never ran);
``keep-all``
    everything reached the platter (writeback just finished) — the
    same bytes a plain process kill would leave;
``keep-last``
    only the most recent write survived (writeback reordered);
``subset``
    a seeded pseudo-random subset survived, optionally tearing the
    last surviving write at an 8-byte boundary.

Torn writes keep a prefix aligned to 8 bytes — the qcow2 format (like
QEMU's implementation) assumes the disk does not tear *within* one
64-bit table entry; tearing inside an entry could fabricate a
valid-looking mapping that no format-level recovery can detect.

A kill point is armed with ``kill_after_writes=N`` (the Nth ``pwrite``
performs, then raises :class:`CrashPoint`) or ``kill_on_sync=N`` (the
Nth fsync/fdatasync raises *before* taking effect, so its writes stay
unsynced).  The harness in ``tests/imagefmt/test_crash_matrix.py``
counts the ops of an un-killed run first, then sweeps N.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.imagefmt.fileio import PositionalFile

TEAR_ALIGN = 8  # qcow2 table entries are u64; never tear inside one

CRASH_MODES = ("drop-all", "keep-all", "keep-last", "subset")


class CrashPoint(Exception):
    """Raised by :class:`CrashFile` when the armed kill point fires."""


@dataclass
class _JournalEntry:
    offset: int
    old: bytes        # bytes previously on disk (may be short at EOF)
    new: bytes
    pre_size: int     # file size before this write


class CrashFile:
    """A ``PositionalFile`` proxy that journals unsynced writes.

    Satisfies the same interface the qcow2 driver and the allocator
    use (``pread``/``pwrite``/``truncate``/``size``/``fsync``/
    ``datasync``/``close``), so it can be swapped in for ``img._f``.
    """

    def __init__(
        self,
        inner: PositionalFile,
        *,
        kill_after_writes: int | None = None,
        kill_on_sync: int | None = None,
    ) -> None:
        self._inner = inner
        self.path = inner.path
        self.kill_after_writes = kill_after_writes
        self.kill_on_sync = kill_on_sync
        self.write_count = 0
        self.sync_count = 0
        self.fired = False
        self._journal: list[_JournalEntry] = []
        self._truncates: list[tuple[int, bytes]] = []  # (pre_size, cut tail)

    @property
    def closed(self) -> bool:
        return self._inner.closed

    # -- passthrough reads --------------------------------------------

    def pread(self, length: int, offset: int) -> bytes:
        return self._inner.pread(length, offset)

    def size(self) -> int:
        return self._inner.size()

    # -- journaled mutations ------------------------------------------

    def pwrite(self, data: bytes, offset: int) -> None:
        pre_size = self._inner.size()
        old = self._inner.pread(len(data), offset)
        self._inner.pwrite(data, offset)
        self._journal.append(_JournalEntry(
            offset=offset, old=old, new=bytes(data), pre_size=pre_size))
        self.write_count += 1
        if (not self.fired and self.kill_after_writes is not None
                and self.write_count >= self.kill_after_writes):
            self.fired = True
            raise CrashPoint(
                f"kill point: after pwrite #{self.write_count}")

    def truncate(self, new_size: int) -> None:
        pre_size = self._inner.size()
        tail = b""
        if new_size < pre_size:
            tail = self._inner.pread(pre_size - new_size, new_size)
        self._inner.truncate(new_size)
        self._truncates.append((pre_size, tail))

    # -- sync points ---------------------------------------------------

    def _sync(self, op) -> None:
        self.sync_count += 1
        if (not self.fired and self.kill_on_sync is not None
                and self.sync_count >= self.kill_on_sync):
            # The crash interrupts the barrier itself: nothing that was
            # pending becomes durable, the journal stays live.
            self.fired = True
            raise CrashPoint(
                f"kill point: during sync #{self.sync_count}")
        op()
        self._journal.clear()
        self._truncates.clear()

    def fsync(self) -> None:
        self._sync(self._inner.fsync)

    def datasync(self) -> None:
        self._sync(self._inner.datasync)

    # -- crash simulation ----------------------------------------------

    def crash(self, mode: str = "drop-all", *, seed: int = 0,
              torn: bool = False) -> int:
        """Rewrite the file to a plausible post-crash state.

        Rolls back every unsynced write (restoring old bytes and the
        smallest pre-op file size), then re-applies the subset of
        journaled writes selected by ``mode`` in their original order.
        Returns the number of writes that survived.
        """
        if mode not in CRASH_MODES:
            raise ValueError(
                f"unknown crash mode {mode!r}; expected {CRASH_MODES}")
        journal = self._journal
        # Roll back in reverse so overlapping writes unwind correctly
        # and the file size shrinks monotonically to its pre-op floor.
        for entry in reversed(journal):
            if entry.old:
                self._inner.pwrite(entry.old, entry.offset)
            # old never extends past pre_size (it was read from the
            # pre-op file), so one truncate undoes any growth.
            self._inner.truncate(entry.pre_size)
        for pre_size, tail in reversed(self._truncates):
            cur = self._inner.size()
            if pre_size > cur:
                if tail:
                    self._inner.pwrite(tail, cur)
                self._inner.truncate(pre_size)

        if mode == "drop-all":
            keep: list[_JournalEntry] = []
        elif mode == "keep-all":
            keep = list(journal)
        elif mode == "keep-last":
            keep = journal[-1:]
        else:  # subset
            rng = random.Random(seed)
            keep = [e for e in journal if rng.random() < 0.5]

        for i, entry in enumerate(keep):
            data = entry.new
            if torn and i == len(keep) - 1 and len(data) > TEAR_ALIGN:
                cut = (len(data) // 2) & ~(TEAR_ALIGN - 1)
                data = data[:max(cut, TEAR_ALIGN)]
            self._inner.pwrite(data, entry.offset)
        self._journal = []
        self._truncates = []
        self._inner.fsync()
        return len(keep)

    def close(self) -> None:
        self._inner.close()


def arm(img, **kwargs) -> CrashFile:
    """Swap a :class:`CrashFile` into an open qcow2 image.

    Both the driver and its allocator share the one file handle, so
    both references are replaced.  Returns the shim.
    """
    shim = CrashFile(img._f, **kwargs)
    img._f = shim
    img._alloc._f = shim
    return shim


def abandon(img) -> None:
    """Drop an image whose process "died": close fds, flush nothing.

    After a :class:`CrashPoint` the in-memory driver state is
    inconsistent by design; ``img.close()`` would flush it and defeat
    the simulation.
    """
    img._f.close()
    if img.backing is not None:
        img.backing.close()
    img.closed = True


def count_ops(scenario, make_image) -> tuple[int, int]:
    """Dry-run ``scenario`` against a fresh image; return (pwrites, syncs).

    ``make_image`` builds and returns the image (on a path the caller
    owns); ``scenario(img)`` performs the workload including any final
    ``flush()``.  The counts bound the kill-point sweep.
    """
    img = make_image()
    shim = arm(img)
    try:
        scenario(img)
    finally:
        writes, syncs = shim.write_count, shim.sync_count
        img._f = shim._inner
        img._alloc._f = shim._inner
        img.close()
    return writes, syncs


__all__ = [
    "CRASH_MODES",
    "CrashFile",
    "CrashPoint",
    "TEAR_ALIGN",
    "abandon",
    "arm",
    "count_ops",
]
