"""Thin positional-I/O wrapper used by all file-backed drivers.

``os.pread``/``os.pwrite`` avoid the seek+buffer-invalidation cost of
buffered file objects — the drivers issue hundreds of thousands of
small positional accesses when warming a 512-byte-cluster cache, and
the buffered path spends more time managing its buffer than moving
data (measured: ~26 µs per buffered seek vs ~7 µs per pread).
"""

from __future__ import annotations

import os


class PositionalFile:
    """A file handle with positional read/write and explicit growth."""

    def __init__(self, fd: int, path: str) -> None:
        self._fd = fd
        self.path = path
        self.closed = False

    # -- constructors -------------------------------------------------

    @classmethod
    def create(cls, path: str) -> "PositionalFile":
        fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644)
        return cls(fd, path)

    @classmethod
    def open(cls, path: str, *, read_only: bool) -> "PositionalFile":
        flags = os.O_RDONLY if read_only else os.O_RDWR
        return cls(os.open(path, flags), path)

    # -- I/O ------------------------------------------------------------

    def pread(self, length: int, offset: int) -> bytes:
        """Read up to ``length`` bytes; short past EOF (caller pads)."""
        parts = []
        remaining = length
        pos = offset
        while remaining > 0:
            chunk = os.pread(self._fd, remaining, pos)
            if not chunk:
                break
            parts.append(chunk)
            pos += len(chunk)
            remaining -= len(chunk)
        return b"".join(parts)

    def pwrite(self, data: bytes, offset: int) -> None:
        view = memoryview(data)
        pos = offset
        while view:
            n = os.pwrite(self._fd, view, pos)
            view = view[n:]
            pos += n

    def truncate(self, size: int) -> None:
        os.ftruncate(self._fd, size)

    def size(self) -> int:
        return os.fstat(self._fd).st_size

    def fsync(self) -> None:
        os.fsync(self._fd)

    def datasync(self) -> None:
        """Durability barrier for file *contents* only.

        Used for the intermediate stages of the ordered qcow2 flush,
        where inode metadata (mtime) need not reach the platter;
        falls back to a full fsync where fdatasync is unavailable.
        """
        if hasattr(os, "fdatasync"):
            os.fdatasync(self._fd)
        else:  # pragma: no cover - non-POSIX fallback
            os.fsync(self._fd)

    def close(self) -> None:
        if not self.closed:
            os.close(self._fd)
            self.closed = True


def fsync_directory(path: str) -> None:
    """fsync the directory containing ``path`` so a rename into it is
    durable (the last step of create-via-temp-file-and-rename)."""
    dirpath = os.path.dirname(os.path.abspath(path)) or "."
    fd = os.open(dirpath, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - some filesystems refuse
        pass
    finally:
        os.close(fd)
