"""QCowHeader and header-extension serialization.

The version-2 header is 72 bytes of big-endian fields; header extensions
follow it (each ``u32 type, u32 length, data, pad-to-8``), then the
backing-file name.  The paper's cache extension adds two 8-byte fields —
the quota and the current size of the cache — "as part of a new extension
to the QCowHeader ... to ensure backward compatibility with normal QCOW2
images" (Section 4.3).  We encode them as extension type ``HEXT_VMI_CACHE``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import InvalidImageError, UnsupportedFeatureError
from repro.imagefmt.constants import (
    FEATURE_DIRTY,
    FEATURES_EXT_SIZE,
    HEADER_SIZE_V2,
    HEXT_BACKING_FORMAT,
    HEXT_END,
    HEXT_FEATURES,
    HEXT_VMI_CACHE,
    KNOWN_INCOMPATIBLE_FEATURES,
    MAX_CLUSTER_BITS,
    MAX_VIRTUAL_SIZE,
    MIN_CLUSTER_BITS,
    QCOW_MAGIC,
    QCOW_VERSION,
    VMI_CACHE_EXT_SIZE,
)
from repro.units import align_up

_HEADER_STRUCT = struct.Struct(">IIQIIQIIQQIIQ")
assert _HEADER_STRUCT.size == HEADER_SIZE_V2

_EXT_HEADER = struct.Struct(">II")
_CACHE_EXT = struct.Struct(">QQ")
_FEATURES_EXT = struct.Struct(">Q")


@dataclass
class HeaderExtension:
    """One raw header extension (type code + payload bytes)."""

    ext_type: int
    data: bytes


@dataclass
class CacheExtension:
    """Decoded VMI-cache extension: the two 8-byte fields of §4.3.

    ``quota`` is the maximum physical file size the cache may grow to;
    ``current_size`` is the physical size at last close (it starts at
    "size of the header and initial tables" and is written back on close).
    """

    quota: int
    current_size: int

    def encode(self) -> bytes:
        return _CACHE_EXT.pack(self.quota, self.current_size)

    @classmethod
    def decode(cls, data: bytes) -> "CacheExtension":
        if len(data) != VMI_CACHE_EXT_SIZE:
            raise InvalidImageError(
                f"VMI cache extension has {len(data)} bytes, "
                f"expected {VMI_CACHE_EXT_SIZE}"
            )
        quota, current_size = _CACHE_EXT.unpack(data)
        return cls(quota=quota, current_size=current_size)


@dataclass
class QCowHeader:
    """The fixed version-2 header plus decoded extensions.

    Field names and order match the on-disk format; ``crypt_method``,
    ``nb_snapshots`` and ``snapshots_offset`` are carried but must be zero
    (encryption and internal snapshots are out of scope for the paper and
    for this reproduction).
    """

    size: int
    cluster_bits: int
    backing_file: str | None = None
    backing_format: str | None = None
    l1_size: int = 0
    l1_table_offset: int = 0
    refcount_table_offset: int = 0
    refcount_table_clusters: int = 0
    crypt_method: int = 0
    nb_snapshots: int = 0
    snapshots_offset: int = 0
    cache_ext: CacheExtension | None = None
    incompatible_features: int = 0
    unknown_extensions: list[HeaderExtension] = field(default_factory=list)

    @property
    def cluster_size(self) -> int:
        return 1 << self.cluster_bits

    @property
    def is_cache(self) -> bool:
        """True when the image carries the VMI-cache extension."""
        return self.cache_ext is not None

    @property
    def is_dirty(self) -> bool:
        """True when the image was not cleanly closed (crash recovery
        must run before its metadata can be trusted)."""
        return bool(self.incompatible_features & FEATURE_DIRTY)

    # -- serialization ----------------------------------------------------

    def encode(self) -> bytes:
        """Serialize header + extensions + backing name.

        The result is *not* padded to a cluster; callers pad.  Layout:
        ``[72-byte header][extensions][end marker][backing file name]``.
        """
        backing = (self.backing_file or "").encode("utf-8")
        ext_blob = self._encode_extensions()
        backing_offset = HEADER_SIZE_V2 + len(ext_blob) if backing else 0
        fixed = _HEADER_STRUCT.pack(
            QCOW_MAGIC,
            QCOW_VERSION,
            backing_offset,
            len(backing),
            self.cluster_bits,
            self.size,
            self.crypt_method,
            self.l1_size,
            self.l1_table_offset,
            self.refcount_table_offset,
            self.refcount_table_clusters,
            self.nb_snapshots,
            self.snapshots_offset,
        )
        return fixed + ext_blob + backing

    def _encode_extensions(self) -> bytes:
        parts: list[bytes] = []
        # Always emitted (even when zero) so the encoded header size does
        # not change when the dirty bit flips: the dirty-bit write must be
        # an in-place header rewrite, never a relayout.
        parts.append(_encode_one_ext(
            HEXT_FEATURES,
            _FEATURES_EXT.pack(self.incompatible_features)))
        if self.backing_format is not None:
            parts.append(_encode_one_ext(
                HEXT_BACKING_FORMAT, self.backing_format.encode("utf-8")))
        if self.cache_ext is not None:
            parts.append(_encode_one_ext(
                HEXT_VMI_CACHE, self.cache_ext.encode()))
        for ext in self.unknown_extensions:
            parts.append(_encode_one_ext(ext.ext_type, ext.data))
        parts.append(_EXT_HEADER.pack(HEXT_END, 0))
        return b"".join(parts)

    def encoded_size(self) -> int:
        """Byte length of the serialized header area."""
        return len(self.encode())

    @classmethod
    def decode(cls, blob: bytes) -> "QCowHeader":
        """Parse the header area of an image file.

        ``blob`` must contain at least the first cluster of the file (the
        header area never crosses the first cluster in images we create;
        for foreign images callers may pass more).
        """
        if len(blob) < HEADER_SIZE_V2:
            raise InvalidImageError("file too small to hold a QCOW2 header")
        (
            magic,
            version,
            backing_file_offset,
            backing_file_size,
            cluster_bits,
            size,
            crypt_method,
            l1_size,
            l1_table_offset,
            refcount_table_offset,
            refcount_table_clusters,
            nb_snapshots,
            snapshots_offset,
        ) = _HEADER_STRUCT.unpack_from(blob, 0)
        if magic != QCOW_MAGIC:
            raise InvalidImageError(f"bad magic 0x{magic:08x}")
        if version != QCOW_VERSION:
            raise UnsupportedFeatureError(
                f"unsupported QCOW version {version} (only v2 is supported)")
        if not MIN_CLUSTER_BITS <= cluster_bits <= MAX_CLUSTER_BITS:
            raise InvalidImageError(f"invalid cluster_bits {cluster_bits}")
        if size > MAX_VIRTUAL_SIZE:
            raise InvalidImageError(f"implausible virtual size {size}")
        if crypt_method != 0:
            raise UnsupportedFeatureError("encrypted images are unsupported")
        if nb_snapshots != 0:
            raise UnsupportedFeatureError(
                "internal snapshots are unsupported")

        header = cls(
            size=size,
            cluster_bits=cluster_bits,
            l1_size=l1_size,
            l1_table_offset=l1_table_offset,
            refcount_table_offset=refcount_table_offset,
            refcount_table_clusters=refcount_table_clusters,
            crypt_method=crypt_method,
            nb_snapshots=nb_snapshots,
            snapshots_offset=snapshots_offset,
        )
        end_of_exts = header._decode_extensions(blob, HEADER_SIZE_V2)

        if backing_file_offset:
            if backing_file_offset < end_of_exts:
                raise InvalidImageError(
                    "backing file name overlaps header extensions")
            end = backing_file_offset + backing_file_size
            if end > len(blob):
                raise InvalidImageError("backing file name out of bounds")
            header.backing_file = blob[
                backing_file_offset:end].decode("utf-8")
        return header

    def _decode_extensions(self, blob: bytes, pos: int) -> int:
        """Parse extensions starting at ``pos``; return end offset."""
        while True:
            if pos + _EXT_HEADER.size > len(blob):
                # No explicit end marker before the backing name: legal for
                # images written by older tools; treat as "no extensions".
                return pos
            ext_type, length = _EXT_HEADER.unpack_from(blob, pos)
            pos += _EXT_HEADER.size
            if ext_type == HEXT_END:
                return pos
            if pos + length > len(blob):
                raise InvalidImageError("header extension out of bounds")
            data = blob[pos: pos + length]
            pos = align_up(pos + length, 8)
            if ext_type == HEXT_BACKING_FORMAT:
                self.backing_format = data.decode("utf-8")
            elif ext_type == HEXT_VMI_CACHE:
                self.cache_ext = CacheExtension.decode(data)
            elif ext_type == HEXT_FEATURES:
                if len(data) != FEATURES_EXT_SIZE:
                    raise InvalidImageError(
                        f"features extension has {len(data)} bytes, "
                        f"expected {FEATURES_EXT_SIZE}")
                (self.incompatible_features,) = _FEATURES_EXT.unpack(data)
                unknown = self.incompatible_features \
                    & ~KNOWN_INCOMPATIBLE_FEATURES
                if unknown:
                    raise UnsupportedFeatureError(
                        f"unknown incompatible feature bits 0x{unknown:x}")
            else:
                # Unknown extensions are preserved verbatim so that
                # rewriting the header round-trips foreign images.
                self.unknown_extensions.append(
                    HeaderExtension(ext_type, data))


def _encode_one_ext(ext_type: int, data: bytes) -> bytes:
    padded_len = align_up(len(data), 8)
    return (
        _EXT_HEADER.pack(ext_type, len(data))
        + data
        + b"\0" * (padded_len - len(data))
    )
