"""Physical file layout: cluster allocation and refcount maintenance.

The allocator hands out clusters at the (cluster-aligned) end of the file
— QCOW2 images only ever grow, since nothing in the paper's workload
frees clusters — and keeps the per-cluster refcounts in memory, writing
refcount blocks back on flush.  Flushing may itself allocate clusters
(for new refcount blocks, or to grow the refcount table), which changes
refcounts again; ``flush_refcounts`` iterates to a fixpoint, which the
monotonically-growing layout reaches in at most a few rounds.

Crash consistency is explicitly out of scope (as it is for the paper's
prototype): refcounts on disk are consistent after ``flush``/``close``,
not after every operation.
"""

from __future__ import annotations

from typing import BinaryIO

from repro.errors import CorruptImageError
from repro.imagefmt.refcount import (
    RefcountGeometry,
    read_refcount_block,
    read_refcount_table,
    write_refcount_block,
    write_refcount_table,
)
from repro.units import align_up


class ClusterAllocator:
    """Owns the physical size of the image file and all refcounts."""

    def __init__(
        self,
        f: BinaryIO,
        cluster_bits: int,
        physical_size: int,
        refcount_table_offset: int,
        refcount_table_clusters: int,
    ) -> None:
        self._f = f
        self.geometry = RefcountGeometry(cluster_bits)
        self.cluster_size = 1 << cluster_bits
        if physical_size % self.cluster_size:
            physical_size = align_up(physical_size, self.cluster_size)
        self.physical_size = physical_size
        self.refcount_table_offset = refcount_table_offset
        self.refcount_table_clusters = refcount_table_clusters
        # In-memory refcounts: cluster index -> count.  Missing means 0.
        self._refcounts: dict[int, int] = {}
        self._loaded = False
        self._dirty = False

    # -- loading ----------------------------------------------------------

    def load(self) -> None:
        """Read all on-disk refcounts into memory (done once, lazily)."""
        if self._loaded:
            return
        table = read_refcount_table(
            self._f,
            self.refcount_table_offset,
            self.refcount_table_clusters,
            self.cluster_size,
        )
        for table_idx, block_offset in enumerate(table):
            if block_offset == 0:
                continue
            counts = read_refcount_block(
                self._f, block_offset, self.cluster_size)
            base = table_idx * self.geometry.block_entries
            for i, c in enumerate(counts):
                if c:
                    self._refcounts[base + i] = c
        self._loaded = True

    # -- queries ----------------------------------------------------------

    def refcount(self, cluster_index: int) -> int:
        self.load()
        return self._refcounts.get(cluster_index, 0)

    def allocated_clusters(self) -> int:
        """Number of clusters with refcount > 0."""
        self.load()
        return sum(1 for c in self._refcounts.values() if c > 0)

    @property
    def pending(self) -> bool:
        """True when in-memory refcounts have not been flushed to disk."""
        return self._dirty

    @property
    def physical_clusters(self) -> int:
        return self.physical_size // self.cluster_size

    # -- allocation -------------------------------------------------------

    def alloc(self, n_clusters: int = 1) -> int:
        """Allocate ``n_clusters`` contiguous clusters at end of file.

        Returns the byte offset of the first one.  The file is extended
        sparsely (via truncate); the caller writes the contents.
        """
        if n_clusters <= 0:
            raise ValueError("must allocate at least one cluster")
        self.load()
        offset = self.physical_size
        first = offset // self.cluster_size
        # The file itself is extended lazily: data clusters are written
        # right after allocation, and flush_refcounts() truncates the
        # file up to physical_size for anything still pending (avoids a
        # truncate syscall per 512-byte cache cluster).
        self.physical_size += n_clusters * self.cluster_size
        for i in range(first, first + n_clusters):
            self._refcounts[i] = self._refcounts.get(i, 0) + 1
        self._dirty = True
        return offset

    def mark_allocated(self, offset: int, n_clusters: int) -> None:
        """Record refcounts for clusters placed by hand (image creation)."""
        self.load()
        first = offset // self.cluster_size
        for i in range(first, first + n_clusters):
            self._refcounts[i] = self._refcounts.get(i, 0) + 1
        self.physical_size = max(
            self.physical_size,
            offset + n_clusters * self.cluster_size,
        )
        self._dirty = True

    # -- recovery / repair ------------------------------------------------

    def set_refcount(self, cluster_index: int, count: int) -> None:
        """Overwrite one cluster's refcount (``check --repair``)."""
        self.load()
        if count <= 0:
            self._refcounts.pop(cluster_index, None)
        else:
            self._refcounts[cluster_index] = count
        self._dirty = True

    def replace_refcounts(self, counts: dict[int, int]) -> None:
        """Replace the whole in-memory refcount map (crash recovery:
        counts rebuilt from the L1/L2 walk are authoritative, whatever
        the possibly-torn on-disk refcount structure says)."""
        self._refcounts = {ci: c for ci, c in counts.items() if c > 0}
        self._loaded = True
        self._dirty = True

    def truncate_to_clusters(self, n_clusters: int) -> None:
        """Shrink the image file to ``n_clusters``, dropping refcounts
        beyond it (reclaims the allocated-but-unreferenced tail a crash
        or a repaired leak leaves behind)."""
        self.load()
        new_size = n_clusters * self.cluster_size
        if new_size >= self.physical_size:
            return
        self._refcounts = {
            ci: c for ci, c in self._refcounts.items() if ci < n_clusters}
        self.physical_size = new_size
        self._f.truncate(new_size)
        self._dirty = True

    # -- flushing ---------------------------------------------------------

    def flush_refcounts(self) -> bool:
        """Write refcount blocks/table back to disk.

        Returns True when the refcount table moved or grew, in which case
        the caller must rewrite the header fields.  Iterates because
        writing refcounts can allocate refcount blocks (whose own
        refcounts must then be persisted too).
        """
        if not self._dirty:
            return False
        self.load()
        self._f.truncate(self.physical_size)
        geo = self.geometry
        header_changed = False

        # Grow the refcount table first if the file has outgrown it.
        while geo.clusters_covered(self.refcount_table_clusters) \
                < self.physical_clusters + 1:
            self._grow_table()
            header_changed = True

        table = read_refcount_table(
            self._f,
            self.refcount_table_offset,
            self.refcount_table_clusters,
            self.cluster_size,
        )

        for _round in range(64):
            # Allocate refblocks for any covered-but-unbacked counts.
            needed = {
                geo.table_index(ci)
                for ci, c in self._refcounts.items() if c > 0
            }
            missing = sorted(
                ti for ti in needed
                if ti >= len(table) or table[ti] == 0
            )
            if not missing:
                break
            for ti in missing:
                block_off = self.alloc(1)  # changes refcounts again
                while len(table) <= ti:
                    table.append(0)
                table[ti] = block_off
            # May now need a bigger table for the clusters just allocated.
            while geo.clusters_covered(self.refcount_table_clusters) \
                    < self.physical_clusters:
                self._grow_table()
                header_changed = True
        else:
            raise CorruptImageError(
                "refcount flush did not converge (image corrupt?)")

        # Write every refblock (simple and safe; images are small).
        for ti, block_off in enumerate(table):
            if block_off == 0:
                continue
            base = ti * geo.block_entries
            counts = [
                self._refcounts.get(base + i, 0)
                for i in range(geo.block_entries)
            ]
            write_refcount_block(
                self._f, block_off, counts, self.cluster_size)
        write_refcount_table(
            self._f,
            self.refcount_table_offset,
            table,
            self.refcount_table_clusters,
            self.cluster_size,
        )
        self._dirty = False
        return header_changed

    def _grow_table(self) -> None:
        """Relocate the refcount table to a bigger area at end of file."""
        new_clusters = max(1, self.refcount_table_clusters * 2)
        new_offset = self.alloc(new_clusters)
        old = read_refcount_table(
            self._f,
            self.refcount_table_offset,
            self.refcount_table_clusters,
            self.cluster_size,
        )
        write_refcount_table(
            self._f, new_offset, old, new_clusters, self.cluster_size)
        # The old table's clusters stay allocated (leaked); QEMU reclaims
        # them, we accept the few wasted clusters for simplicity — `check`
        # accounts for them via the leaked-cluster report.
        self.refcount_table_offset = new_offset
        self.refcount_table_clusters = new_clusters
