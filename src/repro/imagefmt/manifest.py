"""Cluster-hash manifests: content addresses for cache images (§8,
DESIGN.md §14).

A manifest names every populated cluster of a cache image by the
SHA-256 of its content.  It is the unit of trust for peer-to-peer
cache fill: a booting node fetches clusters from whichever warm peer
answers fastest, then verifies each cluster against the *authoritative*
manifest (the storage node's, computed from the base image the caches
were warmed from) before storing it.  A peer can therefore be slow,
stale, or actively corrupt without ever poisoning a cache — the worst
it can do is waste one fetch, which falls back to the storage node.

Digests are computed incrementally while the warmer populates the
cache (:class:`ManifestBuilder` — the bytes are already in hand, so
manifesting a warm-up costs one SHA-256 pass and zero extra reads) or
by scanning an existing image (:func:`build_manifest`, which walks
``map_clusters()`` on formats that know their allocation and falls
back to a whole-image walk on raw files).

The manifest also powers cross-image dedup (:class:`ContentIndex`):
clusters shared between *different* base images — the §7.3 "VMIs
created from the same operating system distribution share content"
observation — hash identically, so a node warming CentOS-7.2 can lift
clusters straight out of its local CentOS-7.1 cache instead of touching
the network at all.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.units import is_power_of_two

#: Format tag embedded in every serialized manifest; bump on layout
#: change so old documents are rejected loudly, not misparsed.
MANIFEST_FORMAT = "repro-cluster-manifest/1"

#: Cluster granularity used when the image format does not dictate one
#: (raw caches); matches the qcow2 default cluster size.
DEFAULT_CLUSTER_SIZE = 64 * 1024

#: Suffix for a manifest persisted alongside its cache image.
MANIFEST_SUFFIX = ".manifest.json"


class ManifestError(ValueError):
    """Malformed, mismatched, or undecodable manifest document."""


def manifest_path(cache_path: str) -> str:
    """Where a cache image's manifest lives on disk."""
    return cache_path + MANIFEST_SUFFIX


def cluster_digest(data) -> str:
    """The content address of one cluster's bytes (hex SHA-256)."""
    return hashlib.sha256(bytes(data) if not isinstance(data, bytes)
                          else data).hexdigest()


@dataclass(frozen=True)
class ClusterManifest:
    """Immutable content map of one cache image.

    ``digests`` maps cluster index -> hex SHA-256 of that cluster's
    bytes.  Only *populated* clusters appear; a sparse cache manifests
    exactly what it can serve.  The final cluster of a non-aligned
    image is digested over its partial length — the same bytes any
    verifier will read.
    """

    vmi_id: str
    size: int               # virtual image size in bytes
    cluster_size: int
    digests: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.cluster_size):
            raise ManifestError(
                f"cluster size must be a power of two, "
                f"got {self.cluster_size}")
        if self.size < 0:
            raise ManifestError(f"negative image size {self.size}")

    # -- geometry ---------------------------------------------------------

    @property
    def n_clusters(self) -> int:
        """Clusters the virtual image spans (populated or not)."""
        return -(-self.size // self.cluster_size) if self.size else 0

    def cluster_extent(self, index: int) -> tuple[int, int]:
        """(offset, length) of one cluster, tail-clipped to the image."""
        offset = index * self.cluster_size
        return offset, min(self.cluster_size, self.size - offset)

    def __len__(self) -> int:
        return len(self.digests)

    def __contains__(self, index: int) -> bool:
        return index in self.digests

    @property
    def populated_bytes(self) -> int:
        return sum(self.cluster_extent(i)[1] for i in self.digests)

    # -- verification -----------------------------------------------------

    def verify_cluster(self, index: int, data) -> bool:
        """Does ``data`` match the manifested digest of cluster
        ``index``?  Unknown clusters verify False (absence is not
        trust)."""
        expected = self.digests.get(index)
        return (expected is not None
                and cluster_digest(data) == expected)

    def missing_in(self, other: "ClusterManifest") -> list[int]:
        """Clusters this manifest has that ``other`` lacks *or holds
        with different content* — what a fill from ``other``'s image
        could not satisfy."""
        return sorted(i for i, d in self.digests.items()
                      if other.digests.get(i) != d)

    def common_with(self, other: "ClusterManifest") -> list[int]:
        """Clusters identical in both manifests (same index, same
        content)."""
        return sorted(i for i, d in self.digests.items()
                      if other.digests.get(i) == d)

    # -- serialization ----------------------------------------------------

    def to_bytes(self) -> bytes:
        doc = {
            "format": MANIFEST_FORMAT,
            "vmi_id": self.vmi_id,
            "size": self.size,
            "cluster_size": self.cluster_size,
            "digests": {str(i): d
                        for i, d in sorted(self.digests.items())},
        }
        return json.dumps(doc, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_bytes(cls, blob) -> "ClusterManifest":
        try:
            doc = json.loads(bytes(blob).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ManifestError(f"undecodable manifest: {exc}") from exc
        if not isinstance(doc, dict) \
                or doc.get("format") != MANIFEST_FORMAT:
            raise ManifestError(
                f"not a {MANIFEST_FORMAT} document")
        try:
            digests = {int(i): str(d)
                       for i, d in doc["digests"].items()}
            manifest = cls(vmi_id=str(doc["vmi_id"]),
                           size=int(doc["size"]),
                           cluster_size=int(doc["cluster_size"]),
                           digests=digests)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ManifestError(f"malformed manifest: {exc}") from exc
        for i in digests:
            if not 0 <= i < manifest.n_clusters:
                raise ManifestError(
                    f"cluster index {i} outside a "
                    f"{manifest.n_clusters}-cluster image")
        return manifest

    @property
    def content_id(self) -> str:
        """Hex SHA-256 of the canonical serialization — one identity
        for the whole manifest (two nodes holding identical cache
        content agree on it byte-for-byte)."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    def save(self, path: str | None = None, *,
             cache_path: str | None = None) -> str:
        """Persist next to the cache image (or at an explicit path)."""
        if (path is None) == (cache_path is None):
            raise ValueError("pass exactly one of path= or cache_path=")
        if path is None:
            path = manifest_path(cache_path)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(self.to_bytes())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str) -> "ClusterManifest":
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())


class ManifestBuilder:
    """Accumulates cluster digests while a cache is being populated.

    The warmer (and any other populator holding cluster-aligned bytes)
    feeds every extent it writes through :meth:`add_extent`; the
    digests ride along for free — no second read pass over the cache.
    Re-adding a cluster simply replaces its digest (last write wins,
    matching the image).
    """

    def __init__(self, vmi_id: str, size: int,
                 cluster_size: int = DEFAULT_CLUSTER_SIZE) -> None:
        if not is_power_of_two(cluster_size):
            raise ManifestError(
                f"cluster size must be a power of two, "
                f"got {cluster_size}")
        self.vmi_id = vmi_id
        self.size = size
        self.cluster_size = cluster_size
        self._digests: dict[int, str] = {}

    def add_extent(self, offset: int, data) -> int:
        """Digest one written extent; returns clusters manifested.

        ``offset`` must be cluster-aligned and the data must cover
        whole clusters (the tail of the image may be partial) — the
        warmer's working-set extents are aligned exactly so.
        """
        if offset % self.cluster_size:
            raise ManifestError(
                f"extent offset {offset} not cluster-aligned")
        view = memoryview(data) if not isinstance(data, memoryview) \
            else data
        end = offset + len(view)
        if end > self.size:
            raise ManifestError(
                f"extent [{offset}, {end}) beyond image size "
                f"{self.size}")
        if end % self.cluster_size and end != self.size:
            raise ManifestError(
                f"extent end {end} neither cluster-aligned nor the "
                f"image tail")
        added = 0
        pos = 0
        while pos < len(view):
            n = min(self.cluster_size, len(view) - pos)
            index = (offset + pos) // self.cluster_size
            self._digests[index] = cluster_digest(view[pos:pos + n])
            added += 1
            pos += n
        return added

    def __len__(self) -> int:
        return len(self._digests)

    def build(self) -> ClusterManifest:
        return ClusterManifest(
            vmi_id=self.vmi_id, size=self.size,
            cluster_size=self.cluster_size,
            digests=dict(self._digests))


def build_manifest(image, *, vmi_id: str,
                   cluster_size: int | None = None) -> ClusterManifest:
    """Scan an existing image into a manifest.

    Formats that know their allocation (``map_clusters()`` — qcow2
    caches) manifest exactly their *allocated* clusters: what this
    image can serve without reading through its backing chain.  Plain
    files (raw bases on the storage node) manifest every cluster.
    ``cluster_size`` defaults to the image's own, falling back to
    :data:`DEFAULT_CLUSTER_SIZE`.
    """
    if cluster_size is None:
        cluster_size = getattr(image, "cluster_size",
                               DEFAULT_CLUSTER_SIZE)
    builder = ManifestBuilder(vmi_id, image.size, cluster_size)
    map_clusters = getattr(image, "map_clusters", None)
    if map_clusters is not None:
        extents = [(off, ln) for off, ln, allocated in map_clusters()
                   if allocated]
    else:
        extents = [(0, image.size)] if image.size else []
    for offset, length in extents:
        pos = offset
        end = offset + length
        while pos < end:
            n = min(cluster_size - pos % cluster_size, end - pos)
            start = pos - pos % cluster_size
            # Always digest the full covering cluster so scan-built
            # and build-time manifests agree on unaligned extents.
            span = min(cluster_size, image.size - start)
            builder.add_extent(start, image.read(start, span))
            pos = start + span
    return builder.build()


class ContentIndex:
    """Content-addressed lookup over the manifests of *local* caches.

    The cross-image dedup half of peer fill: before going to any
    network source, the filler asks the index whether a needed
    cluster's digest already exists in some cache this node holds —
    for *any* VMI — and copies it locally on a hit.  Readers are
    registered per manifest so the index can hand back the bytes, not
    just the location.
    """

    def __init__(self) -> None:
        #: digest -> list of (manifest, reader, cluster index)
        self._by_digest: dict[str, list] = {}
        self.hits = 0
        self.misses = 0

    def add_manifest(self, manifest: ClusterManifest, reader) -> None:
        """Index one local cache.  ``reader(offset, length) -> bytes``
        reads that cache's populated clusters."""
        for index, digest in manifest.digests.items():
            self._by_digest.setdefault(digest, []).append(
                (manifest, reader, index))

    def __len__(self) -> int:
        return len(self._by_digest)

    def fetch(self, digest: str) -> bytes | None:
        """Bytes of a cluster with this content, from any indexed
        cache; None when no local cache holds it.  The returned bytes
        are re-verified against the digest (the indexed cache may have
        changed since indexing) — a mismatch just misses."""
        for manifest, reader, index in self._by_digest.get(digest, ()):
            offset, length = manifest.cluster_extent(index)
            try:
                data = reader(offset, length)
            except Exception:
                continue
            if cluster_digest(data) == digest:
                self.hits += 1
                return data
        self.misses += 1
        return None
