"""The QCOW2-style driver with the VMI-cache extension.

This is the reproduction of the paper's core artifact: QEMU's QCOW2 block
driver plus the ~150-line cache extension of Section 4.3.  The five
driver entry points behave as the paper specifies:

``create``
    A non-zero ``cache_quota`` marks the new image as a cache; the quota
    and the current size (initially the header plus initial tables) are
    stored in a header *extension* for backward compatibility.

``open``
    Detects the cache extension and, when present, treats the image as a
    cache.  Backing images need write permission only when they are
    caches (the permission-flag dance of §4.3): we peek at the backing
    header first and open read-write only if it is a cache image.

``read``
    Warm hit → serve from the cache file.  Cold miss → recurse to the
    backing image; with copy-on-read enabled, fetch the *full cluster*,
    store it into the cache, and return the requested slice.  A quota
    space error disables CoR for all future cold reads of this open.

``write``
    On a cache image, every allocating write checks the quota first and
    raises :class:`~repro.errors.QuotaExceededError` (the space error)
    when it does not fit.  Partial writes to unallocated clusters fill
    the rest of the cluster from the backing chain (standard CoW
    behaviour) — on a 64 KiB-cluster cache this is the read amplification
    that Figure 9 measures, and the reason the paper drops the cache
    cluster size to 512 bytes.

``close``
    Writes the (new) current size of the cache back into the header
    extension, flushes dirty L2 tables, the L1 table and refcounts.

Crash consistency (DESIGN.md §9): writable images default to
``sync="barrier"``, which (a) durably sets a *dirty* incompatible-feature
bit in the header before the first mutation touches disk, (b) orders
every flush as data clusters → refcounts/L2 tables → L1 table → header
with an fsync barrier between stages, and (c) clears the dirty bit only
after a completed flush.  ``open()`` of a dirty image triggers automatic
recovery (:mod:`repro.imagefmt.recovery`): invalid L1/L2 entries are
dropped, refcounts are rebuilt from the metadata walk, the
allocated-but-unreferenced tail is truncated, and the cache's current
size is recomputed.  ``sync="none"`` (or ``REPRO_IMG_SYNC=none``)
restores the paper-prototype behaviour for benchmarks.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field

from repro.errors import (
    BackingChainError,
    CorruptImageError,
    InvalidImageError,
    QuotaExceededError,
    ReadOnlyImageError,
    UnsupportedFeatureError,
)
from repro.imagefmt import constants as C
from repro.imagefmt.cache_policy import CacheRuntime, QuotaPolicy
from repro.imagefmt.driver import BlockDriver, open_image, register_format
from repro.imagefmt.fileio import PositionalFile, fsync_directory
from repro.imagefmt.header import CacheExtension, QCowHeader
from repro.imagefmt.layout import ClusterAllocator
from repro.imagefmt.tables import (
    AddressSplit,
    cluster_size_to_bits,
    iter_cluster_chunks,
)
from repro.metrics.registry import get_registry
from repro.metrics.tracing import TRACER
from repro.units import align_up, div_round_up


def _resolve_sync_mode(sync: str | None) -> str:
    """Validate a ``sync=`` argument, defaulting from the environment.

    ``None`` resolves to ``$REPRO_IMG_SYNC`` or ``barrier`` — writable
    images are crash-consistent unless a benchmark explicitly opts out.
    """
    if sync is None:
        sync = os.environ.get("REPRO_IMG_SYNC", C.SYNC_BARRIER)
    if sync not in C.SYNC_MODES:
        raise ValueError(
            f"unknown sync mode {sync!r}; expected one of {C.SYNC_MODES}")
    return sync


@dataclass
class CheckReport:
    """Result of an integrity check (``repro-img check``).

    ``errors`` lists every problem *found*; with ``repair=True`` the
    fixes applied are listed in ``repairs`` (re-run ``check()`` to
    confirm the image is clean afterwards — a found-and-fixed problem
    stays in ``errors`` so reports are honest about what was wrong).
    """

    errors: list[str] = field(default_factory=list)
    leaked_clusters: int = 0
    allocated_clusters: int = 0
    repairs: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


class Qcow2Image(BlockDriver):
    """One open QCOW2-style image, possibly with a backing chain."""

    format_name = C.FORMAT_QCOW2

    def __init__(
        self,
        path: str,
        f,
        header: QCowHeader,
        allocator: ClusterAllocator,
        l1_table: list[int],
        backing: BlockDriver | None,
        read_only: bool,
        sync: str = C.SYNC_BARRIER,
    ) -> None:
        super().__init__(path, header.size, read_only)
        self._f = f
        self.header = header
        self._alloc = allocator
        self._split = AddressSplit(header.cluster_bits)
        self._l1 = l1_table
        self._l1_dirty = False
        self._l2_cache: dict[int, list[int]] = {}
        self._l2_dirty: set[int] = set()
        self._backing = backing
        quota = header.cache_ext.quota if header.cache_ext else 0
        self.cache_runtime = CacheRuntime(QuotaPolicy(quota))
        self.sync_mode = sync
        # True while the on-disk header carries the dirty bit; mirrors
        # (and is initialized from) the header so a clean flush knows it
        # must rewrite the header to clear it.
        self._dirty_on_disk = header.is_dirty
        self._data_dirty = False  # data clusters written since last flush
        # Filled by recovery when open() found the dirty bit set.
        self.last_recovery = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        size: int | None = None,
        *,
        backing_file: str | None = None,
        backing_format: str | None = None,
        cluster_size: int = C.DEFAULT_CLUSTER_SIZE,
        cache_quota: int = 0,
        open_backing: bool = True,
        sync: str | None = None,
    ) -> "Qcow2Image":
        """Create a new image and return it opened read-write.

        When ``size`` is None the virtual size is inherited from the
        backing file (the common case for both CoW overlays and caches —
        §4.3 notes the size field "has to be the same as the base
        image's").  ``cache_quota > 0`` makes the image a cache.

        The image is built in a temp file and renamed into place only
        once fully written, so a failed create (e.g. the backing open
        raising) never leaves a half-written image at ``path`` — and
        never destroys a pre-existing image there either.
        """
        sync = _resolve_sync_mode(sync)
        cluster_bits = cluster_size_to_bits(cluster_size)
        tmp_path = f"{path}.creating-{os.getpid()}"
        # When the size must be inherited, the backing image opened to
        # read it is kept and reused below — opening twice would mean
        # two TCP connections for an nbd:// backing path.
        backing: BlockDriver | None = None
        f: PositionalFile | None = None
        try:
            if size is None:
                if backing_file is None:
                    raise ValueError(
                        "size is required when there is no backing file")
                backing = cls._open_backing(backing_file, backing_format)
                size = backing.size
            if size < 0:
                raise ValueError("size must be non-negative")
            if cache_quota and backing_file is None:
                raise ValueError("a cache image requires a backing file")

            split = AddressSplit(cluster_bits)
            l1_entries = max(1, split.required_l1_entries(size))
            l1_bytes = l1_entries * 8
            l1_clusters = div_round_up(l1_bytes, cluster_size)

            header = QCowHeader(
                size=size,
                cluster_bits=cluster_bits,
                backing_file=backing_file,
                backing_format=backing_format,
                l1_size=l1_entries,
            )
            if cache_quota:
                header.cache_ext = CacheExtension(
                    quota=cache_quota, current_size=0)

            header_clusters = div_round_up(
                header.encoded_size(), cluster_size)
            # Size the initial refcount table to cover the quota (for
            # caches) or a modest initial footprint; the allocator grows
            # it on demand.
            from repro.imagefmt.refcount import RefcountGeometry

            geo = RefcountGeometry(cluster_bits)
            expect_clusters = div_round_up(
                max(cache_quota, 16 * cluster_size), cluster_size)
            rt_clusters = geo.table_clusters_for(expect_clusters * 2)

            # Fixed layout: [header][refcount table][L1 table].
            rt_offset = header_clusters * cluster_size
            l1_offset = rt_offset + rt_clusters * cluster_size
            initial_size = l1_offset + l1_clusters * cluster_size

            header.refcount_table_offset = rt_offset
            header.refcount_table_clusters = rt_clusters
            header.l1_table_offset = l1_offset

            f = PositionalFile.create(tmp_path)
            f.truncate(initial_size)  # sparse zeros for tables
            f.pwrite(header.encode(), 0)

            allocator = ClusterAllocator(
                f, cluster_bits, initial_size, rt_offset, rt_clusters)
            allocator._loaded = True  # brand-new file: nothing on disk
            allocator.mark_allocated(0, header_clusters)
            allocator.mark_allocated(rt_offset, rt_clusters)
            allocator.mark_allocated(l1_offset, l1_clusters)

            if backing_file is not None and open_backing:
                if backing is None:
                    backing = cls._open_backing(
                        backing_file, backing_format)
                if backing.size < size:
                    pass  # legal: reads beyond the backing return zeros
            elif backing is not None:
                # Only peeked at for the size; the caller asked for no
                # open backing on the returned image.
                backing.close()
                backing = None
            img = cls(
                path, f, header, allocator,
                l1_table=[0] * l1_entries,
                backing=backing,
                read_only=False,
                sync=sync,
            )
            img.flush()
            os.replace(tmp_path, path)
            f.path = path
            if img._barriers:
                fsync_directory(path)
            return img
        except BaseException:
            if backing is not None:
                backing.close()
            if f is not None:
                f.close()
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            raise

    @classmethod
    def open(
        cls,
        path: str,
        *,
        read_only: bool = True,
        open_backing: bool = True,
        sync: str | None = None,
    ) -> "Qcow2Image":
        sync = _resolve_sync_mode(sync)
        header = cls.peek_header(path)
        if header.is_cache and read_only:
            # A cache needs write permission to keep warming itself; the
            # caller may still force read-only (e.g. for `info`), in
            # which case CoR is simply disabled below.
            pass
        f = PositionalFile.open(path, read_only=read_only)
        physical_size = f.size()

        l1_bytes = header.l1_size * 8
        raw_l1 = f.pread(l1_bytes, header.l1_table_offset)
        if len(raw_l1) != l1_bytes:
            f.close()
            raise CorruptImageError(f"{path}: L1 table truncated")
        l1 = list(struct.unpack(f">{header.l1_size}Q", raw_l1)) \
            if header.l1_size else []

        allocator = ClusterAllocator(
            f,
            header.cluster_bits,
            physical_size,
            header.refcount_table_offset,
            header.refcount_table_clusters,
        )
        backing = None
        try:
            if header.backing_file is not None and open_backing:
                backing_path = cls._resolve_backing_path(
                    path, header.backing_file)
                backing = cls._open_backing(
                    backing_path, header.backing_format)
            img = cls(path, f, header, allocator, l1, backing,
                      read_only, sync=sync)
        except BaseException:
            if backing is not None:
                backing.close()
            f.close()
            raise
        if read_only:
            img.cache_runtime.cor.disable("image opened read-only")
        if header.is_dirty:
            # The image was not cleanly closed: rebuild refcounts and
            # the cache size from the (authoritative) L1/L2 metadata.
            # A read-only open recovers in memory only, leaving the
            # dirty bit on disk for the next writable open to clear.
            from repro.imagefmt.recovery import recover_image

            img.last_recovery = recover_image(
                img, persist=not read_only)
        return img

    @staticmethod
    def peek_header(path: str) -> QCowHeader:
        """Read and decode the header without fully opening the image."""
        with open(path, "rb") as f:
            blob = f.read(256 * 1024)
        return QCowHeader.decode(blob)

    @classmethod
    def _open_backing(
        cls, backing_path: str, backing_format: str | None
    ) -> BlockDriver:
        """Open a backing image with the §4.3 permission semantics.

        The default for backing images is read-only, but a cache image
        used as backing needs write permission (its CoR writes happen
        while it serves reads).  The paper opens read-write and re-opens
        read-only after finding no cache extension; we peek at the header
        first, which has the same net effect without the extra open.

        ``nbd://host:port/export`` backing paths connect to a block
        server (the remote substrate) instead of opening a local file.
        """
        if backing_path.startswith("nbd://"):
            from repro.remote.client import RemoteImage

            return RemoteImage.connect(backing_path)
        if not os.path.exists(backing_path):
            raise BackingChainError(
                f"backing file does not exist: {backing_path}")
        fmt = backing_format
        if fmt in (None, C.FORMAT_QCOW2):
            try:
                header = cls.peek_header(backing_path)
            except InvalidImageError:
                if fmt == C.FORMAT_QCOW2:
                    raise
                header = None
            if header is not None:
                return cls.open(
                    backing_path, read_only=not header.is_cache)
        return open_image(backing_path, fmt, read_only=True)

    @staticmethod
    def _resolve_backing_path(image_path: str, backing_file: str) -> str:
        if backing_file.startswith("nbd://") \
                or os.path.isabs(backing_file):
            return backing_file
        return os.path.join(os.path.dirname(image_path) or ".",
                            backing_file)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def backing(self) -> BlockDriver | None:
        return self._backing

    @property
    def is_cache(self) -> bool:
        return self.header.is_cache

    @property
    def cluster_size(self) -> int:
        return self._split.cluster_size

    @property
    def cache_quota(self) -> int:
        return self.header.cache_ext.quota if self.header.cache_ext else 0

    @property
    def physical_size(self) -> int:
        """Current size of the image file (the §4.3 'current size')."""
        return self._alloc.physical_size

    @property
    def supports_concurrent_reads(self) -> bool:
        # Read-only images never mutate data clusters and CoR is
        # disabled at open; the L2-table cache can only race benignly
        # (two threads parse identical on-disk bytes).  Anything
        # writable — including every CoR cache — needs exclusive
        # access.  The whole backing chain must agree: a read-only
        # overlay still forwards cold reads to its backing, which may
        # be a RemoteImage (one socket, strictly alternating frames)
        # or a cache opened read-write whose read path does CoR.
        # See the locking contract in repro.imagefmt.driver.
        return self.read_only and (
            self._backing is None
            or self._backing.supports_concurrent_reads)

    @property
    def _barriers(self) -> bool:
        """True when flushes must be ordered with fsync barriers."""
        return self.sync_mode == C.SYNC_BARRIER and not self.read_only

    @property
    def cor_enabled(self) -> bool:
        # Note cache_runtime (quota > 0), not the bare header extension:
        # "if the quota passed ... is not zero, it is assumed that the
        # new image will be used as a cache" (§4.3) — an extension with
        # a zero quota demotes the image to plain QCOW2 behaviour.
        return self.cache_runtime.is_cache \
            and self.cache_runtime.cor.enabled \
            and not self.read_only

    # ------------------------------------------------------------------
    # L1/L2 metadata
    # ------------------------------------------------------------------

    def _load_l2(self, l1_index: int) -> list[int] | None:
        """Return the L2 table for an L1 slot, or None if unallocated."""
        if l1_index >= len(self._l1):
            raise CorruptImageError(
                f"{self.path}: L1 index {l1_index} out of range")
        cached = self._l2_cache.get(l1_index)
        if cached is not None:
            return cached
        entry = self._l1[l1_index]
        offset = entry & C.L1E_OFFSET_MASK
        if offset == 0:
            return None
        if offset + self.cluster_size > self._alloc.physical_size:
            raise CorruptImageError(
                f"{self.path}: L2 table at {offset} beyond end of file")
        raw = self._f.pread(self.cluster_size, offset)
        if len(raw) != self.cluster_size:
            raise CorruptImageError(
                f"{self.path}: L2 table at {offset} truncated "
                f"({len(raw)} of {self.cluster_size} bytes)")
        table = list(struct.unpack(f">{self._split.l2_entries}Q", raw))
        self._l2_cache[l1_index] = table
        return table

    def _ensure_l2(self, l1_index: int) -> list[int]:
        """Get the L2 table for an L1 slot, allocating it if missing."""
        table = self._load_l2(l1_index)
        if table is not None:
            return table
        offset = self._alloc.alloc(1)
        table = [0] * self._split.l2_entries
        self._l1[l1_index] = offset | C.OFLAG_COPIED
        self._l1_dirty = True
        self._l2_cache[l1_index] = table
        self._l2_dirty.add(l1_index)
        return table

    def _lookup(self, vba: int) -> int:
        """Physical offset of the cluster containing ``vba`` (0 = none)."""
        table = self._load_l2(self._split.l1_index(vba))
        if table is None:
            return 0
        entry = table[self._split.l2_index(vba)]
        if entry & C.OFLAG_COMPRESSED:
            raise UnsupportedFeatureError(
                f"{self.path}: compressed clusters are unsupported")
        return entry & C.L2E_OFFSET_MASK

    def is_allocated(self, vba: int) -> bool:
        """True when the virtual cluster containing ``vba`` has data here
        (not counting the backing chain)."""
        return self._lookup(vba) != 0

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def _read_impl(self, offset: int, length: int) -> bytes:
        # Group the per-cluster chunks into maximal warm/cold runs so
        # that a read crossing many cold clusters turns into one backing
        # fetch and one populating write, not one per cluster.  The
        # physical offset resolved here rides along in the run tuples,
        # so serving a warm run never re-walks the L1/L2 tables.
        out = bytearray(length)
        pos = 0
        run: list[tuple[int, int, int, int]] = []
        run_cold: bool | None = None
        for index, in_cluster, chunk in iter_cluster_chunks(
                offset, length, self.cluster_size):
            vba = index * self.cluster_size
            phys = self._lookup(vba)
            cold = phys == 0
            if run and cold != run_cold:
                pos = self._serve_run(run, run_cold, out, pos)
                run = []
            run.append((vba, in_cluster, chunk, phys))
            run_cold = cold
        if run:
            self._serve_run(run, run_cold, out, pos)
        return bytes(out)

    def _serve_run(self, run: list[tuple[int, int, int, int]],
                   cold: bool, out: bytearray, pos: int) -> int:
        if cold:
            data = self._read_cold_run(run)
        else:
            # Adjacent virtual clusters often sit in adjacent physical
            # clusters (sequential allocation); coalesce each maximal
            # physically-contiguous extent into a single pread.
            parts = []
            ext_off = -1
            ext_len = 0
            for _vba, in_cluster, chunk, phys in run:
                at = phys + in_cluster
                if ext_len and at == ext_off + ext_len:
                    ext_len += chunk
                    continue
                if ext_len:
                    parts.append(self._pread_exact(ext_len, ext_off))
                ext_off, ext_len = at, chunk
            if ext_len:
                parts.append(self._pread_exact(ext_len, ext_off))
            data = b"".join(parts)
        total = sum(chunk for _, _, chunk, _ in run)
        if self.is_cache:
            if cold:
                self.stats.cache_miss_bytes += total
            else:
                self.stats.cache_hit_bytes += total
        out[pos: pos + total] = data
        return pos + total

    def _pread_exact(self, length: int, offset: int) -> bytes:
        piece = self._f.pread(length, offset)
        if len(piece) != length:
            raise CorruptImageError(
                f"{self.path}: short read of allocated cluster")
        return piece

    def _read_cold_run(self,
                       run: list[tuple[int, int, int, int]]) -> bytes:
        """Serve a read of consecutive unallocated clusters (§4.3 cold
        path): recurse to the backing image, and — with copy-on-read
        enabled — store the fetched clusters before returning."""
        first_vba, first_in, _, _ = run[0]
        last_vba, last_in, last_chunk, _ = run[-1]
        if self._backing is None:
            return b"\0" * sum(chunk for _, _, chunk, _ in run)
        if self.cor_enabled:
            # Fetch the covering clusters in full, populate, slice.
            span = last_vba + self.cluster_size - first_vba
            blob = self._read_from_backing(first_vba, span)
            try:
                self._write_impl(first_vba, blob, _cor=True)
            except QuotaExceededError:
                self._record_quota_stop(len(blob))
            else:
                if TRACER.enabled:
                    TRACER.event("cache.cor_fill", path=self.path,
                                 offset=first_vba, length=len(blob))
            start = first_in
            end = (last_vba - first_vba) + last_in + last_chunk
            return blob[start:end]
        start_off = first_vba + first_in
        end_off = last_vba + last_in + last_chunk
        return self._read_from_backing(start_off, end_off - start_off)

    def _record_quota_stop(self, attempted_bytes: int) -> None:
        """Account the §4.3 "space error → stop caching" transition.

        Counted (``stats.quota_stops``, a registry counter) and traced
        instead of being a silent state flip, so Fig 9-style runs can
        see exactly when — and with how much in flight — CoR stopped.
        """
        self.cache_runtime.cor.record_space_error()
        self.stats.quota_stops += 1
        get_registry().counter(
            "cache_quota_stops_total",
            image=os.path.basename(self.path)).inc()
        if TRACER.enabled:
            TRACER.event(
                "cache.quota_stop", path=self.path,
                attempted_bytes=attempted_bytes,
                quota=self.cache_quota,
                current_size=self.physical_size,
                space_errors=self.cache_runtime.cor.space_errors)

    def _read_from_backing(self, offset: int, length: int) -> bytes:
        """Read from the backing image, zero-padded past its end."""
        assert self._backing is not None
        avail = max(0, min(length, self._backing.size - offset))
        data = self._backing.read(offset, avail) if avail else b""
        self.stats.backing_read_ops += 1
        self.stats.backing_bytes_read += avail
        if avail < length:
            data += b"\0" * (length - avail)
        return data

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def _write_impl(self, offset: int, data: bytes, *,
                    _cor: bool = False) -> None:
        # Quota check happens before any mutation (§4.3: "we check whether
        # there is enough space left ... if not, we return with a space
        # error").  Internal CoR writes (``_cor=True``, issued by
        # ``_read_cold_run``) and external warming writes are charged
        # identically against the quota; the flag only routes the
        # accounting to the cor_* counters so Figure 9-style traffic
        # breakdowns can tell population apart from guest writes.
        # Each target cluster is resolved through L1/L2 exactly once;
        # both the quota estimate and the per-cluster writes below
        # consume that resolution (``iter_cluster_chunks`` yields each
        # cluster at most once per write, so a resolved physical
        # offset cannot go stale within the loop).
        sites = self._resolve_write(offset, len(data))
        if self.is_cache:
            upcoming = self._estimate_new_clusters(sites)
            self.cache_runtime.quota_policy.check(
                self._alloc.physical_size,
                upcoming * self.cluster_size,
                self.header.cluster_bits,
            )
        # The dirty bit must be durable *before* the first mutation hits
        # the file — a quota failure above mutates nothing, so marking
        # here keeps clean-but-full caches clean on disk.
        self._mark_dirty()
        self._data_dirty = True
        pos = 0
        for vba, in_cluster, chunk, phys in sites:
            self._write_cluster(
                vba, in_cluster, data[pos: pos + chunk], phys)
            pos += chunk
        if _cor:
            self.stats.cor_write_ops += 1
            self.stats.cor_bytes_written += len(data)

    def _resolve_write(self, offset: int,
                       length: int) -> list[tuple[int, int, int, int]]:
        """Resolve every cluster a write touches in one L1/L2 walk.

        Returns ``(vba, in_cluster, chunk, phys)`` per cluster, with
        ``phys == 0`` for clusters not yet allocated.  The L2 table is
        fetched once per L1 slot, not once per cluster.
        """
        sites: list[tuple[int, int, int, int]] = []
        table: list[int] | None = None
        cur_l1 = -1
        for index, in_cluster, chunk in iter_cluster_chunks(
                offset, length, self.cluster_size):
            vba = index * self.cluster_size
            l1_index = self._split.l1_index(vba)
            if l1_index != cur_l1:
                table = self._load_l2(l1_index)
                cur_l1 = l1_index
            if table is None:
                phys = 0
            else:
                entry = table[self._split.l2_index(vba)]
                if entry & C.OFLAG_COMPRESSED:
                    raise UnsupportedFeatureError(
                        f"{self.path}: compressed clusters are "
                        f"unsupported")
                phys = entry & C.L2E_OFFSET_MASK
            sites.append((vba, in_cluster, chunk, phys))
        return sites

    def _estimate_new_clusters(
            self, sites: list[tuple[int, int, int, int]]) -> int:
        """Clusters this write would newly allocate (data + L2 tables)."""
        new = 0
        seen_l1: set[int] = set()
        for vba, _in_cluster, _chunk, phys in sites:
            l1_index = self._split.l1_index(vba)
            if l1_index not in seen_l1:
                seen_l1.add(l1_index)
                if (self._l1[l1_index] & C.L1E_OFFSET_MASK) == 0:
                    new += 1
            if phys == 0:
                new += 1
        return new

    def _write_cluster(self, cluster_vba: int, in_cluster: int,
                       data: bytes, phys: int) -> None:
        if phys != 0:
            # Already allocated: no metadata touched at all.
            self._f.pwrite(data, phys + in_cluster)
            return
        l1_index = self._split.l1_index(cluster_vba)
        table = self._ensure_l2(l1_index)
        l2_index = self._split.l2_index(cluster_vba)
        phys = self._alloc.alloc(1)
        full = in_cluster == 0 and len(data) == self.cluster_size
        if not full:
            # Copy-on-write fill: bring in the rest of the cluster
            # from the backing chain (or zeros).  On a 64 KiB-cluster
            # cache this is what amplifies storage-node traffic
            # (Figure 9).
            merged = bytearray(self._backing_cluster(cluster_vba))
            merged[in_cluster: in_cluster + len(data)] = data
            self._f.pwrite(bytes(merged), phys)
            fill = self.cluster_size - len(data)
            self.stats.rmw_fill_ops += 1
            self.stats.rmw_fill_bytes += fill
            if TRACER.enabled:
                TRACER.event("cache.rmw_fill", path=self.path,
                             offset=cluster_vba, fill_bytes=fill)
        else:
            self._f.pwrite(data, phys)
        table[l2_index] = phys | C.OFLAG_COPIED
        self._l2_dirty.add(l1_index)

    def _backing_cluster(self, cluster_vba: int) -> bytes:
        """Full cluster contents as seen through the backing chain."""
        end = min(cluster_vba + self.cluster_size, self.size)
        want = end - cluster_vba
        if self._backing is None or want <= 0:
            return b"\0" * self.cluster_size
        data = self._read_from_backing(cluster_vba, want)
        if len(data) < self.cluster_size:
            data += b"\0" * (self.cluster_size - len(data))
        return data

    # ------------------------------------------------------------------
    # flush / close
    # ------------------------------------------------------------------

    def _sync_file(self, *, data_only: bool = False) -> None:
        """One fsync barrier, skipped entirely in ``sync="none"``."""
        if not self._barriers:
            return
        if data_only:
            self._f.datasync()
        else:
            self._f.fsync()
        self.stats.fsync_ops += 1

    def _mark_dirty(self) -> None:
        """Durably set the dirty bit before the first mutation.

        Idempotent per flush interval: once the bit is on disk nothing
        more is written until a clean flush clears it again.
        """
        if self._dirty_on_disk or self.read_only:
            return
        self.header.incompatible_features |= C.FEATURE_DIRTY
        self._rewrite_header()
        self._sync_file()
        self._dirty_on_disk = True

    def _flush_impl(self) -> None:
        """Ordered metadata flush (DESIGN.md §9).

        Stages, each behind an fsync barrier in ``barrier`` mode:

        1. data clusters written since the last flush;
        2. dirty L2 tables and the refcount blocks/table;
        3. the L1 table;
        4. the header (refcount table location, cache current size,
           dirty bit cleared).

        Each stage only references clusters the previous stages made
        durable, so a crash between any two barriers leaves at worst
        leaked clusters — never a pointer to unwritten data.
        """
        if self.read_only:
            return
        if not (self._l2_dirty or self._l1_dirty or self._alloc.pending
                or self._data_dirty or self._dirty_on_disk):
            return  # nothing written since the last flush

        # Stage 1: data clusters.
        if self._data_dirty:
            self._sync_file(data_only=True)
            self._data_dirty = False

        # Stage 2: L2 tables + refcounts.
        wrote_tables = bool(self._l2_dirty) or self._alloc.pending
        for l1_index in sorted(self._l2_dirty):
            offset = self._l1[l1_index] & C.L1E_OFFSET_MASK
            if not offset:
                raise CorruptImageError(
                    f"{self.path}: dirty L2 table #{l1_index} "
                    f"without an L1 pointer")
            self._f.pwrite(struct.pack(
                f">{self._split.l2_entries}Q",
                *self._l2_cache[l1_index]), offset)
        self._l2_dirty.clear()
        header_changed = self._alloc.flush_refcounts()
        if wrote_tables:
            self._sync_file(data_only=True)

        # Stage 3: the L1 table.
        if self._l1_dirty:
            self._f.pwrite(struct.pack(f">{len(self._l1)}Q", *self._l1),
                           self.header.l1_table_offset)
            self._l1_dirty = False
            self._sync_file(data_only=True)

        # Stage 4: the header.
        if header_changed:
            self.header.refcount_table_offset = \
                self._alloc.refcount_table_offset
            self.header.refcount_table_clusters = \
                self._alloc.refcount_table_clusters
        if self.header.cache_ext is not None:
            self.header.cache_ext.current_size = self._alloc.physical_size
            header_changed = True
        if self._dirty_on_disk:
            self.header.incompatible_features &= ~C.FEATURE_DIRTY
            header_changed = True
        if header_changed:
            self._rewrite_header()
            self._sync_file()
            self._dirty_on_disk = False

    def _header_capacity(self) -> int:
        """Bytes available for the header area before other structures."""
        candidates = [o for o in (self.header.refcount_table_offset,
                                  self.header.l1_table_offset) if o > 0]
        return min(candidates) if candidates else 1 << 62

    def _rewrite_header(self) -> None:
        blob = self.header.encode()
        if len(blob) > self._header_capacity():
            raise CorruptImageError(
                f"{self.path}: header area overflow "
                f"({len(blob)} bytes > {self._header_capacity()})")
        self._f.pwrite(blob, 0)

    def _close_impl(self) -> None:
        if not self.read_only:
            # §4.3 close: "the (new) current size of the cache is written
            # back to the image file" — flush() handles it.
            self._flush_impl()
        self._f.close()
        if self._backing is not None:
            self._backing.close()

    # ------------------------------------------------------------------
    # introspection (qemu-img info / map / check)
    # ------------------------------------------------------------------

    def allocated_data_bytes(self) -> int:
        """Bytes of guest data allocated in this image (not the chain)."""
        total = 0
        for l1_index in range(len(self._l1)):
            table = self._load_l2(l1_index)
            if table is None:
                continue
            total += sum(
                self.cluster_size for e in table if e & C.L2E_OFFSET_MASK)
        return total

    def map_clusters(self):
        """Yield ``(virtual_offset, length, allocated)`` runs, merged."""
        run_start = 0
        run_alloc: bool | None = None
        pos = 0
        n_clusters = div_round_up(self.size, self.cluster_size)
        for index in range(n_clusters):
            vba = index * self.cluster_size
            alloc = self._lookup(vba) != 0
            if run_alloc is None:
                run_alloc = alloc
            elif alloc != run_alloc:
                yield run_start, pos - run_start, run_alloc
                run_start, run_alloc = pos, alloc
            pos = min(vba + self.cluster_size, self.size)
        if run_alloc is not None and pos > run_start:
            yield run_start, pos - run_start, run_alloc

    def image_info(self) -> dict:
        """qemu-img-info-style summary dictionary."""
        info = {
            "format": self.format_name,
            "virtual_size": self.size,
            "cluster_size": self.cluster_size,
            "physical_size": self.physical_size,
            "backing_file": self.header.backing_file,
            "backing_format": self.header.backing_format,
            "is_cache": self.is_cache,
            "sync_mode": self.sync_mode,
            "dirty": self.header.is_dirty,
        }
        if self.last_recovery is not None:
            info["recovered"] = True
            info["recovery"] = self.last_recovery.as_dict()
        if self.header.cache_ext is not None:
            info["cache_quota"] = self.header.cache_ext.quota
            info["cache_current_size"] = self.header.cache_ext.current_size
            info["cor_enabled"] = self.cor_enabled
            # Quota exhaustion is an observable event, not a silent
            # state flip: how many space errors occurred, why CoR is
            # off, and the traffic counters that explain Fig 9 runs.
            cor = self.cache_runtime.cor
            info["cor_space_errors"] = cor.space_errors
            info["cor_disabled_reason"] = cor.disabled_reason
            info["quota_stops"] = self.stats.quota_stops
            info["cache_hit_bytes"] = self.stats.cache_hit_bytes
            info["cache_miss_bytes"] = self.stats.cache_miss_bytes
            info["rmw_fill_bytes"] = self.stats.rmw_fill_bytes
        return info

    def check(self, *, repair: bool = False) -> CheckReport:
        """Verify metadata consistency against the stored refcounts.

        With ``repair=True`` (writable images only) every repairable
        problem — leaked clusters, refcount drift, a stale or
        over-quota cache size, torn table entries, the dirty bit — is
        fixed by rebuilding derived metadata from the L1/L2 walk
        (:func:`repro.imagefmt.recovery.recover_image`) and flushing.
        """
        if repair and self.read_only:
            raise ReadOnlyImageError(
                f"cannot repair {self.path}: image is opened read-only")
        report = CheckReport()
        expected: dict[int, int] = {}

        def expect(offset: int, n_clusters: int, what: str) -> None:
            if offset % self.cluster_size:
                report.errors.append(
                    f"{what}: offset {offset} not cluster-aligned")
                return
            if offset + n_clusters * self.cluster_size \
                    > self._alloc.physical_size:
                report.errors.append(
                    f"{what}: offset {offset} beyond end of file")
                return
            first = offset // self.cluster_size
            for i in range(first, first + n_clusters):
                expected[i] = expected.get(i, 0) + 1

        header_clusters = div_round_up(
            self.header.encoded_size(), self.cluster_size)
        expect(0, header_clusters, "header")
        expect(self.header.refcount_table_offset,
               self.header.refcount_table_clusters, "refcount table")
        l1_clusters = div_round_up(
            max(1, self.header.l1_size) * 8, self.cluster_size)
        expect(self.header.l1_table_offset, l1_clusters, "L1 table")

        for l1_index, entry in enumerate(self._l1):
            l2_offset = entry & C.L1E_OFFSET_MASK
            if l2_offset == 0:
                continue
            expect(l2_offset, 1, f"L2 table #{l1_index}")
            try:
                table = self._load_l2(l1_index)
            except CorruptImageError as exc:
                # Keep checking the rest of the image rather than
                # aborting at the first truncated/bad L2 table.
                report.errors.append(f"L2 table #{l1_index}: {exc}")
                continue
            assert table is not None
            for l2_index, l2e in enumerate(table):
                data_offset = l2e & C.L2E_OFFSET_MASK
                if data_offset:
                    expect(data_offset, 1,
                           f"data cluster L1[{l1_index}] L2[{l2_index}]")

        # Refcount blocks and the allocator's own bookkeeping clusters:
        # everything with a stored refcount that metadata does not claim
        # is either a refblock (fine) or leaked.  The refcount table is
        # read from disk once for the whole check, not once per surplus
        # cluster (which made check() O(clusters²) on large images).
        self._alloc.load()
        refblock_clusters = self._refblock_clusters()
        for ci, count in sorted(self._alloc._refcounts.items()):
            want = expected.get(ci, 0)
            if count > 0:
                report.allocated_clusters += 1
            if want > count:
                report.errors.append(
                    f"cluster {ci}: referenced {want} times but "
                    f"refcount is {count}")
            elif count > want:
                if ci in refblock_clusters:
                    continue
                report.leaked_clusters += count - want
        for ci, want in sorted(expected.items()):
            if self._alloc.refcount(ci) == 0:
                report.errors.append(
                    f"cluster {ci}: in use by metadata but refcount is 0")

        if self.header.is_dirty:
            report.errors.append(
                "image is marked dirty (not cleanly closed)")
        if self.header.cache_ext is not None:
            ext = self.header.cache_ext
            quota = ext.quota
            # Only compare the stored size against the file while no
            # unflushed state is pending — mid-session the header field
            # legitimately lags the in-memory allocator.
            pending = bool(self._l2_dirty or self._l1_dirty
                           or self._alloc.pending or self._data_dirty)
            if not pending and ext.current_size != self._alloc.physical_size:
                report.errors.append(
                    f"cache current_size {ext.current_size} != physical "
                    f"size {self._alloc.physical_size} (stale)")
            if quota and ext.current_size > quota:
                report.errors.append(
                    f"cache current_size {ext.current_size} exceeds "
                    f"quota {quota}")

        if repair and (report.errors or report.leaked_clusters):
            from repro.imagefmt.recovery import recover_image

            rec = recover_image(self, persist=True, reason="repair")
            report.repairs.extend(rec.actions)
            if report.leaked_clusters and not rec.actions:
                # Leaks inside the file (not at the tail) are reclaimed
                # by the refcount rebuild without a named action.
                report.repairs.append(
                    f"reclaimed {report.leaked_clusters} leaked "
                    f"cluster(s) via refcount rebuild")
            if not rec.actions and not report.repairs:
                report.repairs.append("rebuilt refcounts and header")
            self.last_recovery = rec
        return report

    def _refblock_clusters(self) -> set[int]:
        """Cluster indices holding refcount blocks, per the on-disk table."""
        from repro.imagefmt.refcount import read_refcount_table

        table = read_refcount_table(
            self._f,
            self._alloc.refcount_table_offset,
            self._alloc.refcount_table_clusters,
            self.cluster_size,
        )
        return {offset // self.cluster_size for offset in table if offset}


def _probe_qcow2(head: bytes) -> bool:
    return len(head) >= 4 and \
        int.from_bytes(head[:4], "big") == C.QCOW_MAGIC


def _open_qcow2(path: str, *, read_only: bool = True,
                **kwargs) -> Qcow2Image:
    return Qcow2Image.open(path, read_only=read_only, **kwargs)


register_format(C.FORMAT_QCOW2, _open_qcow2, _probe_qcow2)
