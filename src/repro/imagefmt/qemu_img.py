"""``repro-img``: a qemu-img-like command-line facade.

Section 4.2/4.4 of the paper: ``qemu-img`` is the tool that creates and
manipulates images, and the cache extension only adds one new argument
to it (the cache quota).  This module provides the matching subcommands::

    repro-img create [-f qcow2] [-b BACKING] [-F FMT] [-c CLUSTER]
                     [--cache-quota BYTES] PATH [SIZE]
    repro-img info PATH
    repro-img check PATH
    repro-img map PATH
    repro-img chain PATH          # print the backing chain

Sizes accept qemu-style suffixes (``512``, ``64K``, ``200M``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.imagefmt.chain import chain_paths, open_chain
from repro.imagefmt.constants import (
    DEFAULT_CLUSTER_SIZE,
    FORMAT_QCOW2,
    FORMAT_RAW,
)
from repro.imagefmt.driver import open_image, probe_format
from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage
from repro.units import format_size, parse_size


def cmd_create(args: argparse.Namespace) -> int:
    size = parse_size(args.size) if args.size else None
    if args.format == FORMAT_RAW:
        if args.backing or args.cache_quota:
            raise ReproError(
                "raw images support neither backing files nor caches")
        if size is None:
            raise ReproError("raw images need an explicit size")
        img = RawImage.create(args.path, size)
        img.close()
    else:
        quota = parse_size(args.cache_quota) if args.cache_quota else 0
        img = Qcow2Image.create(
            args.path,
            size,
            backing_file=args.backing,
            backing_format=args.backing_format,
            cluster_size=parse_size(args.cluster_size),
            cache_quota=quota,
        )
        img.close()
    print(f"Formatting '{args.path}', fmt={args.format}"
          + (f" backing_file={args.backing}" if args.backing else "")
          + (f" cache_quota={args.cache_quota}" if args.cache_quota else ""))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    fmt = probe_format(args.path)
    if fmt == FORMAT_QCOW2:
        with Qcow2Image.open(args.path, read_only=True,
                             open_backing=False) as img:
            info = img.image_info()
    else:
        with open_image(args.path, fmt) as img:
            info = img.image_info()
    if args.json:
        print(json.dumps(info, indent=2))
        return 0
    print(f"image: {args.path}")
    print(f"file format: {info['format']}")
    print(f"virtual size: {format_size(info['virtual_size'])} "
          f"({info['virtual_size']} bytes)")
    if info.get("cluster_size"):
        print(f"cluster size: {info['cluster_size']}")
    if info.get("physical_size") is not None:
        print(f"disk size: {format_size(info['physical_size'])}")
    if info.get("backing_file"):
        print(f"backing file: {info['backing_file']}"
              + (f" (format: {info['backing_format']})"
                 if info.get("backing_format") else ""))
    if info["is_cache"]:
        print(f"cache quota: {format_size(info['cache_quota'])}")
        print("cache current size: "
              f"{format_size(info['cache_current_size'])}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    repair = getattr(args, "repair", False)
    with Qcow2Image.open(args.path, read_only=not repair,
                         open_backing=False) as img:
        report = img.check(repair=repair)
        # After a repair, re-check so the verdict reflects the image
        # as it now is on disk, not as it was found.
        post = img.check() if repair else report
    if getattr(args, "json", False):
        print(json.dumps({
            "path": args.path,
            "errors": report.errors,
            "leaked_clusters": report.leaked_clusters,
            "allocated_clusters": report.allocated_clusters,
            "repairs": report.repairs,
            "clean_after": post.ok and post.leaked_clusters == 0,
        }, indent=2))
    else:
        for err in report.errors:
            print(f"ERROR: {err}")
        if report.leaked_clusters:
            print(f"{report.leaked_clusters} leaked clusters")
        for fix in report.repairs:
            print(f"REPAIRED: {fix}")
        print(f"{report.allocated_clusters} clusters in use")
        if report.ok:
            print("No errors were found on the image.")
    if report.ok and not report.leaked_clusters:
        return 0
    if repair and post.ok and post.leaked_clusters == 0:
        return 0  # everything found was fixed
    return 2 if not report.ok else 3


def cmd_map(args: argparse.Namespace) -> int:
    with Qcow2Image.open(args.path, read_only=True,
                         open_backing=False) as img:
        print(f"{'Offset':>16} {'Length':>16} Mapped")
        for offset, length, allocated in img.map_clusters():
            print(f"{offset:>16} {length:>16} "
                  f"{'true' if allocated else 'false'}")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    from repro.imagefmt.convert import convert

    written = convert(
        args.src, args.dst,
        output_format=args.output_format,
        cluster_size=parse_size(args.cluster_size),
        src_format=args.format,
    )
    print(f"Converted '{args.src}' -> '{args.dst}' "
          f"({args.output_format}), {format_size(written)} of data")
    return 0


def cmd_boot_bench(args: argparse.Namespace) -> int:
    """Replay a boot trace against an image chain; print the traffic
    a storage node would observe (the Figure 9/10 measurement, from
    the command line)."""
    from repro.bootmodel.trace import BootTrace
    from repro.bootmodel.vm import replay_through_chain
    from repro.imagefmt.chain import open_chain

    trace = BootTrace.load(args.trace)
    with open_chain(args.path, read_only=False) as chain:
        result = replay_through_chain(trace, chain)
    print(f"replayed {result.ops_replayed} ops from {args.trace}")
    print(f"guest read:   {format_size(result.guest_bytes_read)}")
    print(f"guest wrote:  {format_size(result.guest_bytes_written)}")
    print(f"base fetched: {format_size(result.base_bytes_read)} "
          f"in {result.base_read_ops} ops")
    print(f"unique base:  {format_size(result.unique_base_bytes)}")
    if result.cache_file_size is not None:
        print(f"cache hits:   {format_size(result.cache_hit_bytes)}")
        print(f"cache size:   {format_size(result.cache_file_size)}"
              + ("  (CoR disabled: quota filled)"
                 if result.cor_disabled else ""))
    return 0


def cmd_commit(args: argparse.Namespace) -> int:
    from repro.imagefmt.commit import commit, open_chain_for_commit

    with open_chain_for_commit(args.path) as overlay:
        nbytes = commit(overlay)
    print(f"Committed {format_size(nbytes)} from '{args.path}' into "
          f"its backing file.")
    print("Note: any VMI caches derived from that backing image are "
          "now stale and must be dropped (§3: caches are valid only "
          "while the base is unchanged).")
    return 0


def cmd_rebase(args: argparse.Namespace) -> int:
    from repro.imagefmt.commit import rebase

    copied = rebase(
        args.path,
        args.backing if args.backing else None,
        new_backing_format=args.backing_format,
        unsafe=args.unsafe,
    )
    target = args.backing or "<none> (standalone)"
    print(f"Rebased '{args.path}' onto {target}"
          + (f", copied {format_size(copied)}" if copied else ""))
    return 0


def cmd_dedup(args: argparse.Namespace) -> int:
    from repro.imagefmt.dedup import analyze_dedup

    images = [Qcow2Image.open(p, read_only=True, open_backing=False)
              for p in args.paths]
    try:
        report = analyze_dedup(images,
                               chunk_size=parse_size(args.chunk_size))
    finally:
        for img in images:
            img.close()
    print(f"chunk size: {report.chunk_size}")
    for path, nbytes in report.per_image_allocated.items():
        print(f"  {path}: {format_size(nbytes)} of data chunks")
    print(f"total:     {format_size(report.total_bytes)}")
    print(f"unique:    {format_size(report.unique_bytes)}")
    print(f"duplicate: {format_size(report.duplicate_bytes)} "
          f"({report.savings_fraction:.1%} saved by a "
          f"content-addressed cache store)")
    return 0


def cmd_chain(args: argparse.Namespace) -> int:
    with open_chain(args.path, read_only=True) as img:
        for i, path in enumerate(chain_paths(img)):
            print(("  " * i) + path)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-img",
        description="qemu-img-like tool for VMI-cache image chains",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("create", help="create a new image")
    p.add_argument("-f", "--format", default=FORMAT_QCOW2,
                   choices=[FORMAT_QCOW2, FORMAT_RAW])
    p.add_argument("-b", "--backing", help="backing file path")
    p.add_argument("-F", "--backing-format", dest="backing_format")
    p.add_argument("-c", "--cluster-size", default=str(DEFAULT_CLUSTER_SIZE))
    p.add_argument("--cache-quota",
                   help="mark the image as a VMI cache with this quota")
    p.add_argument("path")
    p.add_argument("size", nargs="?")
    p.set_defaults(func=cmd_create)

    p = sub.add_parser("info", help="show image information")
    p.add_argument("--json", action="store_true")
    p.add_argument("path")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("check", help="check image consistency")
    p.add_argument("--repair", action="store_true",
                   help="repair repairable problems (opens read-write)")
    p.add_argument("--json", action="store_true")
    p.add_argument("path")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("map", help="show allocated ranges")
    p.add_argument("path")
    p.set_defaults(func=cmd_map)

    p = sub.add_parser("chain", help="print the backing chain")
    p.add_argument("path")
    p.set_defaults(func=cmd_chain)

    p = sub.add_parser("convert",
                       help="flatten a chain into a standalone image")
    p.add_argument("-f", "--format", help="input format (probed)")
    p.add_argument("-O", "--output-format", default=FORMAT_QCOW2,
                   choices=[FORMAT_QCOW2, FORMAT_RAW])
    p.add_argument("-c", "--cluster-size",
                   default=str(DEFAULT_CLUSTER_SIZE))
    p.add_argument("src")
    p.add_argument("dst")
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser(
        "boot-bench",
        help="replay a saved boot trace against an image chain")
    p.add_argument("--trace", required=True,
                   help="trace JSON (BootTrace.save format)")
    p.add_argument("path")
    p.set_defaults(func=cmd_boot_bench)

    p = sub.add_parser("commit",
                       help="commit an overlay into its backing file")
    p.add_argument("path")
    p.set_defaults(func=cmd_commit)

    p = sub.add_parser("rebase", help="change an image's backing file")
    p.add_argument("-b", "--backing", default=None,
                   help="new backing file (omit to flatten)")
    p.add_argument("-F", "--backing-format", dest="backing_format")
    p.add_argument("-u", "--unsafe", action="store_true",
                   help="only rewrite the header (backing content "
                        "must be identical)")
    p.add_argument("path")
    p.set_defaults(func=cmd_rebase)

    p = sub.add_parser(
        "dedup",
        help="content-dedup analysis over cache images (§8 future work)")
    p.add_argument("--chunk-size", default="4K")
    p.add_argument("paths", nargs="+")
    p.set_defaults(func=cmd_dedup)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro-img: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
