"""Raw image driver: a plain file, sparse where never written.

Base VMIs in the paper's setup are ordinary image files exported over
NFS; reads beyond what was ever written return zeros, which the sparse
file gives us for free.
"""

from __future__ import annotations

from repro.errors import InvalidImageError
from repro.imagefmt.constants import FORMAT_RAW, QCOW_MAGIC
from repro.imagefmt.driver import BlockDriver, register_format
from repro.imagefmt.fileio import PositionalFile


class RawImage(BlockDriver):
    """A raw image file.  Virtual size == file size."""

    format_name = FORMAT_RAW

    def __init__(self, path: str, f: PositionalFile, size: int,
                 read_only: bool) -> None:
        super().__init__(path, size, read_only)
        self._f = f

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, path: str, size: int) -> "RawImage":
        """Create a sparse raw image of ``size`` bytes and open it rw."""
        if size < 0:
            raise ValueError("size must be non-negative")
        f = PositionalFile.create(path)
        f.truncate(size)
        return cls(path, f, size, read_only=False)

    @classmethod
    def open(cls, path: str, *, read_only: bool = True) -> "RawImage":
        f = PositionalFile.open(path, read_only=read_only)
        return cls(path, f, f.size(), read_only)

    # -- driver hooks --------------------------------------------------------

    @property
    def supports_concurrent_reads(self) -> bool:
        # Pure os.pread on a shared fd: no file offset, no metadata
        # caches, nothing mutated on the read path.
        return True

    def _read_impl(self, offset: int, length: int) -> bytes:
        data = self._f.pread(length, offset)
        if len(data) < length:
            # Defensive: raw files should never be shorter than their
            # virtual size, but pad rather than crash if one is.
            data += b"\0" * (length - len(data))
        return data

    def _write_impl(self, offset: int, data: bytes) -> None:
        self._f.pwrite(data, offset)

    def _flush_impl(self) -> None:
        if not self.read_only:
            self._f.fsync()
            self.stats.fsync_ops += 1

    def _close_impl(self) -> None:
        self._f.close()

    def allocated_bytes(self) -> int:
        """Physically allocated bytes (via stat block count)."""
        import os

        st = os.stat(self.path)
        return st.st_blocks * 512


def _probe_raw(head: bytes) -> bool:
    # Raw is the fallback: claim anything that is not QCOW2.
    if len(head) >= 4:
        magic = int.from_bytes(head[:4], "big")
        return magic != QCOW_MAGIC
    return True


def _open_raw(path: str, *, read_only: bool = True, **kwargs) -> RawImage:
    if kwargs:
        raise InvalidImageError(
            f"raw driver got unexpected options {sorted(kwargs)}")
    return RawImage.open(path, read_only=read_only)


register_format(FORMAT_RAW, _open_raw, _probe_raw)
