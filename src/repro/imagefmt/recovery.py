"""Crash recovery for QCOW2 cache images (DESIGN.md §9).

An image whose header carries the dirty incompatible-feature bit was not
cleanly closed: its refcount structure, cache current-size field, and
trailing clusters cannot be trusted.  The L1/L2 metadata *can* be — the
ordered flush writes data clusters before L2 tables, L2 tables before
the L1 table, and the L1 table before the header, each behind an fsync
barrier, so every table pointer that made it to disk refers to clusters
that are already durable.

Recovery therefore treats the L1/L2 walk as authoritative:

1. drop L1/L2 entries that cannot be valid (unaligned, beyond end of
   file, or carrying the compressed flag we never write) — these are
   torn or partially-applied table writes;
2. rebuild the full refcount map from the surviving metadata (header,
   refcount table, L1, L2 tables, data clusters), keeping refcount
   blocks the on-disk table still points at so the next flush reuses
   them;
3. truncate the allocated-but-unreferenced tail (clusters a crashed
   write had appended but no table ever came to reference);
4. recompute the cache's ``current_size`` as the physical file size,
   so a recovered cache can never account more space than it holds.

A writable open persists all of this and clears the dirty bit; a
read-only open applies the same corrections in memory only, leaving the
bit on disk for the next writable open.  ``check(repair=True)`` reuses
the same rebuild for non-crash damage (leaked clusters, refcount
drift, stale cache size).
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field

from repro.imagefmt import constants as C
from repro.imagefmt.refcount import (
    read_refcount_table,
    write_refcount_table,
)
from repro.metrics.registry import get_registry
from repro.metrics.tracing import TRACER


@dataclass
class RecoveryReport:
    """What one recovery (or repair) pass found and did."""

    path: str
    persisted: bool
    reason: str = "dirty-open"
    dropped_l1_entries: int = 0
    dropped_l2_entries: int = 0
    dropped_refblocks: int = 0
    rebuilt_refcounts: int = 0
    truncated_bytes: int = 0
    cache_size_before: int | None = None
    cache_size_after: int | None = None
    actions: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "persisted": self.persisted,
            "reason": self.reason,
            "dropped_l1_entries": self.dropped_l1_entries,
            "dropped_l2_entries": self.dropped_l2_entries,
            "dropped_refblocks": self.dropped_refblocks,
            "rebuilt_refcounts": self.rebuilt_refcounts,
            "truncated_bytes": self.truncated_bytes,
            "cache_size_before": self.cache_size_before,
            "cache_size_after": self.cache_size_after,
            "actions": list(self.actions),
        }


def recover_image(img, *, persist: bool, reason: str = "dirty-open"):
    """Rebuild a (possibly crash-damaged) image's derived metadata.

    ``img`` is an open :class:`~repro.imagefmt.qcow2.Qcow2Image`; this
    module is a friend of the driver and reaches into its internals.
    With ``persist=True`` the corrections are flushed to disk (ordered,
    clearing the dirty bit); with ``persist=False`` (read-only opens)
    they live only in memory and nothing is written.
    """
    report = RecoveryReport(path=img.path, persisted=persist,
                            reason=reason)
    if persist:
        # A crash mid-recovery must itself be recoverable: make sure
        # the dirty bit is durably set before any on-disk mutation
        # below (no-op when the image is already marked dirty).
        img._mark_dirty()
    f = img._f
    cluster_size = img.cluster_size
    file_size = f.size()
    split = img._split

    def valid_cluster(offset: int) -> bool:
        return (offset % cluster_size == 0
                and 0 < offset
                and offset + cluster_size <= file_size)

    # The rebuilt refcount map: cluster index -> count.  Fixed metadata
    # first; its placement comes from the header, which is only ever
    # rewritten in place (never moved), so it survives any crash.
    counts: dict[int, int] = {}

    def claim(offset: int, n_clusters: int) -> None:
        first = offset // cluster_size
        for ci in range(first, first + n_clusters):
            counts[ci] = counts.get(ci, 0) + 1

    header_clusters = -(-img.header.encoded_size() // cluster_size)
    claim(0, header_clusters)
    claim(img.header.refcount_table_offset,
          img.header.refcount_table_clusters)
    l1_clusters = -(-max(1, img.header.l1_size) * 8 // cluster_size)
    claim(img.header.l1_table_offset, l1_clusters)

    # Pass 1: the L1/L2 walk.  Entries that cannot be valid are torn
    # table writes from the crash; drop them (the data they would have
    # mapped was never reachable, so dropping loses nothing durable).
    for l1_index in range(len(img._l1)):
        l2_offset = img._l1[l1_index] & C.L1E_OFFSET_MASK
        if l2_offset == 0:
            continue
        if not valid_cluster(l2_offset):
            img._l1[l1_index] = 0
            img._l1_dirty = True
            img._l2_cache.pop(l1_index, None)
            img._l2_dirty.discard(l1_index)
            report.dropped_l1_entries += 1
            report.actions.append(
                f"dropped L1[{l1_index}]: invalid L2 offset {l2_offset}")
            continue
        claim(l2_offset, 1)
        raw = f.pread(cluster_size, l2_offset)
        if len(raw) < cluster_size:  # can't happen after valid_cluster
            raw += b"\0" * (cluster_size - len(raw))
        table = list(struct.unpack(f">{split.l2_entries}Q", raw))
        changed = False
        for l2_index, entry in enumerate(table):
            if entry == 0:
                continue
            data_offset = entry & C.L2E_OFFSET_MASK
            bad = (entry & C.OFLAG_COMPRESSED) \
                or not valid_cluster(data_offset)
            if bad:
                table[l2_index] = 0
                changed = True
                report.dropped_l2_entries += 1
                report.actions.append(
                    f"dropped L2 entry [{l1_index}][{l2_index}]: "
                    f"invalid mapping 0x{entry:x}")
            else:
                claim(data_offset, 1)
        img._l2_cache[l1_index] = table
        if changed and persist:
            img._l2_dirty.add(l1_index)

    # Pass 2: sanitize the on-disk refcount table.  Entries that are
    # torn (unaligned, beyond EOF) or cross-linked into clusters the
    # metadata walk claims must be zeroed — the next flush would
    # otherwise write a refcount block straight over live data.  Valid
    # refcount blocks stay claimed so the flush reuses them in place.
    table = read_refcount_table(
        f, img.header.refcount_table_offset,
        img.header.refcount_table_clusters, cluster_size)
    table_changed = False
    for ti, block_offset in enumerate(table):
        if block_offset == 0:
            continue
        ci = block_offset // cluster_size
        if not valid_cluster(block_offset) or counts.get(ci, 0) > 0:
            table[ti] = 0
            table_changed = True
            report.dropped_refblocks += 1
            report.actions.append(
                f"dropped refcount block #{ti}: "
                f"invalid or cross-linked offset {block_offset}")
        else:
            counts[ci] = 1
    if table_changed and persist:
        write_refcount_table(
            f, img.header.refcount_table_offset, table,
            img.header.refcount_table_clusters, cluster_size)

    # Pass 3: the rebuilt map replaces whatever the (untrusted) on-disk
    # refcounts said, and the unreferenced tail is cut off.
    report.rebuilt_refcounts = len(counts)
    img._alloc.physical_size = file_size
    img._alloc.replace_refcounts(counts)
    referenced_clusters = max(counts) + 1 if counts else 0
    tail = file_size - referenced_clusters * cluster_size
    if tail > 0:
        report.truncated_bytes = tail
        report.actions.append(
            f"truncated {tail} unreferenced trailing bytes")
        if persist:
            img._alloc.truncate_to_clusters(referenced_clusters)
        else:
            # Read-only: cannot ftruncate; account the tail as gone so
            # the recomputed cache size matches what repair would give.
            img._alloc.physical_size = \
                referenced_clusters * cluster_size

    # Pass 4: the cache's current size is, by definition, the physical
    # size of the file (§4.3); recompute rather than trust the header.
    if img.header.cache_ext is not None:
        report.cache_size_before = img.header.cache_ext.current_size
        img.header.cache_ext.current_size = img._alloc.physical_size
        report.cache_size_after = img._alloc.physical_size
        if report.cache_size_before != report.cache_size_after:
            report.actions.append(
                f"cache current_size {report.cache_size_before} -> "
                f"{report.cache_size_after}")

    if persist:
        # The ordered flush persists the rebuilt refcounts, rewritten
        # tables, recomputed cache size — and clears the dirty bit last.
        img.flush()
    else:
        # In-memory only: nothing pending, nothing to write.
        img._alloc._dirty = False
        img._l1_dirty = False
        img._l2_dirty.clear()

    get_registry().counter(
        "image_recoveries_total",
        image=os.path.basename(img.path),
        persisted=str(persist).lower()).inc()
    if report.dropped_l1_entries or report.dropped_l2_entries:
        get_registry().counter(
            "image_recovery_dropped_entries_total",
            image=os.path.basename(img.path)).inc(
                report.dropped_l1_entries + report.dropped_l2_entries)
    if TRACER.enabled:
        TRACER.event("image.recovery", path=img.path, reason=reason,
                     persisted=persist,
                     dropped_l1=report.dropped_l1_entries,
                     dropped_l2=report.dropped_l2_entries,
                     truncated_bytes=report.truncated_bytes)
    return report
