"""On-disk refcount table and refcount-block encoding.

QCOW2 tracks, for every *physical* cluster of the image file, a 16-bit
reference count.  A two-level structure mirrors the L1/L2 data lookup: the
refcount table (an array of u64 offsets, ``refcount_table_clusters``
clusters long) points at refcount blocks, each one cluster of u16 entries.

The paper does not modify this machinery, but a correct reproduction of
the driver needs it: the cache's "current size" (written into our header
extension) is the physical size of the file, which is exactly what the
allocator and these refcounts account for, and ``repro-img check`` uses
them to verify image integrity in tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CorruptImageError
from repro.imagefmt.constants import REFCOUNT_ENTRY_SIZE
from repro.imagefmt.fileio import PositionalFile


@dataclass(frozen=True)
class RefcountGeometry:
    """Derived sizes of the refcount structure for a cluster size."""

    cluster_bits: int

    @property
    def cluster_size(self) -> int:
        return 1 << self.cluster_bits

    @property
    def block_entries(self) -> int:
        """Clusters covered by one refcount block."""
        return self.cluster_size // REFCOUNT_ENTRY_SIZE

    @property
    def table_entries_per_cluster(self) -> int:
        return self.cluster_size // 8

    def table_index(self, cluster_index: int) -> int:
        return cluster_index // self.block_entries

    def block_index(self, cluster_index: int) -> int:
        return cluster_index % self.block_entries

    def clusters_covered(self, table_clusters: int) -> int:
        """Total physical clusters addressable with a table of that size."""
        return table_clusters * self.table_entries_per_cluster \
            * self.block_entries

    def table_clusters_for(self, n_clusters: int) -> int:
        """Table clusters needed to cover ``n_clusters`` physical clusters."""
        blocks = -(-n_clusters // self.block_entries)
        return max(1, -(-blocks // self.table_entries_per_cluster))


def read_refcount_table(
    f: PositionalFile, offset: int, table_clusters: int, cluster_size: int
) -> list[int]:
    """Read the refcount table: a list of refcount-block offsets (0 = none)."""
    want = table_clusters * cluster_size
    raw = f.pread(want, offset)
    if len(raw) != want:
        # The table area may be a sparse hole that was never written;
        # zero-extend (all entries "no block"), but only up to EOF.
        raw += b"\0" * (want - len(raw))
    count = len(raw) // 8
    return list(struct.unpack(f">{count}Q", raw))


def write_refcount_table(
    f: PositionalFile, offset: int, entries: list[int],
    table_clusters: int, cluster_size: int,
) -> None:
    total_entries = table_clusters * cluster_size // 8
    if len(entries) > total_entries:
        raise ValueError("refcount table overflow")
    padded = entries + [0] * (total_entries - len(entries))
    f.pwrite(struct.pack(f">{total_entries}Q", *padded), offset)


def refblock_offsets(
    f: PositionalFile, table_offset: int, table_clusters: int,
    cluster_size: int, *, file_size: int | None = None,
) -> set[int]:
    """Byte offsets of all refcount blocks the on-disk table points at.

    Offsets that are unaligned or (when ``file_size`` is given) beyond
    the end of the file are skipped — after a crash the table may be
    partially written, and recovery must not trust such entries.
    """
    out: set[int] = set()
    for offset in read_refcount_table(
            f, table_offset, table_clusters, cluster_size):
        if offset == 0 or offset % cluster_size:
            continue
        if file_size is not None and offset + cluster_size > file_size:
            continue
        out.add(offset)
    return out


def read_refcount_block(
    f: PositionalFile, offset: int, cluster_size: int
) -> list[int]:
    raw = f.pread(cluster_size, offset)
    if len(raw) != cluster_size:
        raise CorruptImageError("refcount block extends past end of file")
    count = cluster_size // REFCOUNT_ENTRY_SIZE
    return list(struct.unpack(f">{count}H", raw))


def write_refcount_block(
    f: PositionalFile, offset: int, counts: list[int], cluster_size: int
) -> None:
    entries = cluster_size // REFCOUNT_ENTRY_SIZE
    if len(counts) != entries:
        raise ValueError(
            f"refcount block must have {entries} entries, got {len(counts)}")
    f.pwrite(struct.pack(f">{entries}H", *counts), offset)
