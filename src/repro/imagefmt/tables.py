"""Virtual-block-address arithmetic for the two-level L1/L2 lookup.

Section 4.1 of the paper derives, for the default 64 KiB cluster size::

    d = 18 bits                      (offset within the cluster; the paper
                                      counts 16 data bits + 2, we follow
                                      the actual format: d = cluster_bits)
    m = cluster_bits - 3             (index into one L2 table, which
                                      occupies exactly one cluster of
                                      8-byte entries)
    n = 64 - (d + m)                 (index into the L1 table)

This module holds that arithmetic as pure, heavily-tested functions so the
same code is used by the file-backed driver (:mod:`repro.imagefmt.qcow2`)
and by the simulator's in-memory image model
(:mod:`repro.sim.blockio`) — the "massive code reuse" of Section 4.3
applies to our reproduction too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.imagefmt.constants import (
    MAX_CLUSTER_BITS,
    MIN_CLUSTER_BITS,
)
from repro.units import div_round_up, is_power_of_two


@dataclass(frozen=True)
class AddressSplit:
    """Splits a 64-bit virtual block address into (L1 index, L2 index,
    in-cluster offset) for a given cluster size."""

    cluster_bits: int

    def __post_init__(self) -> None:
        if not MIN_CLUSTER_BITS <= self.cluster_bits <= MAX_CLUSTER_BITS:
            raise ValueError(
                f"cluster_bits must be in [{MIN_CLUSTER_BITS}, "
                f"{MAX_CLUSTER_BITS}], got {self.cluster_bits}"
            )

    @property
    def cluster_size(self) -> int:
        return 1 << self.cluster_bits

    @property
    def l2_bits(self) -> int:
        # One L2 table fills one cluster with 8-byte entries.
        return self.cluster_bits - 3

    @property
    def l2_entries(self) -> int:
        """Number of data-cluster pointers per L2 table."""
        return 1 << self.l2_bits

    @property
    def l1_bits(self) -> int:
        return 64 - self.cluster_bits - self.l2_bits

    def l1_index(self, vba: int) -> int:
        return vba >> (self.cluster_bits + self.l2_bits)

    def l2_index(self, vba: int) -> int:
        return (vba >> self.cluster_bits) & (self.l2_entries - 1)

    def in_cluster(self, vba: int) -> int:
        return vba & (self.cluster_size - 1)

    def cluster_index(self, vba: int) -> int:
        """Index of the virtual cluster containing ``vba``."""
        return vba >> self.cluster_bits

    def bytes_covered_per_l2(self) -> int:
        """Virtual bytes mapped by a single (full) L2 table."""
        return self.l2_entries << self.cluster_bits

    def required_l1_entries(self, virtual_size: int) -> int:
        """Minimum number of L1 entries to map ``virtual_size`` bytes."""
        if virtual_size < 0:
            raise ValueError("virtual size must be non-negative")
        return div_round_up(virtual_size, self.bytes_covered_per_l2())


def cluster_size_to_bits(cluster_size: int) -> int:
    """Validate a cluster size and return its bit width."""
    if not is_power_of_two(cluster_size):
        raise ValueError(f"cluster size must be a power of two: {cluster_size}")
    bits = cluster_size.bit_length() - 1
    if not MIN_CLUSTER_BITS <= bits <= MAX_CLUSTER_BITS:
        raise ValueError(
            f"cluster size must be between {1 << MIN_CLUSTER_BITS} and "
            f"{1 << MAX_CLUSTER_BITS} bytes, got {cluster_size}"
        )
    return bits


def iter_cluster_chunks(
    offset: int, length: int, cluster_size: int
) -> Iterator[tuple[int, int, int]]:
    """Split a byte range into per-cluster chunks.

    Yields ``(cluster_index, offset_in_cluster, chunk_length)`` covering
    ``[offset, offset + length)`` in ascending order.  Every guest read or
    write goes through this — the format maps data strictly at cluster
    granularity, which is what makes the Figure 9 read-amplification
    effect (64 KiB cache clusters fetching more than plain QCOW2) fall out
    of the implementation rather than being modelled separately.
    """
    if offset < 0 or length < 0:
        raise ValueError("offset and length must be non-negative")
    pos = offset
    end = offset + length
    while pos < end:
        index = pos // cluster_size
        in_cluster = pos - index * cluster_size
        chunk = min(cluster_size - in_cluster, end - pos)
        yield index, in_cluster, chunk
        pos += chunk


def l2_tables_needed(
    split: AddressSplit, offset: int, length: int
) -> range:
    """Range of L1 indices touched by a byte range (for quota estimates)."""
    if length <= 0:
        return range(0)
    first = split.l1_index(offset)
    last = split.l1_index(offset + length - 1)
    return range(first, last + 1)
