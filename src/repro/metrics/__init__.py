"""Result collection and paper-style reporting.

The benchmark harness uses these helpers to print each experiment the
way the paper presents it (one series per line/curve, one row per
x-axis point) and to record paper-vs-measured comparisons for
EXPERIMENTS.md.
"""

from repro.metrics.collectors import ExperimentLog, LatencyHistogram, Series
from repro.metrics.reporting import (
    format_comparison,
    format_series_table,
    shape_check,
)

__all__ = [
    "Series",
    "ExperimentLog",
    "LatencyHistogram",
    "format_series_table",
    "format_comparison",
    "shape_check",
]
