"""Result collection, paper-style reporting, and live observability.

The benchmark harness uses these helpers to print each experiment the
way the paper presents it (one series per line/curve, one row per
x-axis point) and to record paper-vs-measured comparisons for
EXPERIMENTS.md.

Live telemetry lives next door: :mod:`repro.metrics.registry` is the
process-wide metrics registry every layer publishes into, and
:mod:`repro.metrics.tracing` is the span/event bus whose JSONL traces
:mod:`repro.metrics.boot_report` turns back into per-VM boot timelines
and per-layer byte attribution (DESIGN.md §8).  The operational plane
on top (DESIGN.md §10): :mod:`repro.metrics.telemetry_server` embeds a
``/metrics`` + ``/healthz`` + ``/traces`` HTTP endpoint, and
:mod:`repro.metrics.flight_recorder` keeps a black-box ring of the
most recent trace records for crash postmortems.
"""

from repro.metrics.alerts import (
    AlertEngine,
    AlertEvent,
    BurnRateRule,
    JsonlNotifier,
    LogNotifier,
    ThresholdRule,
)
from repro.metrics.boot_report import merge_traces
from repro.metrics.collectors import ExperimentLog, LatencyHistogram, Series
from repro.metrics.exposition import (
    Exposition,
    ExpositionParseError,
    parse_prometheus,
    render_exposition,
)
from repro.metrics.fleet import FleetAggregator, FleetSnapshot, HttpTarget
from repro.metrics.flight_recorder import FlightRecorder, get_recorder
from repro.metrics.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.metrics.reporting import (
    format_comparison,
    format_series_table,
    shape_check,
)
from repro.metrics.telemetry_server import TelemetryServer
from repro.metrics.tracing import (
    TRACER,
    JsonlSink,
    ListSink,
    Tracer,
    get_tracer,
    load_trace,
    validate_trace,
)

__all__ = [
    "Series",
    "ExperimentLog",
    "LatencyHistogram",
    "format_series_table",
    "format_comparison",
    "shape_check",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "TRACER",
    "Tracer",
    "get_tracer",
    "JsonlSink",
    "ListSink",
    "load_trace",
    "validate_trace",
    "merge_traces",
    "FlightRecorder",
    "get_recorder",
    "TelemetryServer",
    "Exposition",
    "ExpositionParseError",
    "parse_prometheus",
    "render_exposition",
    "FleetAggregator",
    "FleetSnapshot",
    "HttpTarget",
    "AlertEngine",
    "AlertEvent",
    "ThresholdRule",
    "BurnRateRule",
    "LogNotifier",
    "JsonlNotifier",
]
