"""Declarative SLO rules and the alert state machine.

The aggregator turns a fleet of scrapes into signals; this module
turns signals into *operable state*.  Two rule shapes cover the
paper-relevant SLOs:

* :class:`ThresholdRule` — "signal OP threshold, sustained for N
  polls".  ``scope="fleet"`` evaluates one derived fleet signal
  (e.g. ``storage_offload_fraction < 0.8 for 5``); ``scope="node"``
  evaluates per node, spawning one alert instance per breaching node
  (e.g. ``node:degraded >= 1 for 3`` — any node dirty/degraded for
  three consecutive polls).  Rules parse from a compact text grammar
  (:meth:`ThresholdRule.parse`)::

      [node:]SIGNAL OP NUMBER [for N] [resolve M]

* :class:`BurnRateRule` — classic SLO burn rate over a poll window:
  with a good-events counter, a total-events counter, and an
  objective (e.g. 0.8 cache-hit ratio), the burn rate is
  ``(1 - good/total) / (1 - objective)`` computed over the last
  ``window_polls`` scrapes.  A burn of 1.0 consumes the error budget
  exactly at the sustainable pace; the rule fires above ``factor``.

Alert lifecycle is Prometheus-shaped and deterministic in polls, not
wall time: first breaching poll moves an instance to **pending**;
``for_polls`` consecutive breaches move it to **firing**; after
``resolve_polls`` consecutive healthy polls a firing alert emits
**resolved** and re-arms.  A pending alert that stops breaching
silently re-arms (it never fired — nothing to resolve).  Every
transition is pushed to the notification sinks, recorded as a tracer
event (``alert.pending`` / ``alert.firing`` / ``alert.resolved``) and
counted in ``fleet_alert_transitions_total{rule=,state=}``; the
``fleet_alerts_firing`` gauge tracks the live firing count.

Sinks are pluggable: :class:`LogNotifier` (stdlib logging),
:class:`JsonlNotifier` (append-only JSONL file), or any callable
taking an :class:`AlertEvent`.
"""

from __future__ import annotations

import json
import logging
import operator
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.metrics.registry import get_registry
from repro.metrics.tracing import TRACER

__all__ = [
    "AlertEngine",
    "AlertEvent",
    "BurnRateRule",
    "JsonlNotifier",
    "LogNotifier",
    "RuleError",
    "ThresholdRule",
    "parse_rule",
]

_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": operator.lt, ">": operator.gt,
    "<=": operator.le, ">=": operator.ge,
    "==": operator.eq, "!=": operator.ne,
}

PENDING = "pending"
FIRING = "firing"
RESOLVED = "resolved"

FLEET_INSTANCE = "fleet"


class RuleError(ValueError):
    """A rule definition that cannot be evaluated."""


@dataclass(frozen=True)
class ThresholdRule:
    """``signal OP threshold`` sustained over consecutive polls."""

    name: str
    signal: str
    op: str
    threshold: float
    for_polls: int = 1
    resolve_polls: int = 1
    scope: str = "fleet"  # "fleet" or "node"
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise RuleError(f"rule {self.name!r}: unknown operator "
                            f"{self.op!r} (options: {sorted(_OPS)})")
        if self.scope not in ("fleet", "node"):
            raise RuleError(f"rule {self.name!r}: scope must be "
                            f"'fleet' or 'node', got {self.scope!r}")
        if self.for_polls < 1 or self.resolve_polls < 1:
            raise RuleError(f"rule {self.name!r}: for_polls and "
                            f"resolve_polls must be >= 1")

    _GRAMMAR = re.compile(
        r"^\s*(?:(?P<scope>node)\s*:)?\s*(?P<signal>[A-Za-z_:]"
        r"[A-Za-z0-9_:.]*)\s*(?P<op><=|>=|==|!=|<|>)\s*"
        r"(?P<threshold>[-+]?[0-9.]+(?:[eE][-+]?[0-9]+)?%?)"
        r"(?:\s+for\s+(?P<for>\d+))?"
        r"(?:\s+resolve\s+(?P<resolve>\d+))?\s*$")

    @classmethod
    def parse(cls, text: str, *, name: str | None = None,
              description: str = "") -> "ThresholdRule":
        """Parse ``[node:]SIGNAL OP NUMBER [for N] [resolve M]``.

        A ``%`` suffix divides the threshold by 100, so the paper-ish
        phrasing ``storage_offload_fraction < 80% for 5`` works
        verbatim.
        """
        m = cls._GRAMMAR.match(text)
        if m is None:
            raise RuleError(
                f"unparseable rule {text!r}; expected "
                f"'[node:]SIGNAL OP NUMBER [for N] [resolve M]'")
        raw = m.group("threshold")
        threshold = (float(raw[:-1]) / 100.0 if raw.endswith("%")
                     else float(raw))
        return cls(
            name=name or text.strip(),
            signal=m.group("signal"),
            op=m.group("op"),
            threshold=threshold,
            for_polls=int(m.group("for") or 1),
            resolve_polls=int(m.group("resolve") or 1),
            scope="node" if m.group("scope") else "fleet",
            description=description or text.strip(),
        )

    def evaluate(self, snapshot: Any) -> dict[str, float | None]:
        """instance -> current value (None = insufficient data)."""
        if self.scope == "fleet":
            return {FLEET_INSTANCE: snapshot.signals.get(self.signal)}
        return snapshot.node_signals(self.signal)

    def breached(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)


@dataclass(frozen=True)
class BurnRateRule:
    """SLO burn rate of ``1 - good/total`` against an objective."""

    name: str
    good: str
    total: str
    objective: float
    factor: float = 1.0
    window_polls: int = 5
    for_polls: int = 1
    resolve_polls: int = 1
    scope: str = "fleet"
    description: str = ""

    #: Threshold rules compare with this; burn fires when rate > factor.
    op: str = ">"

    def __post_init__(self) -> None:
        if not 0.0 <= self.objective < 1.0:
            raise RuleError(f"rule {self.name!r}: objective must be in "
                            f"[0, 1), got {self.objective}")
        if self.window_polls < 2:
            raise RuleError(f"rule {self.name!r}: window_polls must "
                            f"be >= 2 (a delta needs two scrapes)")
        if self.scope != "fleet":
            raise RuleError(f"rule {self.name!r}: burn-rate rules are "
                            f"fleet-scoped")

    @property
    def threshold(self) -> float:
        return self.factor

    def evaluate(self, snapshot: Any) -> dict[str, float | None]:
        good = snapshot.fleet_delta(self.good, self.window_polls)
        total = snapshot.fleet_delta(self.total, self.window_polls)
        if good is None or total is None or total <= 0:
            return {FLEET_INSTANCE: None}
        error_ratio = 1.0 - min(good / total, 1.0)
        budget = 1.0 - self.objective
        return {FLEET_INSTANCE: error_ratio / budget}

    def breached(self, value: float) -> bool:
        return value > self.factor


def parse_rule(text: str, *, name: str | None = None) -> ThresholdRule:
    """Module-level alias for :meth:`ThresholdRule.parse`."""
    return ThresholdRule.parse(text, name=name)


@dataclass
class AlertEvent:
    """One state transition, as delivered to notification sinks."""

    rule: str
    instance: str
    state: str  # pending | firing | resolved
    value: float
    threshold: float
    poll: int
    time: float
    signal: str = ""
    description: str = ""

    def to_dict(self) -> dict:
        return {
            "rule": self.rule, "instance": self.instance,
            "state": self.state, "value": self.value,
            "threshold": self.threshold, "poll": self.poll,
            "time": self.time, "signal": self.signal,
            "description": self.description,
        }


@dataclass
class _AlertState:
    """Mutable per-(rule, instance) lifecycle state."""

    rule: Any
    instance: str
    state: str = "ok"  # ok | pending | firing
    breach_streak: int = 0
    clear_streak: int = 0
    since_poll: int = -1
    value: float = 0.0

    def view(self) -> dict:
        return {
            "rule": self.rule.name, "instance": self.instance,
            "state": self.state, "value": self.value,
            "threshold": self.rule.threshold,
            "since_poll": self.since_poll,
            "breach_streak": self.breach_streak,
        }


class LogNotifier:
    """Emit transitions through stdlib :mod:`logging`."""

    def __init__(self, logger: logging.Logger | None = None) -> None:
        self._log = logger or logging.getLogger("repro.fleet.alerts")

    def __call__(self, event: AlertEvent) -> None:
        level = (logging.WARNING if event.state == FIRING
                 else logging.INFO)
        self._log.log(
            level, "alert %s [%s] %s: value=%.6g threshold=%.6g "
            "(poll %d)", event.state, event.instance, event.rule,
            event.value, event.threshold, event.poll)


class JsonlNotifier:
    """Append each transition as one JSON line (thread-safe)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()

    def __call__(self, event: AlertEvent) -> None:
        line = json.dumps(event.to_dict(), sort_keys=True)
        with self._lock, open(self.path, "a", encoding="utf-8") as f:
            f.write(line + "\n")


class AlertEngine:
    """Evaluates rules against fleet snapshots, tracks alert state."""

    def __init__(self, rules: "list | tuple" = (),
                 sinks: "list | tuple" = ()) -> None:
        self.rules: list = []
        self.sinks: list[Callable[[AlertEvent], None]] = []
        self._states: dict[tuple[str, str], _AlertState] = {}
        for rule in rules:
            self.add_rule(rule)
        for sink in sinks:
            self.add_sink(sink)

    def add_rule(self, rule) -> None:
        if isinstance(rule, str):
            rule = ThresholdRule.parse(rule)
        if any(r.name == rule.name for r in self.rules):
            raise RuleError(f"duplicate rule name {rule.name!r}")
        self.rules.append(rule)

    def add_sink(self, sink: Callable[[AlertEvent], None]) -> None:
        if not callable(sink):
            raise TypeError(f"sink {sink!r} is not callable")
        self.sinks.append(sink)

    # -- evaluation ------------------------------------------------------

    def evaluate(self, snapshot: Any) -> list[AlertEvent]:
        """Advance every rule one poll; returns emitted transitions.

        ``snapshot`` duck-types the aggregator's ``FleetSnapshot``:
        ``.poll``, ``.time``, ``.signals``, ``.node_signals(name)``,
        ``.fleet_delta(family, n)``.  A value of None (insufficient
        data — e.g. one scrape so far, or every node of a family
        unreachable) freezes that instance's state: no breach, no
        recovery credit.
        """
        events: list[AlertEvent] = []
        live_keys: set[tuple[str, str]] = set()
        for rule in self.rules:
            for instance, value in rule.evaluate(snapshot).items():
                key = (rule.name, instance)
                live_keys.add(key)
                state = self._states.get(key)
                if state is None:
                    state = self._states[key] = _AlertState(
                        rule, instance)
                if value is None:
                    continue
                state.value = value
                if rule.breached(value):
                    self._advance_breach(state, snapshot, events)
                else:
                    self._advance_clear(state, snapshot, events)
        # Node-scope instances whose node left the fleet: drop state
        # (an alert for a removed target would otherwise fire forever).
        for key in [k for k in self._states if k not in live_keys]:
            del self._states[key]
        self._publish(events)
        get_registry().gauge("fleet_alerts_firing").set(
            sum(1 for s in self._states.values()
                if s.state == FIRING))
        return events

    def _advance_breach(self, state: _AlertState, snapshot: Any,
                        events: list[AlertEvent]) -> None:
        state.clear_streak = 0
        state.breach_streak += 1
        if state.state == "ok":
            state.state = PENDING
            state.since_poll = snapshot.poll
            events.append(self._event(state, snapshot, PENDING))
        if state.state == PENDING \
                and state.breach_streak >= state.rule.for_polls:
            state.state = FIRING
            state.since_poll = snapshot.poll
            events.append(self._event(state, snapshot, FIRING))

    def _advance_clear(self, state: _AlertState, snapshot: Any,
                       events: list[AlertEvent]) -> None:
        state.breach_streak = 0
        if state.state == PENDING:
            # Never fired; re-arm silently (Prometheus semantics).
            state.state = "ok"
            state.since_poll = -1
        elif state.state == FIRING:
            state.clear_streak += 1
            if state.clear_streak >= state.rule.resolve_polls:
                state.state = "ok"
                state.since_poll = -1
                state.clear_streak = 0
                events.append(self._event(state, snapshot, RESOLVED))

    def _event(self, state: _AlertState, snapshot: Any,
               transition: str) -> AlertEvent:
        rule = state.rule
        return AlertEvent(
            rule=rule.name, instance=state.instance, state=transition,
            value=state.value, threshold=rule.threshold,
            poll=snapshot.poll, time=snapshot.time,
            signal=getattr(rule, "signal", "") or getattr(
                rule, "good", ""),
            description=rule.description)

    def _publish(self, events: list[AlertEvent]) -> None:
        registry = get_registry()
        for event in events:
            registry.counter("fleet_alert_transitions_total",
                             rule=event.rule, state=event.state).inc()
            if TRACER.enabled:
                TRACER.event(f"alert.{event.state}", rule=event.rule,
                             instance=event.instance,
                             value=event.value,
                             threshold=event.threshold,
                             poll=event.poll)
            for sink in self.sinks:
                try:
                    sink(event)
                except Exception:
                    # A broken notifier must never take down the poll
                    # loop; the failure is itself made visible.
                    registry.counter(
                        "fleet_alert_sink_errors_total").inc()

    # -- introspection ---------------------------------------------------

    def active(self) -> list[dict]:
        """Pending + firing alert instances, as plain dicts."""
        return [s.view() for s in self._states.values()
                if s.state in (PENDING, FIRING)]

    def firing(self) -> list[dict]:
        return [s.view() for s in self._states.values()
                if s.state == FIRING]
