"""Terminal line plots for experiment logs.

EXPERIMENTS.md and the examples render each figure's *shape* — which
is the thing this reproduction claims to match — as a compact ASCII
chart, one marker per series, log-friendly x spacing.
"""

from __future__ import annotations

from repro.metrics.collectors import ExperimentLog, Series

_MARKERS = "xo*+#@%&"

_SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: "list[float]", *, width: int = 16,
              lo: float | None = None,
              hi: float | None = None) -> str:
    """A one-line block-character trend of the last ``width`` values.

    The fleet dashboard packs one of these per node/signal; bounds
    default to the window's own min/max (a flat series renders as a
    mid-height bar, so "no change" is visually distinct from "no
    data", which renders as dashes).
    """
    if width < 1:
        raise ValueError("sparkline width must be positive")
    if not values:
        return "-" * width
    window = [float(v) for v in values[-width:]]
    low = min(window) if lo is None else lo
    high = max(window) if hi is None else hi
    span = high - low
    cells = []
    for v in window:
        if span <= 0:
            cells.append(_SPARK_BLOCKS[4])
            continue
        frac = min(1.0, max(0.0, (v - low) / span))
        cells.append(_SPARK_BLOCKS[1 + round(frac * 7)])
    return "".join(cells).rjust(width)


def plot_series(
    series_list: list[Series],
    *,
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render series as an ASCII scatter/line chart.

    X positions use the rank of each distinct x value (the paper's
    axes are 1,4,8,16,32,64 — rank spacing reads like its log axis).
    """
    if width < 10 or height < 4:
        raise ValueError("plot too small to be legible")
    xs = sorted({x for s in series_list for x in s.xs()})
    ys = [y for s in series_list for y in s.ys()]
    if not xs or not ys:
        return "(no data)"
    y_max = max(ys)
    y_min = min(0.0, min(ys))
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    x_pos = {x: (round(i * (width - 1) / max(1, len(xs) - 1))
                 if len(xs) > 1 else 0)
             for i, x in enumerate(xs)}

    for si, series in enumerate(series_list):
        marker = _MARKERS[si % len(_MARKERS)]
        last_cell: tuple[int, int] | None = None
        for x, y in sorted(series.points):
            col = x_pos[x]
            row = height - 1 - round(
                (y - y_min) / y_span * (height - 1))
            if last_cell is not None:
                _draw_segment(grid, last_cell, (row, col), marker)
            grid[row][col] = marker
            last_cell = (row, col)

    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            prefix = f"{y_max:>9.1f} |"
        elif i == height - 1:
            prefix = f"{y_min:>9.1f} |"
        else:
            prefix = " " * 9 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    tick_line = [" "] * (width + 11)
    for x, col in x_pos.items():
        label = f"{x:g}"
        start = min(11 + col, len(tick_line) - len(label))
        for j, ch in enumerate(label):
            tick_line[start + j] = ch
    lines.append("".join(tick_line).rstrip() + f"   ({x_label})")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.name}"
        for i, s in enumerate(series_list))
    lines.append(f"legend: {legend}  [{y_label}]")
    return "\n".join(lines)


def plot_log(log: ExperimentLog, *, x_label: str = "x",
             width: int = 60, height: int = 16) -> str:
    unit = log.series[0].unit if log.series else "s"
    return plot_series(log.series, width=width, height=height,
                       x_label=x_label, y_label=unit)


def _draw_segment(grid: list[list[str]], a: tuple[int, int],
                  b: tuple[int, int], marker: str) -> None:
    """Light interpolation between consecutive points ('.' trail)."""
    (r0, c0), (r1, c1) = a, b
    steps = max(abs(r1 - r0), abs(c1 - c0))
    for i in range(1, steps):
        r = round(r0 + (r1 - r0) * i / steps)
        c = round(c0 + (c1 - c0) * i / steps)
        if grid[r][c] == " ":
            grid[r][c] = "."
