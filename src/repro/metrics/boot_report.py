"""Reconstruct boot timelines and byte attribution from trace files.

The inverse of :mod:`repro.metrics.tracing`: given the JSONL records of
a traced run, rebuild the causal picture — which deployment waves ran,
when each VM booted and what its boot phases were, and how many bytes
each chain layer (base / cache / cow) served.  The per-layer table is
the live counterpart of the paper's Figure 9 / Table 1 breakdowns:
``block.read`` events are emitted exactly where ``DriverStats`` counts,
so the ``base`` row's byte total equals the replayer's
``base_bytes_read`` ("observed traffic at the storage node") for the
same run by construction.

``tools/boot_report.py`` is the CLI wrapper; tests import this module
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.tracing import load_trace
from repro.units import format_size

#: Chain-layer display order for attribution tables (unknown layers
#: sort after these, alphabetically).
_LAYER_ORDER = {"cow": 0, "overlay": 1, "cache": 2, "base": 3}


@dataclass
class PhaseSpan:
    """One boot phase (vmm / replay / epilogue) of a VM boot."""

    phase: str
    start: float
    end: float

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass
class VMBoot:
    """One reconstructed VM boot."""

    vm_id: str
    node: str | None
    start: float
    end: float
    clock: str
    trace_id: str
    span_id: str
    parent_id: str | None
    phases: list[PhaseSpan] = field(default_factory=list)

    @property
    def boot_time(self) -> float:
        return self.end - self.start


@dataclass
class LayerTraffic:
    """Byte attribution for one chain layer."""

    layer: str
    read_ops: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    bytes_written: int = 0
    paths: dict[str, int] = field(default_factory=dict)
    """Per-image bytes read, for layers with several images."""


@dataclass
class BootReport:
    """Everything reconstructed from one trace."""

    boots: list[VMBoot] = field(default_factory=list)
    waves: list[dict] = field(default_factory=list)
    attribution: dict[str, LayerTraffic] = field(default_factory=dict)
    cor_fill_bytes: int = 0
    cor_fills: int = 0
    rmw_fill_bytes: int = 0
    rmw_fills: int = 0
    quota_stops: int = 0
    summaries: list[dict] = field(default_factory=list)
    """The ``replay.summary`` events' attrs (per-replay totals as the
    replayer itself accounted them — the cross-check for the
    event-derived attribution)."""

    warm_runs: list[dict] = field(default_factory=list)
    record_count: int = 0

    def layer_bytes(self, layer: str) -> int:
        traffic = self.attribution.get(layer)
        return traffic.bytes_read if traffic else 0


def build_report(records: list[dict]) -> BootReport:
    """Reconstruct a :class:`BootReport` from parsed trace records."""
    report = BootReport(record_count=len(records))
    boots_by_id: dict[str, VMBoot] = {}
    orphan_phases: list[tuple[str | None, PhaseSpan]] = []

    for rec in records:
        kind = rec.get("type")
        name = rec.get("name")
        attrs = rec.get("attrs", {})
        if kind == "span":
            if name == "vm.boot":
                boot = VMBoot(
                    vm_id=str(attrs.get("vm_id", "?")),
                    node=attrs.get("node"),
                    start=rec["start"], end=rec["end"],
                    clock=rec.get("clock", "wall"),
                    trace_id=rec["trace_id"], span_id=rec["span_id"],
                    parent_id=rec.get("parent_id"),
                )
                boots_by_id[boot.span_id] = boot
                report.boots.append(boot)
            elif name == "boot.phase":
                phase = PhaseSpan(str(attrs.get("phase", "?")),
                                  rec["start"], rec["end"])
                parent = rec.get("parent_id")
                owner = boots_by_id.get(parent) if parent else None
                if owner is not None:
                    owner.phases.append(phase)
                else:
                    orphan_phases.append((parent, phase))
            elif name in ("deploy.wave", "deploy.prewarm"):
                report.waves.append({
                    "name": name,
                    "start": rec["start"], "end": rec["end"],
                    "clock": rec.get("clock", "wall"),
                    "span_id": rec["span_id"],
                    **attrs,
                })
            elif name == "cache.warm":
                report.warm_runs.append(dict(attrs))
        elif kind == "event":
            if name in ("block.read", "block.write"):
                layer = str(attrs.get("layer", "?"))
                traffic = report.attribution.get(layer)
                if traffic is None:
                    traffic = LayerTraffic(layer)
                    report.attribution[layer] = traffic
                length = int(attrs.get("length", 0))
                if name == "block.read":
                    traffic.read_ops += 1
                    traffic.bytes_read += length
                    path = str(attrs.get("path", "?"))
                    traffic.paths[path] = \
                        traffic.paths.get(path, 0) + length
                else:
                    traffic.write_ops += 1
                    traffic.bytes_written += length
            elif name == "cache.cor_fill":
                report.cor_fills += 1
                report.cor_fill_bytes += int(attrs.get("length", 0))
            elif name == "cache.rmw_fill":
                report.rmw_fills += 1
                report.rmw_fill_bytes += int(attrs.get("fill_bytes", 0))
            elif name == "cache.quota_stop":
                report.quota_stops += 1
            elif name == "replay.summary":
                report.summaries.append(dict(attrs))

    # Late-arriving parents: a phase span may be flushed before its
    # vm.boot span (the boot span is recorded after its children).
    for parent, phase in orphan_phases:
        owner = boots_by_id.get(parent) if parent else None
        if owner is not None:
            owner.phases.append(phase)
    for boot in report.boots:
        boot.phases.sort(key=lambda p: p.start)
    report.boots.sort(key=lambda b: (b.clock, b.start, b.vm_id))
    return report


def load_report(path: str) -> BootReport:
    """Parse a JSONL trace file and build its report."""
    return build_report(load_trace(path))


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def format_timeline(report: BootReport, *, width: int = 28) -> str:
    """The per-VM boot timeline, one section per clock domain."""
    if not report.boots:
        return "no vm.boot spans in trace\n"
    lines: list[str] = []
    for clock in ("sim", "wall"):
        boots = [b for b in report.boots if b.clock == clock]
        if not boots:
            continue
        t0 = min(b.start for b in boots)
        t_end = max(b.end for b in boots)
        span = max(t_end - t0, 1e-9)
        unit = "s (virtual)" if clock == "sim" else "s"
        lines.append(f"VM boot timeline — {clock} clock, "
                     f"{len(boots)} boot(s), "
                     f"makespan {t_end - t0:.3f}{unit}")
        lines.append(f"{'vm':<10} {'node':<8} {'start':>8} {'end':>8} "
                     f"{'boot':>8}  {'timeline':<{width}}  phases")
        for boot in boots:
            lo = int(round((boot.start - t0) / span * width))
            hi = max(int(round((boot.end - t0) / span * width)), lo + 1)
            bar = " " * lo + "#" * (hi - lo)
            phases = " | ".join(
                f"{p.phase} {p.seconds:.3f}" for p in boot.phases) \
                or "-"
            lines.append(
                f"{boot.vm_id:<10} {(boot.node or '-'):<8} "
                f"{boot.start - t0:>8.3f} {boot.end - t0:>8.3f} "
                f"{boot.boot_time:>8.3f}  {bar:<{width}}  {phases}")
        lines.append("")
    return "\n".join(lines)


def format_attribution(report: BootReport) -> str:
    """The per-layer byte-attribution table (the Fig 9 breakdown)."""
    if not report.attribution:
        return "no block.read/block.write events in trace\n"
    lines = ["Per-layer byte attribution (from block.* events)"]
    lines.append(f"{'layer':<8} {'reads':>7} {'bytes read':>12} "
                 f"{'writes':>7} {'bytes written':>14}")
    layers = sorted(report.attribution.values(),
                    key=lambda t: (_LAYER_ORDER.get(t.layer, 99),
                                   t.layer))
    for traffic in layers:
        lines.append(
            f"{traffic.layer:<8} {traffic.read_ops:>7} "
            f"{format_size(traffic.bytes_read):>12} "
            f"{traffic.write_ops:>7} "
            f"{format_size(traffic.bytes_written):>14}")
        if len(traffic.paths) > 1:
            for path, nbytes in sorted(traffic.paths.items()):
                lines.append(f"  {_basename(path):<20} "
                             f"{format_size(nbytes):>12} read")
    extras: list[str] = []
    if report.cor_fills:
        extras.append(f"CoR fills: {report.cor_fills} "
                      f"({format_size(report.cor_fill_bytes)})")
    if report.rmw_fills:
        extras.append(f"RMW fills: {report.rmw_fills} "
                      f"({format_size(report.rmw_fill_bytes)})")
    if report.quota_stops:
        extras.append(f"quota stops: {report.quota_stops}")
    if extras:
        lines.append("  " + "; ".join(extras))
    return "\n".join(lines) + "\n"


def format_report(report: BootReport) -> str:
    """Timeline + attribution + reconciliation against the replayer's
    own ``replay.summary`` accounting, as one printable block."""
    parts = [format_timeline(report), format_attribution(report)]
    if report.summaries:
        total_base = sum(s.get("base_bytes_read", 0)
                         for s in report.summaries)
        # Compare against the block.read bytes of exactly the base
        # images those replays used (a trace may also contain sim or
        # other base traffic the replayer never saw).
        base_layer = report.attribution.get("base")
        replay_paths = {s.get("base_path") for s in report.summaries}
        event_base = sum(
            nbytes for path, nbytes in base_layer.paths.items()
            if path in replay_paths) if base_layer else 0
        verdict = "match" if total_base == event_base else "MISMATCH"
        parts.append(
            f"replayer accounting: base_bytes_read="
            f"{format_size(total_base)} across "
            f"{len(report.summaries)} replay(s) — event-derived base "
            f"traffic {format_size(event_base)} ({verdict})\n")
    if report.waves:
        for wave in report.waves:
            dur = wave["end"] - wave["start"]
            extra = ", ".join(
                f"{k}={v}" for k, v in sorted(wave.items())
                if k not in ("name", "start", "end", "clock", "span_id"))
            parts.append(f"{wave['name']}: {dur:.3f}s ({extra})")
        parts.append("")
    return "\n".join(parts)


def _basename(path: str) -> str:
    return path.rstrip("/").rsplit("/", 1)[-1]
