"""Reconstruct boot timelines and byte attribution from trace files.

The inverse of :mod:`repro.metrics.tracing`: given the JSONL records of
a traced run, rebuild the causal picture — which deployment waves ran,
when each VM booted and what its boot phases were, and how many bytes
each chain layer (base / cache / cow) served.  The per-layer table is
the live counterpart of the paper's Figure 9 / Table 1 breakdowns:
``block.read`` events are emitted exactly where ``DriverStats`` counts,
so the ``base`` row's byte total equals the replayer's
``base_bytes_read`` ("observed traffic at the storage node") for the
same run by construction.

Cross-process runs produce *two* traces — the client's and the storage
node's — linked by the trace context the v3 wire protocol propagates.
:func:`merge_traces` stitches them into one causal timeline (rewriting
colliding ids on the peer side), and the report then shows each served
``export.read``/``export.write`` span under the client span that
issued it.

``tools/boot_report.py`` is the CLI wrapper; tests import this module
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.tracing import load_trace
from repro.units import format_size

#: Chain-layer display order for attribution tables (unknown layers
#: sort after these, alphabetically).  ``prefetch`` is the dedicated
#: low-priority connection the Prefetcher reads through — its bytes
#: get their own row so demand-stream base traffic stays exactly the
#: replayer's ``base_bytes_read`` (the Fig 9 invariant).
_LAYER_ORDER = {"cow": 0, "overlay": 1, "cache": 2, "base": 3,
                "prefetch": 4}


@dataclass
class PhaseSpan:
    """One boot phase (vmm / replay / epilogue) of a VM boot."""

    phase: str
    start: float
    end: float

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass
class VMBoot:
    """One reconstructed VM boot."""

    vm_id: str
    node: str | None
    start: float
    end: float
    clock: str
    trace_id: str
    span_id: str
    parent_id: str | None
    phases: list[PhaseSpan] = field(default_factory=list)

    @property
    def boot_time(self) -> float:
        return self.end - self.start


@dataclass
class LayerTraffic:
    """Byte attribution for one chain layer."""

    layer: str
    read_ops: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    bytes_written: int = 0
    paths: dict[str, int] = field(default_factory=dict)
    """Per-image bytes read, for layers with several images."""


@dataclass
class ServedTraffic:
    """Server-side request accounting for one export, rebuilt from the
    ``export.read``/``export.write`` spans a storage node records when
    a v3 client propagates trace context (DESIGN.md §10)."""

    export: str
    read_ops: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    bytes_written: int = 0
    linked: int = 0
    """Spans whose ``parent_id`` resolves to a span present in the
    (merged) trace — i.e. causally attached to the client request that
    issued them."""
    orphaned: int = 0
    """Spans whose parent is missing — the client side of the trace was
    not merged in, or ids collided unrewritten."""

    @property
    def spans(self) -> int:
        return self.linked + self.orphaned


@dataclass
class BootReport:
    """Everything reconstructed from one trace."""

    boots: list[VMBoot] = field(default_factory=list)
    waves: list[dict] = field(default_factory=list)
    attribution: dict[str, LayerTraffic] = field(default_factory=dict)
    served: dict[str, ServedTraffic] = field(default_factory=dict)
    cor_fill_bytes: int = 0
    cor_fills: int = 0
    rmw_fill_bytes: int = 0
    rmw_fills: int = 0
    quota_stops: int = 0
    summaries: list[dict] = field(default_factory=list)
    """The ``replay.summary`` events' attrs (per-replay totals as the
    replayer itself accounted them — the cross-check for the
    event-derived attribution)."""

    warm_runs: list[dict] = field(default_factory=list)
    prefetch_runs: list[dict] = field(default_factory=list)
    """The ``cache.prefetch`` spans' attrs (per-run executor totals —
    the cross-check for the ``prefetch`` attribution row)."""

    record_count: int = 0

    def layer_bytes(self, layer: str) -> int:
        traffic = self.attribution.get(layer)
        return traffic.bytes_read if traffic else 0


def build_report(records: list[dict]) -> BootReport:
    """Reconstruct a :class:`BootReport` from parsed trace records."""
    report = BootReport(record_count=len(records))
    boots_by_id: dict[str, VMBoot] = {}
    orphan_phases: list[tuple[str | None, PhaseSpan]] = []
    served_spans: list[dict] = []
    span_ids: set[str] = set()

    for rec in records:
        kind = rec.get("type")
        name = rec.get("name")
        attrs = rec.get("attrs", {})
        if kind == "span":
            span_ids.add(rec["span_id"])
            if name == "vm.boot":
                boot = VMBoot(
                    vm_id=str(attrs.get("vm_id", "?")),
                    node=attrs.get("node"),
                    start=rec["start"], end=rec["end"],
                    clock=rec.get("clock", "wall"),
                    trace_id=rec["trace_id"], span_id=rec["span_id"],
                    parent_id=rec.get("parent_id"),
                )
                boots_by_id[boot.span_id] = boot
                report.boots.append(boot)
            elif name == "boot.phase":
                phase = PhaseSpan(str(attrs.get("phase", "?")),
                                  rec["start"], rec["end"])
                parent = rec.get("parent_id")
                owner = boots_by_id.get(parent) if parent else None
                if owner is not None:
                    owner.phases.append(phase)
                else:
                    orphan_phases.append((parent, phase))
            elif name in ("deploy.wave", "deploy.prewarm"):
                report.waves.append({
                    "name": name,
                    "start": rec["start"], "end": rec["end"],
                    "clock": rec.get("clock", "wall"),
                    "span_id": rec["span_id"],
                    **attrs,
                })
            elif name == "cache.warm":
                report.warm_runs.append(dict(attrs))
            elif name == "cache.prefetch":
                report.prefetch_runs.append(dict(attrs))
            elif name in ("export.read", "export.write"):
                served_spans.append(rec)
        elif kind == "event":
            if name in ("block.read", "block.write"):
                layer = str(attrs.get("layer", "?"))
                traffic = report.attribution.get(layer)
                if traffic is None:
                    traffic = LayerTraffic(layer)
                    report.attribution[layer] = traffic
                length = int(attrs.get("length", 0))
                if name == "block.read":
                    traffic.read_ops += 1
                    traffic.bytes_read += length
                    path = str(attrs.get("path", "?"))
                    traffic.paths[path] = \
                        traffic.paths.get(path, 0) + length
                else:
                    traffic.write_ops += 1
                    traffic.bytes_written += length
            elif name == "cache.cor_fill":
                report.cor_fills += 1
                report.cor_fill_bytes += int(attrs.get("length", 0))
            elif name == "cache.rmw_fill":
                report.rmw_fills += 1
                report.rmw_fill_bytes += int(attrs.get("fill_bytes", 0))
            elif name == "cache.quota_stop":
                report.quota_stops += 1
            elif name == "replay.summary":
                report.summaries.append(dict(attrs))

    # Late-arriving parents: a phase span may be flushed before its
    # vm.boot span (the boot span is recorded after its children).
    for parent, phase in orphan_phases:
        owner = boots_by_id.get(parent) if parent else None
        if owner is not None:
            owner.phases.append(phase)
    # Served-span linking needs the full span-id set, so it runs after
    # the pass: a served span is "linked" when its parent — the client
    # span that issued the request — is present in this (merged) trace.
    for rec in served_spans:
        attrs = rec.get("attrs", {})
        export = str(attrs.get("export", "?"))
        traffic = report.served.get(export)
        if traffic is None:
            traffic = ServedTraffic(export)
            report.served[export] = traffic
        length = int(attrs.get("length", 0))
        if rec.get("name") == "export.read":
            traffic.read_ops += 1
            traffic.bytes_read += length
        else:
            traffic.write_ops += 1
            traffic.bytes_written += length
        parent = rec.get("parent_id")
        # A span can never be its own parent — an unmerged peer trace
        # whose local ids collide with the propagated ones must not
        # count as linked.
        if parent is not None and parent != rec["span_id"] \
                and parent in span_ids:
            traffic.linked += 1
        else:
            traffic.orphaned += 1
    for boot in report.boots:
        boot.phases.sort(key=lambda p: p.start)
    report.boots.sort(key=lambda b: (b.clock, b.start, b.vm_id))
    return report


def load_report(path: str) -> BootReport:
    """Parse a JSONL trace file and build its report."""
    return build_report(load_trace(path))


# ---------------------------------------------------------------------------
# cross-process merging
# ---------------------------------------------------------------------------


def merge_traces(primary: list[dict], secondary: list[dict], *,
                 prefix: str = "peer-") -> list[dict]:
    """Merge two single-process traces into one causal timeline.

    ``primary`` is the trace of the process that *originated* the
    propagated context (the client); ``secondary`` is the peer that
    received it over the wire (the storage node).  Both tracers count
    ids from ``t0001``/``s000001``, so unless the peer was enabled with
    an ``id_prefix``, its locally generated ids collide with the
    client's.  This rewrites the secondary side deterministically:

    - a secondary span/trace id is rewritten to ``prefix + id`` only
      when the same id also appears in the primary trace (prefixed
      peers merge unchanged — the rewrite is a no-op on non-colliding
      ids);
    - records in a *propagated subtree* (a span with the
      ``propagated: true`` attr, anything nested under one, and their
      events) keep their trace id — it is the client's own id and is
      exactly what links the two processes.  Membership follows the
      parent chain, not the id string, so a server-local trace that
      merely *collides* with a propagated trace id is still rewritten;
    - a ``propagated`` span's ``parent_id`` names a *primary* span and
      is kept verbatim; every other parent reference is local to the
      secondary and follows its span's rewrite.

    Records are returned primary-first, then the rewritten secondary.
    Timestamps are not touched: the two processes' ``perf_counter``
    domains are not comparable, and the report layer never compares
    across them — causality comes from the ids.
    """
    primary_span_ids = {rec["span_id"] for rec in primary
                        if rec.get("type") == "span"}
    primary_trace_ids = {rec["trace_id"] for rec in primary
                         if rec.get("type") == "span"
                         and rec.get("trace_id")}
    secondary_spans = [rec for rec in secondary
                       if rec.get("type") == "span"]
    span_map = {
        rec["span_id"]: (f"{prefix}{rec['span_id']}"
                         if rec["span_id"] in primary_span_ids
                         else rec["span_id"])
        for rec in secondary_spans}
    # Which secondary spans sit in a propagated subtree?  Seeded by the
    # propagated spans themselves, closed over local parent links
    # (children are emitted before their parents, so iterate to a
    # fixpoint rather than relying on record order).
    in_propagated: set[str] = {
        rec["span_id"] for rec in secondary_spans
        if rec.get("attrs", {}).get("propagated")}
    changed = True
    while changed:
        changed = False
        for rec in secondary_spans:
            if rec["span_id"] not in in_propagated \
                    and rec.get("parent_id") in in_propagated:
                in_propagated.add(rec["span_id"])
                changed = True

    def map_trace(tid: str | None) -> str | None:
        if tid is None:
            return None
        return f"{prefix}{tid}" if tid in primary_trace_ids else tid

    merged = list(primary)
    for rec in secondary:
        rec = dict(rec)
        kind = rec.get("type")
        if kind == "span":
            propagated_tree = rec["span_id"] in in_propagated
            rec["span_id"] = span_map[rec["span_id"]]
            if not propagated_tree:
                rec["trace_id"] = map_trace(rec.get("trace_id"))
            parent = rec.get("parent_id")
            if parent is not None \
                    and not rec.get("attrs", {}).get("propagated"):
                rec["parent_id"] = span_map.get(parent, parent)
        elif kind == "event":
            parent = rec.get("parent_id")
            if parent not in in_propagated:
                rec["trace_id"] = map_trace(rec.get("trace_id"))
            if parent is not None:
                # An event's parent is its enclosing span on the peer's
                # own thread — always a secondary-local span id.
                rec["parent_id"] = span_map.get(parent, parent)
        merged.append(rec)
    return merged


def load_merged_report(primary_path: str, secondary_path: str, *,
                       prefix: str = "peer-") -> BootReport:
    """Load two JSONL traces, merge, and build one report."""
    return build_report(merge_traces(load_trace(primary_path),
                                     load_trace(secondary_path),
                                     prefix=prefix))


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def format_timeline(report: BootReport, *, width: int = 28) -> str:
    """The per-VM boot timeline, one section per clock domain."""
    if not report.boots:
        return "no vm.boot spans in trace\n"
    lines: list[str] = []
    for clock in ("sim", "wall"):
        boots = [b for b in report.boots if b.clock == clock]
        if not boots:
            continue
        t0 = min(b.start for b in boots)
        t_end = max(b.end for b in boots)
        span = max(t_end - t0, 1e-9)
        unit = "s (virtual)" if clock == "sim" else "s"
        lines.append(f"VM boot timeline — {clock} clock, "
                     f"{len(boots)} boot(s), "
                     f"makespan {t_end - t0:.3f}{unit}")
        lines.append(f"{'vm':<10} {'node':<8} {'start':>8} {'end':>8} "
                     f"{'boot':>8}  {'timeline':<{width}}  phases")
        for boot in boots:
            lo = int(round((boot.start - t0) / span * width))
            hi = max(int(round((boot.end - t0) / span * width)), lo + 1)
            bar = " " * lo + "#" * (hi - lo)
            phases = " | ".join(
                f"{p.phase} {p.seconds:.3f}" for p in boot.phases) \
                or "-"
            lines.append(
                f"{boot.vm_id:<10} {(boot.node or '-'):<8} "
                f"{boot.start - t0:>8.3f} {boot.end - t0:>8.3f} "
                f"{boot.boot_time:>8.3f}  {bar:<{width}}  {phases}")
        lines.append("")
    return "\n".join(lines)


def format_attribution(report: BootReport) -> str:
    """The per-layer byte-attribution table (the Fig 9 breakdown)."""
    if not report.attribution:
        return "no block.read/block.write events in trace\n"
    lines = ["Per-layer byte attribution (from block.* events)"]
    lines.append(f"{'layer':<8} {'reads':>7} {'bytes read':>12} "
                 f"{'writes':>7} {'bytes written':>14}")
    layers = sorted(report.attribution.values(),
                    key=lambda t: (_LAYER_ORDER.get(t.layer, 99),
                                   t.layer))
    for traffic in layers:
        lines.append(
            f"{traffic.layer:<8} {traffic.read_ops:>7} "
            f"{format_size(traffic.bytes_read):>12} "
            f"{traffic.write_ops:>7} "
            f"{format_size(traffic.bytes_written):>14}")
        if len(traffic.paths) > 1:
            for path, nbytes in sorted(traffic.paths.items()):
                lines.append(f"  {_basename(path):<20} "
                             f"{format_size(nbytes):>12} read")
    extras: list[str] = []
    if report.cor_fills:
        extras.append(f"CoR fills: {report.cor_fills} "
                      f"({format_size(report.cor_fill_bytes)})")
    if report.rmw_fills:
        extras.append(f"RMW fills: {report.rmw_fills} "
                      f"({format_size(report.rmw_fill_bytes)})")
    if report.quota_stops:
        extras.append(f"quota stops: {report.quota_stops}")
    if extras:
        lines.append("  " + "; ".join(extras))
    return "\n".join(lines) + "\n"


def format_served(report: BootReport) -> str:
    """The storage-node-side request table: per-export served traffic
    and how much of it is causally linked to client spans."""
    if not report.served:
        return ""
    lines = ["Served requests (from export.* spans, storage-node side)"]
    lines.append(f"{'export':<12} {'reads':>7} {'bytes read':>12} "
                 f"{'writes':>7} {'bytes written':>14}  linked")
    for export in sorted(report.served):
        t = report.served[export]
        link = (f"{t.linked}/{t.spans}"
                if t.orphaned else f"all {t.linked}")
        lines.append(
            f"{t.export:<12} {t.read_ops:>7} "
            f"{format_size(t.bytes_read):>12} {t.write_ops:>7} "
            f"{format_size(t.bytes_written):>14}  {link}")
    orphans = sum(t.orphaned for t in report.served.values())
    if orphans:
        lines.append(f"  {orphans} span(s) have no client parent in "
                     f"this trace — merge the client trace "
                     f"(tools/boot_report.py --merge) for the full "
                     f"causal chain")
    return "\n".join(lines) + "\n"


def format_report(report: BootReport) -> str:
    """Timeline + attribution + reconciliation against the replayer's
    own ``replay.summary`` accounting, as one printable block."""
    parts = [format_timeline(report), format_attribution(report)]
    served = format_served(report)
    if served:
        parts.append(served)
    if report.summaries:
        total_base = sum(s.get("base_bytes_read", 0)
                         for s in report.summaries)
        # Compare against the block.read bytes of exactly the base
        # images those replays used (a trace may also contain sim or
        # other base traffic the replayer never saw).
        base_layer = report.attribution.get("base")
        replay_paths = {s.get("base_path") for s in report.summaries}
        event_base = sum(
            nbytes for path, nbytes in base_layer.paths.items()
            if path in replay_paths) if base_layer else 0
        verdict = "match" if total_base == event_base else "MISMATCH"
        parts.append(
            f"replayer accounting: base_bytes_read="
            f"{format_size(total_base)} across "
            f"{len(report.summaries)} replay(s) — event-derived base "
            f"traffic {format_size(event_base)} ({verdict})\n")
    if report.prefetch_runs:
        # The prefetch stream reads over its own connection (layer
        # "prefetch"), so its wire bytes never pollute the base row;
        # the executor's own source_bytes total must equal the
        # event-derived row exactly.
        total_src = sum(r.get("source_bytes", 0)
                        for r in report.prefetch_runs)
        event_pf = report.layer_bytes("prefetch")
        verdict = "match" if total_src == event_pf else "MISMATCH"
        fill = sum(r.get("bytes_fetched", 0)
                   for r in report.prefetch_runs)
        parts.append(
            f"prefetch accounting: source_bytes="
            f"{format_size(total_src)} across "
            f"{len(report.prefetch_runs)} run(s), cache fill "
            f"{format_size(fill)} — event-derived prefetch traffic "
            f"{format_size(event_pf)} ({verdict})\n")
    if report.waves:
        for wave in report.waves:
            dur = wave["end"] - wave["start"]
            extra = ", ".join(
                f"{k}={v}" for k, v in sorted(wave.items())
                if k not in ("name", "start", "end", "clock", "span_id"))
            parts.append(f"{wave['name']}: {dur:.3f}s ({extra})")
        parts.append("")
    return "\n".join(parts)


def _basename(path: str) -> str:
    return path.rstrip("/").rsplit("/", 1)[-1]
