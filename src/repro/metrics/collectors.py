"""Series and experiment-log containers for benchmark results, plus
the :class:`LatencyHistogram` primitive the transport layers feed."""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field


class LatencyHistogram:
    """Thread-safe log2-bucketed histogram of durations.

    Observations are bucketed by microsecond magnitude (bucket *i*
    covers ``(2^(i-1), 2^i]`` µs), which is coarse but constant-space
    and lock-cheap — suitable for per-request accounting on the remote
    datapath.  Quantiles are reported as the upper bound of the bucket
    the quantile falls in.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        us = max(1, int(seconds * 1e6))
        idx = us.bit_length()
        with self._lock:
            self._buckets[idx] = self._buckets.get(idx, 0) + 1
            self.count += 1
            self.total_seconds += seconds
            if seconds > self.max_seconds:
                self.max_seconds = seconds

    def _snapshot(self) -> tuple[int, float, float, dict[int, int]]:
        """One consistent (count, total, max, buckets) view."""
        with self._lock:
            return (self.count, self.total_seconds, self.max_seconds,
                    dict(self._buckets))

    @staticmethod
    def _quantile_of(buckets: dict[int, int], count: int,
                     q: float) -> float:
        if count == 0:
            return 0.0
        target = q * count
        seen = 0
        for idx in sorted(buckets):
            seen += buckets[idx]
            if seen >= target:
                return (1 << idx) / 1e6
        return (1 << max(buckets)) / 1e6

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the q-quantile, in seconds."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        count, _total, _mx, buckets = self._snapshot()
        return self._quantile_of(buckets, count, q)

    @property
    def mean_seconds(self) -> float:
        with self._lock:
            return self.total_seconds / self.count if self.count else 0.0

    def summary(self) -> dict:
        """Plain-dict summary (milliseconds) for logs and image_info.

        Taken from a single locked snapshot, so count / mean / max /
        quantiles are mutually consistent even while ``observe()`` is
        running on other threads.
        """
        count, total, mx, buckets = self._snapshot()
        mean = total / count if count else 0.0
        return {
            "count": count,
            "mean_ms": round(mean * 1e3, 3),
            "p50_ms": round(
                self._quantile_of(buckets, count, 0.5) * 1e3, 3),
            "p90_ms": round(
                self._quantile_of(buckets, count, 0.9) * 1e3, 3),
            "p99_ms": round(
                self._quantile_of(buckets, count, 0.99) * 1e3, 3),
            "max_ms": round(mx * 1e3, 3),
        }

    def __repr__(self) -> str:
        count, total, _mx, _b = self._snapshot()
        mean = total / count if count else 0.0
        return (f"LatencyHistogram(count={count}, "
                f"mean={mean * 1e3:.3f}ms)")


def op_latency_histograms() -> dict[str, LatencyHistogram]:
    """Pre-created per-op-kind histograms (no creation races)."""
    return {kind: LatencyHistogram()
            for kind in ("read", "write", "flush", "other")}


@dataclass
class Series:
    """One curve of a figure: named, with (x, y) points."""

    name: str
    points: list[tuple[float, float]] = field(default_factory=list)
    unit: str = "s"

    def add(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))

    def xs(self) -> list[float]:
        return [x for x, _ in self.points]

    def ys(self) -> list[float]:
        return [y for _, y in self.points]

    def y_at(self, x: float) -> float:
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"series {self.name!r} has no point at x={x}")

    def is_monotonic_increasing(self, *, tolerance: float = 0.0) -> bool:
        ys = self.ys()
        return all(b >= a - tolerance * max(a, 1e-12)
                   for a, b in zip(ys, ys[1:]))

    def is_flat(self, *, tolerance: float = 0.2) -> bool:
        """All points within ±tolerance of the first point."""
        ys = self.ys()
        if not ys:
            return True
        ref = ys[0]
        return all(abs(y - ref) <= tolerance * max(ref, 1e-12)
                   for y in ys)

    def growth_factor(self) -> float:
        """last / first (how much the curve rises over its range)."""
        ys = self.ys()
        if not ys or ys[0] == 0:
            return float("inf")
        return ys[-1] / ys[0]


@dataclass
class ExperimentLog:
    """Everything one benchmark measured, serializable for
    EXPERIMENTS.md generation."""

    experiment_id: str
    title: str
    series: list[Series] = field(default_factory=list)
    scalars: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def new_series(self, name: str, unit: str = "s") -> Series:
        s = Series(name, unit=unit)
        self.series.append(s)
        return s

    def get(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)

    def record_scalar(self, name: str, value: float) -> None:
        self.scalars[name] = float(value)

    def note(self, text: str) -> None:
        self.notes.append(text)

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "series": [
                {"name": s.name, "unit": s.unit, "points": s.points}
                for s in self.series
            ],
            "scalars": self.scalars,
            "notes": self.notes,
        }

    def save(self, directory: str) -> str:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.experiment_id}.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_dict(), f, indent=2)
        return path

    @classmethod
    def load(cls, path: str) -> "ExperimentLog":
        with open(path, encoding="utf-8") as f:
            raw = json.load(f)
        log = cls(raw["experiment_id"], raw["title"])
        for s in raw["series"]:
            series = log.new_series(s["name"], s.get("unit", "s"))
            for x, y in s["points"]:
                series.add(x, y)
        log.scalars = raw.get("scalars", {})
        log.notes = raw.get("notes", [])
        return log
