"""Parse (and render) the Prometheus text exposition format.

:meth:`~repro.metrics.registry.MetricsRegistry.render_prometheus`
turned the registry into scrape *output*; this module is the other
half: a strict parser that turns exposition text back into the typed
``(name, labels, value)`` samples the registry produced, so the fleet
aggregator can consume remote ``/metrics`` endpoints with no external
dependencies — and so the renderer has a real adversarial consumer.

The parser is deliberately **loud**: anything that is not
well-formed exposition 0.0.4 raises :class:`ExpositionParseError`
with the offending line and the reason.  Silent tolerance here would
let a renderer regression ship corrupted fleet numbers; instead every
aggregator scrape doubles as a format validation of the node's
renderer (the PR 5 contract).  On top of the line grammar the parser
enforces the structural rules our renderer guarantees and scrapers
rely on:

* a series name's samples form one contiguous block — once a block
  ends, the name may not reappear;
* ``# TYPE``/``# HELP`` precede the first sample of their name and are
  declared at most once;
* no duplicate ``(name, labels)`` sample within one scrape.

:func:`render_exposition` is the standalone renderer twin for sample
lists that do not live in a registry (the sim fleet's in-process
scrape adapter publishes through it, so simulated nodes emit the
byte-identical format real nodes do).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.metrics.registry import (
    Sample,
    _escape,
    _escape_help,
    _fmt,
    _series_kind,
)

__all__ = [
    "Exposition",
    "ExpositionParseError",
    "parse_prometheus",
    "render_exposition",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
_KINDS = ("counter", "gauge", "histogram", "summary", "untyped")

_SPECIALS = {"+Inf": float("inf"), "Inf": float("inf"),
             "-Inf": float("-inf"), "NaN": float("nan")}


class ExpositionParseError(ValueError):
    """Malformed exposition text; carries the line number and content."""

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        self.lineno = lineno
        self.line = line
        self.reason = reason
        super().__init__(f"line {lineno}: {reason} (in {line!r})")


@dataclass
class Exposition:
    """One parsed scrape: typed samples plus family metadata."""

    samples: list[Sample] = field(default_factory=list)
    kinds: dict[str, str] = field(default_factory=dict)
    helps: dict[str, str] = field(default_factory=dict)

    def families(self) -> list[str]:
        seen: dict[str, None] = {}
        for name, _labels, _value in self.samples:
            seen.setdefault(name)
        return list(seen)

    def series(self, name: str) -> list[tuple[dict[str, str], float]]:
        """Every ``(labels, value)`` of one series name."""
        return [(labels, value) for n, labels, value in self.samples
                if n == name]

    def value(self, name: str, **labels: str) -> float | None:
        """The sample with exactly these labels, or None."""
        want = {k: str(v) for k, v in labels.items()}
        for n, got, value in self.samples:
            if n == name and got == want:
                return value
        return None

    def sum(self, name: str) -> float | None:
        """Sum across a series' label sets; None if the series is
        absent entirely (0.0 means present-and-zero)."""
        found = [v for n, _l, v in self.samples if n == name]
        if not found:
            return None
        return float(sum(found))

    def __len__(self) -> int:
        return len(self.samples)


def parse_prometheus(text: str) -> Exposition:
    """Parse exposition 0.0.4 text into an :class:`Exposition`.

    Raises :class:`ExpositionParseError` on the first malformed line;
    the input must be complete (ending in a newline), which is what
    both our renderer and the spec produce.
    """
    if not isinstance(text, str):
        raise ExpositionParseError(0, "", "exposition must be text")
    if text and not text.endswith("\n"):
        raise ExpositionParseError(
            text.count("\n") + 1, text.rsplit("\n", 1)[-1],
            "truncated exposition: missing final newline")
    out = Exposition()
    seen_keys: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
    closed_names: set[str] = set()
    open_name: str | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            _parse_comment(out, lineno, line, open_name, closed_names)
            continue
        name, labels, value = _parse_sample(lineno, line)
        if name != open_name:
            if open_name is not None:
                closed_names.add(open_name)
            if name in closed_names:
                raise ExpositionParseError(
                    lineno, line,
                    f"series {name!r} reappears after its block ended "
                    f"(samples of one name must be contiguous)")
            open_name = name
        key = (name, tuple(sorted(labels.items())))
        if key in seen_keys:
            raise ExpositionParseError(
                lineno, line,
                f"duplicate sample for {name!r} with labels {labels}")
        seen_keys.add(key)
        out.samples.append((name, labels, value))
    return out


def _parse_comment(out: Exposition, lineno: int, line: str,
                   open_name: str | None,
                   closed_names: set[str]) -> None:
    parts = line.split(None, 3)
    # parts[0] == "#"; bare "#" or non-directive comments are legal
    # and ignored per the spec.
    if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
        return
    directive = parts[1]
    if len(parts) < 3:
        raise ExpositionParseError(
            lineno, line, f"# {directive} without a metric name")
    name = parts[2]
    if not _NAME_RE.fullmatch(name):
        raise ExpositionParseError(
            lineno, line, f"invalid metric name {name!r}")
    if name in closed_names or name == open_name:
        raise ExpositionParseError(
            lineno, line,
            f"# {directive} {name} after samples of that name")
    if directive == "HELP":
        if name in out.helps:
            raise ExpositionParseError(
                lineno, line, f"duplicate # HELP for {name!r}")
        out.helps[name] = _unescape_help(
            parts[3] if len(parts) > 3 else "")
    else:
        if len(parts) < 4:
            raise ExpositionParseError(
                lineno, line, "# TYPE without a kind")
        kind = parts[3].strip()
        if kind not in _KINDS:
            raise ExpositionParseError(
                lineno, line, f"unknown # TYPE kind {kind!r}")
        if name in out.kinds:
            raise ExpositionParseError(
                lineno, line, f"duplicate # TYPE for {name!r}")
        out.kinds[name] = kind


def _parse_sample(lineno: int,
                  line: str) -> tuple[str, dict[str, str], float]:
    m = _NAME_RE.match(line)
    if m is None or m.start() != 0:
        raise ExpositionParseError(
            lineno, line, "sample line must start with a metric name")
    name = m.group(0)
    rest = line[m.end():]
    labels: dict[str, str] = {}
    if rest.startswith("{"):
        labels, rest = _parse_labels(lineno, line, rest[1:])
    if not rest.startswith((" ", "\t")):
        raise ExpositionParseError(
            lineno, line, "expected whitespace before the value")
    fields = rest.split()
    if not fields or len(fields) > 2:
        raise ExpositionParseError(
            lineno, line,
            "expected '<value> [timestamp]' after the metric name")
    value = _parse_value(lineno, line, fields[0])
    if len(fields) == 2:  # optional timestamp: validated, then dropped
        try:
            int(fields[1])
        except ValueError:
            raise ExpositionParseError(
                lineno, line,
                f"timestamp {fields[1]!r} is not an integer") from None
    return name, labels, value


def _parse_labels(lineno: int, line: str,
                  body: str) -> tuple[dict[str, str], str]:
    """Scan ``name="value",...}`` with escape handling; returns the
    labels and whatever follows the closing brace."""
    labels: dict[str, str] = {}
    i = 0
    while True:
        if i >= len(body):
            raise ExpositionParseError(
                lineno, line, "unterminated label set")
        if body[i] == "}":
            return labels, body[i + 1:]
        m = _LABEL_NAME_RE.match(body, i)
        if m is None:
            raise ExpositionParseError(
                lineno, line,
                f"expected a label name at {body[i:]!r}")
        lname = m.group(0)
        i = m.end()
        if not body.startswith('="', i):
            raise ExpositionParseError(
                lineno, line,
                f'label {lname!r} must be followed by ="..." '
                f"(quoted value)")
        i += 2
        chars: list[str] = []
        while True:
            if i >= len(body):
                raise ExpositionParseError(
                    lineno, line,
                    f"unterminated value for label {lname!r}")
            ch = body[i]
            if ch == '"':
                i += 1
                break
            if ch == "\\":
                if i + 1 >= len(body):
                    raise ExpositionParseError(
                        lineno, line, "dangling escape in label value")
                esc = body[i + 1]
                if esc == "n":
                    chars.append("\n")
                elif esc in ('"', "\\"):
                    chars.append(esc)
                else:
                    raise ExpositionParseError(
                        lineno, line,
                        f"invalid escape \\{esc} in label value")
                i += 2
                continue
            chars.append(ch)
            i += 1
        if lname in labels:
            raise ExpositionParseError(
                lineno, line, f"duplicate label {lname!r}")
        labels[lname] = "".join(chars)
        if i < len(body) and body[i] == ",":
            i += 1  # trailing comma before } is legal
        elif i < len(body) and body[i] != "}":
            raise ExpositionParseError(
                lineno, line,
                f"expected ',' or '}}' after label {lname!r}")


def _parse_value(lineno: int, line: str, token: str) -> float:
    if token in _SPECIALS:
        return _SPECIALS[token]
    try:
        return float(token)
    except ValueError:
        raise ExpositionParseError(
            lineno, line, f"value {token!r} is not a number") from None


def _unescape_help(text: str) -> str:
    return text.replace(r"\n", "\n").replace("\\\\", "\\")


def render_exposition(samples: list[Sample], *,
                      kinds: dict[str, str] | None = None,
                      helps: dict[str, str] | None = None) -> str:
    """Render samples as exposition text, registry-identical framing.

    The registry's own renderer works off its family table; this one
    serves sample lists with no registry behind them (the sim fleet's
    scrape adapter).  Same grouping, escaping, HELP/TYPE rules, so
    :func:`parse_prometheus` round-trips both.
    """
    kinds = kinds or {}
    helps = helps or {}
    groups: dict[str, list[Sample]] = {}
    for sample in samples:
        groups.setdefault(sample[0], []).append(sample)
    lines: list[str] = []
    for name in sorted(groups):
        help_text = helps.get(name) or name.replace("_", " ")
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {_series_kind(name, kinds)}")
        for _name, labels, value in groups[name]:
            if labels:
                rendered = ",".join(
                    f'{k}="{_escape(v)}"'
                    for k, v in sorted(labels.items()))
                lines.append(f"{name}{{{rendered}}} {_fmt(value)}")
            else:
                lines.append(f"{name} {_fmt(value)}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"
