"""Fleet telemetry aggregator: scrape, store, derive, alert.

PR 5 gave every storage node a ``/metrics`` + ``/healthz`` endpoint and
PR 7 filled the wire with signals; this module is the consumer the
ROADMAP's "telemetry-driven fleet control plane" needs first.  A
:class:`FleetAggregator` owns a set of scrape targets and, once per
poll:

1. scrapes every eligible node from a **bounded worker pool** — one
   sick node can never block the loop: workers are side-effect-free
   (they fetch + parse and *return* the result), the poll thread waits
   at most the per-node timeout and discards late completions, and a
   failing node backs off exponentially before it is retried;
2. parses each ``/metrics`` body with the strict
   :func:`repro.metrics.exposition.parse_prometheus` — a node emitting
   malformed exposition is treated as scrape *failure* and counted in
   ``fleet_parse_errors_total`` (every poll doubles as a renderer
   validation);
3. appends the samples into per-node :class:`~repro.metrics.timeseries.
   SeriesStore` ring buffers (bounded history, reset-aware deltas);
4. computes the paper's fleet-level quantities (:data:`SIGNAL_DOC`) —
   cache hit ratio, storage-node offload fraction (the Fig 2/11
   y-axis), wire compression ratio, prefetch effectiveness, merged
   read-latency quantiles;
5. hands the resulting :class:`FleetSnapshot` to the
   :class:`~repro.metrics.alerts.AlertEngine` so SLO rules advance
   exactly one poll per poll — alert lifecycles are deterministic in
   poll counts, independent of wall-clock jitter or backoff skips.

Targets are duck-typed: anything with ``.name`` and
``.scrape(timeout) -> (metrics_text, health_dict | None)``.
:class:`HttpTarget` covers real nodes;
:class:`repro.sim.fleet_twin.SimScrapeTarget` publishes simulated
nodes through the identical interface, which is how the aggregator and
rules run unchanged over 1k-node simulated fleets.

Clocks are injected (``clock=``): real fleets default to
``time.monotonic``, the sim twin passes its virtual ``env.now`` so
staleness and rates are computed in sim time.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.metrics.alerts import AlertEngine, AlertEvent
from repro.metrics.exposition import Exposition, parse_prometheus
from repro.metrics.registry import get_registry
from repro.metrics.timeseries import SeriesStore

__all__ = [
    "FleetAggregator",
    "FleetSnapshot",
    "HttpTarget",
    "NodeView",
    "SIGNAL_DOC",
    "STATUS_DEGRADED",
    "STATUS_OK",
    "STATUS_STALE",
    "STATUS_UNREACHABLE",
]

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_STALE = "stale"
STATUS_UNREACHABLE = "unreachable"
_STATUSES = (STATUS_OK, STATUS_DEGRADED, STATUS_STALE,
             STATUS_UNREACHABLE)

# Family preference tuples: the first family a node has ever published
# wins, so real nodes (block_export_*) and sim nodes (sim_*) feed the
# same derived signal without per-deployment configuration.
CACHE_HIT_FAMILIES = ("block_export_cache_hit_bytes_total",
                      "sim_cache_hit_bytes_total")
CACHE_MISS_FAMILIES = ("block_export_cache_miss_bytes_total",
                       "sim_cache_miss_bytes_total")
DEMAND_FAMILIES = ("sim_node_demand_read_bytes_total",)
STORAGE_SERVED_FAMILIES = ("sim_storage_bytes_served_total",
                           "block_export_backing_bytes_read_total")
WIRE_RAW_FAMILIES = ("block_export_wire_compressed_bytes_raw_total",)
WIRE_COMP_FAMILIES = ("block_export_wire_compressed_bytes_total",)
PREFETCH_TOTAL_FAMILIES = ("prefetch_bytes_total",)
PREFETCH_HIT_FAMILIES = ("prefetch_hit_bytes_total",)
PREFETCH_WASTED_FAMILIES = ("prefetch_wasted_bytes_total",)
_LATENCY_FAMILY = "block_export_op_latency"

#: What each derived fleet signal means (also the dashboard legend).
SIGNAL_DOC: dict[str, str] = {
    "cache_hit_ratio":
        "fleet-wide cache hit bytes / (hit + miss) bytes, cumulative",
    "storage_offload_fraction":
        "fraction of demand reads NOT served by central storage "
        "(Fig 2/11); 1 - storage_served/demand when demand counters "
        "exist, None (no data) while the fleet has seen no demand",
    "wire_compression_ratio":
        "raw bytes / compressed bytes over compressed wire frames",
    "prefetch_hit_ratio":
        "prefetched bytes later demanded / prefetched bytes",
    "prefetch_wasted_ratio":
        "prefetched bytes evicted unread / prefetched bytes",
    "read_latency_ms_mean":
        "count-weighted mean of per-export read latency means",
    "read_latency_ms_p99":
        "max per-export read p99 across the fleet (upper bound on "
        "the true merged p99)",
    "nodes_total": "targets registered with the aggregator",
    "nodes_ok": "nodes whose last scrape succeeded and report healthy",
    "nodes_degraded": "nodes scraped fine but reporting degraded",
    "nodes_stale": "nodes failing scrapes, history still fresh",
    "nodes_unreachable": "nodes failing scrapes past the staleness "
                         "horizon (or never scraped)",
    "unhealthy_fraction": "(degraded + stale + unreachable) / total",
}


class HttpTarget:
    """Scrape a real node's embedded telemetry endpoint over HTTP.

    ``/metrics`` failure (or malformed exposition — raised by the
    parser downstream) fails the scrape; ``/healthz`` is best-effort
    on top: a node whose health handler is broken still yields its
    samples.  The 503 a degraded node returns is *data*, not an
    error — its JSON body is the health document.
    """

    def __init__(self, name: str, host: str, port: int) -> None:
        self.name = name
        self.base = f"http://{host}:{port}"

    @classmethod
    def from_url(cls, url: str, name: str | None = None) -> "HttpTarget":
        trimmed = url.rstrip("/")
        for suffix in ("/metrics", "/healthz"):
            if trimmed.endswith(suffix):
                trimmed = trimmed[: -len(suffix)]
        target = cls.__new__(cls)
        target.name = name or trimmed.split("://", 1)[-1]
        target.base = trimmed
        return target

    def scrape(self, timeout: float) -> tuple[str, dict | None]:
        with urllib.request.urlopen(f"{self.base}/metrics",
                                    timeout=timeout) as resp:
            text = resp.read().decode("utf-8")
        health: dict | None = None
        try:
            with urllib.request.urlopen(f"{self.base}/healthz",
                                        timeout=timeout) as resp:
                health = json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                health = json.loads(exc.read().decode("utf-8"))
            except Exception:
                health = {"status": "degraded",
                          "error": f"healthz http {exc.code}"}
        except Exception:
            health = None
        return text, health

    def __repr__(self) -> str:
        return f"HttpTarget({self.name!r}, {self.base!r})"


class _NodeState:
    """Aggregator-private mutable record for one target."""

    __slots__ = ("target", "store", "failures", "backoff_until",
                 "last_success", "last_attempt", "health", "error",
                 "scrapes", "ever_scraped")

    def __init__(self, target: Any, capacity: int) -> None:
        self.target = target
        self.store = SeriesStore(capacity)
        self.failures = 0
        self.backoff_until = float("-inf")
        self.last_success = float("-inf")
        self.last_attempt = float("-inf")
        self.health: dict | None = None
        self.error: str | None = None
        self.scrapes = 0
        self.ever_scraped = False

    def status(self, now: float, stale_horizon: float) -> str:
        if self.failures:
            if self.ever_scraped \
                    and now - self.last_success <= stale_horizon:
                return STATUS_STALE
            return STATUS_UNREACHABLE
        if not self.ever_scraped:
            return STATUS_UNREACHABLE
        health = self.health or {}
        if health.get("status", "ok") != "ok":
            return STATUS_DEGRADED
        return STATUS_OK


@dataclass
class NodeView:
    """Immutable-enough per-node slice of one snapshot."""

    name: str
    status: str
    failures: int
    age: float  # seconds (or sim seconds) since last good scrape
    health: dict | None
    error: str | None
    store: SeriesStore  # shared with the aggregator; read-only use

    def as_dict(self) -> dict:
        return {
            "name": self.name, "status": self.status,
            "failures": self.failures,
            "age": None if self.age == float("inf") else self.age,
            "health": self.health, "error": self.error,
        }


class FleetSnapshot:
    """One poll's consistent view: nodes, signals, alert transitions."""

    def __init__(self, poll: int, now: float,
                 nodes: dict[str, NodeView]) -> None:
        self.poll = poll
        self.time = now
        self.nodes = nodes
        self.signals: dict[str, float | None] = {}
        self.events: list[AlertEvent] = []
        self.active_alerts: list[dict] = []

    # -- rule-engine surface ---------------------------------------------

    def node_signals(self, name: str) -> dict[str, float | None]:
        """Per-node values of one signal, for node-scoped rules."""
        return {node.name: _node_signal(node, name)
                for node in self.nodes.values()}

    def fleet_delta(self, families: "str | tuple", n: int,
                    ) -> float | None:
        """Summed reset-aware increase of a family across the fleet
        over the last ``n`` polls; None when no node publishes it."""
        if isinstance(families, str):
            families = (families,)
        total, found = 0.0, False
        for node in self.nodes.values():
            name = node.store.first_present(families)
            if name is None:
                continue
            delta = node.store.delta_sum(name, n)
            if delta is not None:
                total += delta
                found = True
        return total if found else None

    def fleet_latest(self, families: "str | tuple") -> float | None:
        if isinstance(families, str):
            families = (families,)
        total, found = 0.0, False
        for node in self.nodes.values():
            name = node.store.first_present(families)
            if name is None:
                continue
            latest = node.store.latest_sum(name)
            if latest is not None:
                total += latest
                found = True
        return total if found else None

    def as_dict(self) -> dict:
        """JSON-friendly dump (``fleet_top --once --json``)."""
        return {
            "poll": self.poll,
            "time": self.time,
            "signals": self.signals,
            "nodes": [n.as_dict() for n in self.nodes.values()],
            "alerts": list(self.active_alerts),
            "events": [e.to_dict() for e in self.events],
        }


def _node_signal(node: NodeView, name: str) -> float | None:
    """One node's value of a named signal (node-scoped rules and the
    dashboard's per-node columns)."""
    health = node.health or {}
    if name == "up":
        return 0.0 if node.status in (STATUS_STALE,
                                      STATUS_UNREACHABLE) else 1.0
    if name == "degraded":
        return 1.0 if node.status == STATUS_DEGRADED else 0.0
    if name == "unhealthy":
        return 0.0 if node.status == STATUS_OK else 1.0
    if name == "failures":
        return float(node.failures)
    if name == "queue_depth":
        depth = health.get("queue_depth")
        return None if depth is None else float(depth)
    if name == "image_dirty":
        dirty = [r.latest()[1]
                 for _l, r in node.store.rings(
                     "block_export_image_dirty")
                 if len(r)]
        return max(dirty) if dirty else None
    if name == "cache_hit_ratio":
        return _hit_ratio_for(node.store)
    # Fall through: any published family name is a node signal (sum of
    # latest values across its label sets).
    return node.store.latest_sum(name)


def _hit_ratio_for(store: SeriesStore) -> float | None:
    hit_name = store.first_present(CACHE_HIT_FAMILIES)
    miss_name = store.first_present(CACHE_MISS_FAMILIES)
    if hit_name is None or miss_name is None:
        return None
    hit = store.latest_sum(hit_name) or 0.0
    miss = store.latest_sum(miss_name) or 0.0
    if hit + miss <= 0:
        return None
    return hit / (hit + miss)


class FleetAggregator:
    """Polls a fleet of scrape targets; owns stores, signals, alerts."""

    def __init__(self, targets: "list | tuple" = (), *,
                 interval: float = 2.0,
                 timeout: float = 1.0,
                 workers: int = 8,
                 capacity: int = 240,
                 stale_polls: int = 3,
                 backoff_base: float | None = None,
                 backoff_max: float | None = None,
                 rules: "list | tuple" = (),
                 sinks: "list | tuple" = (),
                 clock: Callable[[], float] | None = None) -> None:
        if interval <= 0:
            raise ValueError("poll interval must be positive")
        if workers < 1:
            raise ValueError("worker pool needs at least one worker")
        self.interval = interval
        self.timeout = timeout
        self.capacity = capacity
        self.stale_polls = stale_polls
        self.backoff_base = (interval if backoff_base is None
                             else backoff_base)
        self.backoff_max = (8 * interval if backoff_max is None
                            else backoff_max)
        self.clock = clock or time.monotonic
        self.engine = AlertEngine(rules, sinks)
        self._workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._nodes: dict[str, _NodeState] = {}
        self._poll = 0
        self._last_snapshot: FleetSnapshot | None = None
        self._snapshot_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        for target in targets:
            self.add_target(target)

    # -- targets ---------------------------------------------------------

    def add_target(self, target: Any) -> None:
        name = getattr(target, "name", None)
        if not name:
            raise ValueError(f"target {target!r} has no name")
        if name in self._nodes:
            raise ValueError(f"duplicate target name {name!r}")
        self._nodes[name] = _NodeState(target, self.capacity)

    def remove_target(self, name: str) -> None:
        self._nodes.pop(name, None)

    @property
    def targets(self) -> list[str]:
        return list(self._nodes)

    @property
    def poll_count(self) -> int:
        return self._poll

    def store(self, name: str) -> SeriesStore | None:
        state = self._nodes.get(name)
        return state.store if state else None

    # -- the poll loop ---------------------------------------------------

    def poll_once(self) -> FleetSnapshot:
        """One full poll: scrape, ingest, derive, evaluate rules."""
        self._poll += 1
        now = self.clock()
        registry = get_registry()
        registry.counter("fleet_polls_total").inc()

        due = [s for s in self._nodes.values()
               if s.backoff_until <= now]
        futures: dict[Future, _NodeState] = {}
        if due:
            pool = self._ensure_pool()
            for state in due:
                state.last_attempt = now
                futures[pool.submit(_scrape_worker, state.target,
                                    self.timeout)] = state
        done, pending = (wait(futures, timeout=self.timeout + 0.25)
                         if futures else (set(), set()))
        for future in done:
            state = futures[future]
            exc = future.exception()
            if exc is not None:
                self._record_failure(state, now, exc)
                continue
            exposition, health = future.result()
            state.store.observe(now, exposition.samples)
            state.health = health
            state.error = None
            state.failures = 0
            state.backoff_until = float("-inf")
            state.last_success = now
            state.scrapes += 1
            state.ever_scraped = True
        for future in pending:
            # Worker still stuck past the deadline: count the failure
            # now and let the (side-effect-free) result rot.  The
            # socket timeout will reap the thread shortly.
            future.cancel()
            self._record_failure(
                state := futures[future], now,
                TimeoutError(f"scrape exceeded {self.timeout}s"))

        snapshot = self._build_snapshot(now)
        snapshot.events = self.engine.evaluate(snapshot)
        snapshot.active_alerts = self.engine.active()
        self._export_fleet_metrics(snapshot)
        with self._snapshot_lock:
            self._last_snapshot = snapshot
        return snapshot

    def _record_failure(self, state: _NodeState, now: float,
                        exc: BaseException) -> None:
        state.failures += 1
        state.error = f"{type(exc).__name__}: {exc}"
        delay = min(self.backoff_base * 2 ** (state.failures - 1),
                    self.backoff_max)
        state.backoff_until = now + delay
        registry = get_registry()
        registry.counter("fleet_scrape_errors_total",
                         node=state.target.name).inc()
        if "ExpositionParseError" in type(exc).__name__:
            registry.counter("fleet_parse_errors_total",
                             node=state.target.name).inc()

    def _build_snapshot(self, now: float) -> FleetSnapshot:
        stale_horizon = self.stale_polls * self.interval
        nodes: dict[str, NodeView] = {}
        for name, state in self._nodes.items():
            age = (now - state.last_success if state.ever_scraped
                   else float("inf"))
            nodes[name] = NodeView(
                name=name,
                status=state.status(now, stale_horizon),
                failures=state.failures,
                age=age,
                health=state.health,
                error=state.error,
                store=state.store)
        snapshot = FleetSnapshot(self._poll, now, nodes)
        snapshot.signals = compute_signals(snapshot)
        return snapshot

    def _export_fleet_metrics(self, snapshot: FleetSnapshot) -> None:
        registry = get_registry()
        counts = {status: 0 for status in _STATUSES}
        for node in snapshot.nodes.values():
            counts[node.status] += 1
        for status, count in counts.items():
            registry.gauge("fleet_nodes", status=status).set(count)
        for name in ("cache_hit_ratio", "storage_offload_fraction",
                     "wire_compression_ratio"):
            value = snapshot.signals.get(name)
            if value is not None:
                registry.gauge(f"fleet_{name}").set(value)

    # -- background polling ----------------------------------------------

    def start(self) -> None:
        """Poll on a daemon thread every ``interval`` (wall) seconds."""
        if self._thread is not None:
            raise RuntimeError("aggregator already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="fleet-aggregator", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            started = time.monotonic()
            try:
                self.poll_once()
            except Exception:
                get_registry().counter("fleet_poll_crashes_total").inc()
            elapsed = time.monotonic() - started
            self._stop.wait(max(0.0, self.interval - elapsed))

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def close(self) -> None:
        self.stop()

    def __enter__(self) -> "FleetAggregator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def snapshot(self) -> FleetSnapshot | None:
        """The most recent completed poll (thread-safe)."""
        with self._snapshot_lock:
            return self._last_snapshot

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._workers,
                thread_name_prefix="fleet-scrape")
        return self._pool


def _scrape_worker(target: Any,
                   timeout: float) -> tuple[Exposition, dict | None]:
    """Side-effect-free scrape: fetch + parse, return or raise.

    Runs on the pool; mutating shared state here would race with the
    poll thread's decision to discard a late result, so all state
    application happens in :meth:`FleetAggregator.poll_once`.
    """
    text, health = target.scrape(timeout)
    return parse_prometheus(text), health


# ---------------------------------------------------------------------------
# derived fleet signals
# ---------------------------------------------------------------------------


def compute_signals(snapshot: FleetSnapshot) -> dict[str, float | None]:
    """The fleet-level quantities of :data:`SIGNAL_DOC`."""
    signals: dict[str, float | None] = {}

    hit = snapshot.fleet_latest(CACHE_HIT_FAMILIES)
    miss = snapshot.fleet_latest(CACHE_MISS_FAMILIES)
    if hit is not None and miss is not None and hit + miss > 0:
        signals["cache_hit_ratio"] = hit / (hit + miss)
    else:
        signals["cache_hit_ratio"] = None

    demand = snapshot.fleet_latest(DEMAND_FAMILIES)
    if demand:
        served = snapshot.fleet_latest(STORAGE_SERVED_FAMILIES) or 0.0
        signals["storage_offload_fraction"] = max(
            0.0, 1.0 - served / demand)
    else:
        # No demand traffic means the quantity is *unknown*, not some
        # proxy: an idle fleet must read as no-data, never as a
        # confident offload number (dashboards render None as n/a and
        # alert rules freeze on it).
        signals["storage_offload_fraction"] = None

    raw = snapshot.fleet_latest(WIRE_RAW_FAMILIES)
    comp = snapshot.fleet_latest(WIRE_COMP_FAMILIES)
    signals["wire_compression_ratio"] = (
        raw / comp if raw and comp else None)

    prefetched = snapshot.fleet_latest(PREFETCH_TOTAL_FAMILIES)
    if prefetched:
        p_hit = snapshot.fleet_latest(PREFETCH_HIT_FAMILIES) or 0.0
        p_waste = snapshot.fleet_latest(PREFETCH_WASTED_FAMILIES) or 0.0
        signals["prefetch_hit_ratio"] = p_hit / prefetched
        signals["prefetch_wasted_ratio"] = p_waste / prefetched
    else:
        signals["prefetch_hit_ratio"] = None
        signals["prefetch_wasted_ratio"] = None

    signals.update(_merged_read_latency(snapshot))

    counts = {status: 0 for status in _STATUSES}
    for node in snapshot.nodes.values():
        counts[node.status] += 1
    total = len(snapshot.nodes)
    signals["nodes_total"] = float(total)
    signals["nodes_ok"] = float(counts[STATUS_OK])
    signals["nodes_degraded"] = float(counts[STATUS_DEGRADED])
    signals["nodes_stale"] = float(counts[STATUS_STALE])
    signals["nodes_unreachable"] = float(counts[STATUS_UNREACHABLE])
    signals["unhealthy_fraction"] = (
        (total - counts[STATUS_OK]) / total if total else None)
    return signals


def _merged_read_latency(snapshot: FleetSnapshot,
                         ) -> dict[str, float | None]:
    """Merge per-export read-latency summaries across the fleet.

    Nodes expose summaries (count/mean/p99), not raw buckets, so the
    merge is a count-weighted mean plus max-of-p99s — the latter is an
    upper bound on the true fleet p99, documented as such in
    :data:`SIGNAL_DOC`.
    """
    weighted = 0.0
    weight = 0.0
    p99s: list[float] = []
    for node in snapshot.nodes.values():
        for labels, ring in node.store.rings(
                f"{_LATENCY_FAMILY}_mean_ms"):
            if labels.get("op") != "read" or not len(ring):
                continue
            count_ring = node.store.ring(
                f"{_LATENCY_FAMILY}_count", **labels)
            count = (count_ring.latest()[1]
                     if count_ring is not None and len(count_ring)
                     else 1.0)
            weighted += ring.latest()[1] * count
            weight += count
        for labels, ring in node.store.rings(
                f"{_LATENCY_FAMILY}_p99_ms"):
            if labels.get("op") == "read" and len(ring):
                p99s.append(ring.latest()[1])
    return {
        "read_latency_ms_mean": weighted / weight if weight else None,
        "read_latency_ms_p99": max(p99s) if p99s else None,
    }
