"""Render a :class:`~repro.metrics.fleet.FleetSnapshot` for terminals.

Pure formatting — no polling, no I/O — so ``tools/fleet_top.py`` can
redraw it in a loop and tests can assert on the exact text.  Layout:

* a fleet header (poll number, node status counts);
* the derived signal strip with sparkline trends (the trend is read
  from the snapshot's per-node ring buffers via the signal history the
  caller accumulates — the renderer itself is stateless, callers pass
  ``history``);
* a per-node table: status, health flags, cache hit ratio, queue
  depth, scrape failures, per-node hit-ratio sparkline;
* firing/pending alerts last, loudest.
"""

from __future__ import annotations

from repro.metrics.ascii_plot import sparkline
from repro.metrics.fleet import (
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_STALE,
    STATUS_UNREACHABLE,
    FleetSnapshot,
    _node_signal,
)

__all__ = ["SignalHistory", "render_dashboard"]

_STATUS_GLYPH = {
    STATUS_OK: "·",
    STATUS_DEGRADED: "!",
    STATUS_STALE: "?",
    STATUS_UNREACHABLE: "✗",
}

_SIGNAL_ROWS = (
    ("storage_offload_fraction", "offload", "{:6.1%}"),
    ("cache_hit_ratio", "cache hit", "{:6.1%}"),
    ("wire_compression_ratio", "wire comp", "{:6.2f}x"),
    ("prefetch_hit_ratio", "prefetch hit", "{:6.1%}"),
    ("prefetch_wasted_ratio", "prefetch waste", "{:6.1%}"),
    ("read_latency_ms_mean", "read mean", "{:6.2f}ms"),
    ("read_latency_ms_p99", "read p99", "{:6.2f}ms"),
)


class SignalHistory:
    """Bounded per-signal history the caller threads between polls."""

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._values: dict[str, list[float]] = {}

    def observe(self, snapshot: FleetSnapshot) -> None:
        for name, value in snapshot.signals.items():
            if value is None:
                continue
            series = self._values.setdefault(name, [])
            series.append(value)
            if len(series) > self.capacity:
                del series[: len(series) - self.capacity]
        for node in snapshot.nodes.values():
            ratio = _node_signal(node, "cache_hit_ratio")
            if ratio is not None:
                key = f"node:{node.name}:cache_hit_ratio"
                series = self._values.setdefault(key, [])
                series.append(ratio)
                if len(series) > self.capacity:
                    del series[: len(series) - self.capacity]

    def values(self, name: str) -> list[float]:
        return self._values.get(name, [])


def render_dashboard(snapshot: FleetSnapshot,
                     history: SignalHistory | None = None,
                     *, width: int = 78,
                     max_nodes: int = 40) -> str:
    """One full dashboard frame as text (no cursor control)."""
    history = history or SignalHistory()
    lines: list[str] = []
    signals = snapshot.signals
    counts = (f"{int(signals.get('nodes_ok') or 0)} ok / "
              f"{int(signals.get('nodes_degraded') or 0)} degraded / "
              f"{int(signals.get('nodes_stale') or 0)} stale / "
              f"{int(signals.get('nodes_unreachable') or 0)} down")
    lines.append(f"fleet · poll {snapshot.poll} · "
                 f"{int(signals.get('nodes_total') or 0)} nodes "
                 f"({counts})")
    lines.append("-" * width)

    for name, label, fmt in _SIGNAL_ROWS:
        value = signals.get(name)
        rendered = fmt.format(value) if value is not None else "   n/a"
        trend = sparkline(history.values(name), width=24)
        lines.append(f"  {label:<15}{rendered}  {trend}")
    lines.append("-" * width)

    lines.append(f"  {'node':<18}{'st':<3}{'hit':>7}{'queue':>7}"
                 f"{'fail':>6}  trend")
    shown = list(snapshot.nodes.values())[:max_nodes]
    for node in shown:
        ratio = _node_signal(node, "cache_hit_ratio")
        depth = _node_signal(node, "queue_depth")
        hit = f"{ratio:6.1%}" if ratio is not None else "   n/a"
        queue = f"{depth:7.0f}" if depth is not None else "    n/a"
        trend = sparkline(
            history.values(f"node:{node.name}:cache_hit_ratio"),
            width=16, lo=0.0, hi=1.0)
        glyph = _STATUS_GLYPH.get(node.status, "?")
        lines.append(f"  {node.name:<18}{glyph:<3}{hit:>7}{queue:>7}"
                     f"{node.failures:>6}  {trend}")
    hidden = len(snapshot.nodes) - len(shown)
    if hidden > 0:
        lines.append(f"  … {hidden} more nodes")
    lines.append("-" * width)

    if snapshot.active_alerts:
        lines.append("  ALERTS")
        for alert in snapshot.active_alerts:
            lines.append(
                f"  [{alert['state']:>7}] {alert['rule']} "
                f"({alert['instance']}) value={alert['value']:.4g} "
                f"threshold={alert['threshold']:.4g} "
                f"since poll {alert['since_poll']}")
    else:
        lines.append("  no active alerts")
    return "\n".join(lines)
