"""A black-box flight recorder for the telemetry plane.

Crash postmortems (the DESIGN.md §9 crash matrix) can replay every
*on-disk* consequence of a kill, but the in-memory telemetry — the
spans and events of the last few seconds before the process died — is
exactly what a JSONL sink had not flushed yet.  The flight recorder
closes that gap: a bounded ring buffer of the most recent trace
records that can be dumped (records + a metrics-registry snapshot) on
demand, on an unhandled exception, or on ``SIGUSR2`` — the black-box
shape production block-storage daemons ship.

A :class:`FlightRecorder` *is* a tracer sink (``append`` /
``maybe_autoflush`` / ``flush`` / ``close``), so it can be enabled
directly::

    rec = FlightRecorder(capacity=4096)
    TRACER.enable(rec)

or tee into an existing durable sink, keeping the JSONL file as the
full record and the ring as the crash tail::

    TRACER.enable(FlightRecorder(inner=JsonlSink(path)))

``install()`` registers the process-wide dump triggers;
:func:`get_recorder` is how the telemetry endpoint's ``/traces`` route
finds the ring.

The hot-path contract matches the sinks in :mod:`repro.metrics.tracing`:
``append`` is one (or, teed, two) GIL-atomic ``deque.append``/
``list.append`` calls, no locks, no serialization.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from collections import deque
from typing import Any

from repro.metrics.registry import get_registry

_DEFAULT_CAPACITY = 4096


class FlightRecorder:
    """Bounded ring of recent trace records, dumpable on demand."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY, *,
                 inner: Any | None = None,
                 dump_dir: str | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.inner = inner
        self.dump_dir = dump_dir or "."
        self._ring: deque[dict] = deque(maxlen=capacity)
        self.seen = 0  # total records ever appended (ring may be full)
        self.dumps = 0
        self._dump_lock = threading.Lock()
        self._prev_excepthook = None
        self._prev_sig_handler = None
        self._installed_signum: int | None = None
        if inner is None:
            self.append = self._append_ring_only
        else:
            self.append = self._append_teed

    # -- sink protocol (hot path) ----------------------------------------

    def _append_ring_only(self, rec: dict) -> None:
        self.seen += 1
        self._ring.append(rec)

    def _append_teed(self, rec: dict) -> None:
        self.seen += 1
        self._ring.append(rec)
        self.inner.append(rec)

    def maybe_autoflush(self) -> None:
        if self.inner is not None:
            self.inner.maybe_autoflush()

    def flush(self) -> None:
        if self.inner is not None:
            self.inner.flush()

    def close(self) -> None:
        if self.inner is not None:
            self.inner.close()

    # -- inspection ------------------------------------------------------

    def records(self, n: int | None = None) -> list[dict]:
        """The most recent records, oldest first (a consistent copy;
        ``n`` limits to the last n)."""
        out = list(self._ring)
        if n is not None and n >= 0:
            out = out[len(out) - min(n, len(out)):]
        return out

    def snapshot(self, *, reason: str = "manual") -> dict:
        """The dump payload: recent records plus a metrics snapshot."""
        return {
            "reason": reason,
            "pid": os.getpid(),
            "unix_time": time.time(),
            "capacity": self.capacity,
            "records_seen": self.seen,
            "records": self.records(),
            "metrics": get_registry().snapshot(),
        }

    # -- dumping ---------------------------------------------------------

    def dump(self, path: str | None = None, *,
             reason: str = "manual") -> str:
        """Write the snapshot as JSON; returns the path written.

        Serialized under a lock so a signal-triggered dump and an
        excepthook dump racing each other produce two whole files, not
        one interleaved mess.
        """
        with self._dump_lock:
            self.dumps += 1
            if path is None:
                path = os.path.join(
                    self.dump_dir,
                    f"flightrec-{os.getpid()}-{self.dumps:03d}.json")
            snap = self.snapshot(reason=reason)
            tmp = f"{path}.tmp"
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(snap, f, indent=2, sort_keys=True,
                          default=str)
                f.write("\n")
            os.replace(tmp, path)  # a dump is all-or-nothing on disk
            return path

    # -- process-wide triggers -------------------------------------------

    def install(self, *, signum: int | None = signal.SIGUSR2,
                excepthook: bool = True) -> "FlightRecorder":
        """Register this recorder process-wide: ``/traces`` finds it
        via :func:`get_recorder`, ``signum`` (default ``SIGUSR2``;
        None skips) triggers a dump, and with ``excepthook`` an
        unhandled exception on the main thread dumps before the
        traceback prints.  Returns self for chaining."""
        global _RECORDER
        _RECORDER = self
        if signum is not None:
            try:
                self._prev_sig_handler = signal.signal(
                    signum, self._on_signal)
                self._installed_signum = signum
            except ValueError:
                # Not the main thread: signal triggers unavailable,
                # manual dump() and the excepthook still work.
                self._installed_signum = None
        if excepthook:
            self._prev_excepthook = sys.excepthook
            sys.excepthook = self._on_exception
        return self

    def uninstall(self) -> None:
        global _RECORDER
        if _RECORDER is self:
            _RECORDER = None
        if self._installed_signum is not None:
            try:
                signal.signal(self._installed_signum,
                              self._prev_sig_handler or signal.SIG_DFL)
            except ValueError:
                pass
            self._installed_signum = None
        if self._prev_excepthook is not None:
            sys.excepthook = self._prev_excepthook
            self._prev_excepthook = None

    def _on_signal(self, signum, frame) -> None:
        # Dump from the signal handler directly: the GIL makes the
        # ring copy safe, and json/file I/O are re-entrant enough for
        # a diagnostics path (the dump lock bounds the damage if a
        # second signal lands mid-dump).
        self.dump(reason=f"signal {signum}")

    def _on_exception(self, exc_type, exc, tb) -> None:
        try:
            path = self.dump(reason=f"unhandled {exc_type.__name__}: "
                                    f"{exc}")
            print(f"flight recorder dumped to {path}",
                  file=sys.stderr)
        except Exception:  # never shadow the real traceback
            pass
        (self._prev_excepthook or sys.__excepthook__)(exc_type, exc, tb)


_RECORDER: FlightRecorder | None = None


def get_recorder() -> FlightRecorder | None:
    """The installed process-wide recorder, if any (see
    :meth:`FlightRecorder.install`)."""
    return _RECORDER
