"""A process-wide, thread-safe metrics registry.

The paper's claims are accounting claims — working-set sizes (Table 1),
cache-creation overhead (Figure 8), per-layer storage traffic and the
partial-cluster RMW pathology (Figure 9) — and before this module each
layer kept its own ad-hoc counters (``DriverStats``, ``TransportStats``,
``ExportStats``).  The registry is the single surface those numbers are
published through: benchmarks, experiment logs, and the live exporters
all read the same families.

Two integration styles coexist on purpose:

* **primitives** (:class:`Counter`, :class:`Gauge`,
  :class:`~repro.metrics.collectors.LatencyHistogram`) for code that is
  not on a datapath hot loop — schedulers, warmers, quota events.  Each
  primitive has its own lock; ``inc()`` is safe from any thread.
* **collectors** for the existing per-instance stats objects on hot
  paths (``transport_stats``, ``ExportStats``, ``DriverStats``).  Those
  keep their plain-attribute speed; a collector is a zero-argument
  callable the registry invokes at scrape time to turn the live object
  into samples.  Collectors hold weak references to their subjects, so
  registering an image or server never extends its lifetime — a dead
  collector (returns ``None``) is pruned at the next scrape.

Exporters: :meth:`MetricsRegistry.snapshot` (plain dicts, feeds
experiment logs) and :meth:`MetricsRegistry.render_prometheus`
(text exposition format).

Label sets are immutable per metric instance: ``counter(name, **labels)``
is get-or-create keyed on ``(name, sorted labels)``, the Prometheus
family model.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from repro.metrics.collectors import LatencyHistogram

#: One exported measurement: (metric name, label dict, value).
Sample = tuple[str, dict[str, str], float]

#: A scrape-time adapter: returns samples, or None once its subject died
#: (the registry then unregisters it).
Collector = Callable[[], "Iterable[Sample] | None"]


class Counter:
    """A monotonically increasing, thread-safe counter."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}{self.labels}={self.value})"


class Gauge:
    """A thread-safe gauge: settable, incrementable, decrementable."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}{self.labels}={self.value})"


_KINDS = {"counter": Counter, "gauge": Gauge,
          "histogram": LatencyHistogram}


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Families of named, labeled metrics plus scrape-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        # name -> (kind, {label_key -> metric instance})
        self._families: dict[str, tuple[str, dict]] = {}
        self._collectors: list[Collector] = []
        self._help: dict[str, str] = {}

    # -- primitives ------------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(name, "counter", labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(name, "gauge", labels)

    def histogram(self, name: str, **labels: str) -> LatencyHistogram:
        return self._get_or_create(name, "histogram", labels)

    def _get_or_create(self, name: str, kind: str, labels: dict):
        labels = {k: str(v) for k, v in labels.items()}
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (kind, {})
                self._families[name] = family
            elif family[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family[0]}, not {kind}")
            metric = family[1].get(key)
            if metric is None:
                if kind == "histogram":
                    metric = LatencyHistogram()
                else:
                    metric = _KINDS[kind](name, labels)
                family[1][key] = metric
            return metric

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to a series name (primitives and
        collector-produced series alike).  Undescribed series render a
        help line derived from the name."""
        with self._lock:
            self._help[name] = help_text

    # -- collectors ------------------------------------------------------

    def register_collector(self, fn: Collector) -> Collector:
        """Add a scrape-time sample source; returns ``fn`` as a handle
        for :meth:`unregister_collector`."""
        with self._lock:
            self._collectors.append(fn)
        return fn

    def unregister_collector(self, fn: Collector) -> None:
        with self._lock:
            try:
                self._collectors.remove(fn)
            except ValueError:
                pass

    # -- export ----------------------------------------------------------

    def samples(self) -> list[Sample]:
        """Every current sample: primitives expanded (histograms become
        ``_count``/``_sum_seconds``/quantile series) plus whatever the
        live collectors report.  Dead collectors are pruned here."""
        out: list[Sample] = []
        with self._lock:
            families = [(name, kind, dict(metrics))
                        for name, (kind, metrics)
                        in sorted(self._families.items())]
            collectors = list(self._collectors)
        for name, kind, metrics in families:
            for key, metric in sorted(metrics.items()):
                labels = dict(key)
                if kind == "histogram":
                    out.extend(_histogram_samples(name, labels, metric))
                else:
                    out.append((name, labels, metric.value))
        dead: list[Collector] = []
        for fn in collectors:
            produced = fn()
            if produced is None:
                dead.append(fn)
                continue
            for name, labels, value in produced:
                out.append((name, dict(labels), float(value)))
        for fn in dead:
            self.unregister_collector(fn)
        return out

    def snapshot(self) -> dict:
        """Nested plain-dict view: name -> list of {labels, value}."""
        grouped: dict[str, list[dict]] = {}
        for name, labels, value in self.samples():
            grouped.setdefault(name, []).append(
                {"labels": labels, "value": value})
        return grouped

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Valid exposition output, not just one line per sample: samples
        are grouped so every series name forms one contiguous block
        (primitives and collector-produced samples of the same name
        merge into one), each block preceded by its ``# HELP`` and
        ``# TYPE`` lines — a scraper that rejects interleaved families
        or typeless series accepts this output.  Label values are
        escaped per the spec (``\\``, ``\"``, ``\\n``); ``inf``/``nan``
        render as ``+Inf``/``-Inf``/``NaN``.
        """
        with self._lock:
            kinds = {name: kind
                     for name, (kind, _m) in self._families.items()}
            help_texts = dict(self._help)
        groups: dict[str, list[Sample]] = {}
        for sample in self.samples():
            groups.setdefault(sample[0], []).append(sample)
        lines: list[str] = []
        for name in sorted(groups):
            help_text = help_texts.get(name) \
                or help_texts.get(_family_of(name)) \
                or name.replace("_", " ")
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {_series_kind(name, kinds)}")
            for _name, labels, value in groups[name]:
                if labels:
                    rendered = ",".join(
                        f'{k}="{_escape(v)}"'
                        for k, v in sorted(labels.items()))
                    lines.append(f"{name}{{{rendered}}} {_fmt(value)}")
                else:
                    lines.append(f"{name} {_fmt(value)}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every family and collector (test isolation)."""
        with self._lock:
            self._families.clear()
            self._collectors.clear()


def _histogram_samples(name: str, labels: dict[str, str],
                       hist: LatencyHistogram) -> list[Sample]:
    summ = hist.summary()
    out: list[Sample] = [
        (f"{name}_count", labels, float(summ["count"])),
        (f"{name}_mean_ms", labels, summ["mean_ms"]),
        (f"{name}_max_ms", labels, summ["max_ms"]),
    ]
    for q in ("p50", "p90", "p99"):
        qlabels = dict(labels)
        qlabels["quantile"] = q
        out.append((f"{name}_ms", qlabels, summ[f"{q}_ms"]))
    return out


def latency_samples(name: str, labels: dict[str, str],
                    hists: "dict[str, LatencyHistogram]") -> list[Sample]:
    """Scrape-time samples for a per-op-kind histogram dict (the
    ``op_latency_histograms()`` shape the transports keep)."""
    out: list[Sample] = []
    for kind, hist in hists.items():
        summ = hist.summary()
        if not summ["count"]:
            continue
        kl = dict(labels, op=kind)
        out.append((f"{name}_count", kl, float(summ["count"])))
        out.append((f"{name}_mean_ms", kl, summ["mean_ms"]))
        out.append((f"{name}_p99_ms", kl, summ["p99_ms"]))
    return out


def _family_of(name: str) -> str:
    for suffix in ("_count", "_mean_ms", "_max_ms", "_ms"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def _series_kind(name: str, kinds: dict[str, str]) -> str:
    """The ``# TYPE`` for one series name.

    Registered primitives know their kind; a histogram's derived
    series are typed individually (``_count`` is monotonic, the rest
    are point-in-time); collector-produced series fall back on the
    naming convention (``_total``/``_count`` → counter).
    """
    kind = kinds.get(name)
    if kind in ("counter", "gauge"):
        return kind
    if kinds.get(_family_of(name)) == "histogram":
        return "counter" if name.endswith("_count") else "gauge"
    if name.endswith(("_total", "_count")):
        return "counter"
    return "gauge"


def _escape(value: str) -> str:
    """Label-value escaping per the exposition format: backslash
    first, then quote and newline (order matters — escaping the quote
    introduces backslashes that must not be re-escaped)."""
    return str(value).replace("\\", r"\\").replace('"', r"\"") \
        .replace("\n", r"\n")


def _escape_help(text: str) -> str:
    # HELP lines escape backslash and newline, but NOT quotes.
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _fmt(value: float) -> str:
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value.is_integer():
        return str(int(value))
    return repr(value)


# -- the process-wide default registry --------------------------------------

_REGISTRY = MetricsRegistry()
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every layer publishes into."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the old one."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        old, _REGISTRY = _REGISTRY, registry
    return old
