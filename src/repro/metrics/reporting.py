"""Paper-style formatting and shape assertions for benchmark output."""

from __future__ import annotations

from repro.metrics.collectors import ExperimentLog, Series


def format_series_table(log: ExperimentLog,
                        x_label: str = "x") -> str:
    """Render a figure's curves as an aligned text table.

    One row per x value, one column per series — the textual analogue
    of the paper's plots.
    """
    xs = sorted({x for s in log.series for x in s.xs()})
    name_width = max((len(s.name) for s in log.series), default=4)
    header = f"{x_label:>8} | " + " | ".join(
        f"{s.name:>{max(name_width, 12)}}" for s in log.series)
    lines = [f"== {log.experiment_id}: {log.title} ==", header,
             "-" * len(header)]
    for x in xs:
        cells = []
        for s in log.series:
            try:
                cells.append(
                    f"{s.y_at(x):>{max(name_width, 12)}.1f}")
            except KeyError:
                cells.append(" " * max(name_width, 12))
        lines.append(f"{x:>8.0f} | " + " | ".join(cells))
    for name, value in sorted(log.scalars.items()):
        lines.append(f"{name}: {value:.2f}")
    for note in log.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def format_comparison(name: str, paper_value: float,
                      measured: float, unit: str = "") -> str:
    """One paper-vs-measured line with the ratio."""
    ratio = measured / paper_value if paper_value else float("inf")
    return (f"{name}: paper={paper_value:g}{unit} "
            f"measured={measured:g}{unit} (x{ratio:.2f})")


def shape_check(condition: bool, description: str) -> None:
    """Assert a qualitative claim about a reproduced figure.

    Benchmarks use this instead of bare asserts so a failed shape gives
    a message naming the paper claim that broke.
    """
    if not condition:
        raise AssertionError(f"shape check failed: {description}")


def relative_error(paper_value: float, measured: float) -> float:
    if paper_value == 0:
        return float("inf")
    return abs(measured - paper_value) / abs(paper_value)


def crossover_x(a: Series, b: Series) -> float | None:
    """First shared x where series ``a`` rises above series ``b``.

    Used for claims like "starting from 16 VMIs, the storage node's
    disk becomes the primary bottleneck".
    """
    common = sorted(set(a.xs()) & set(b.xs()))
    for x in common:
        if a.y_at(x) > b.y_at(x):
            return x
    return None
