"""An embedded /metrics + /healthz + /traces endpoint.

A storage node is only operable if a scraper and a load balancer can
see inside it without a debugger.  :class:`TelemetryServer` is the
smallest honest version of that: a stdlib ``http.server`` on a daemon
thread (zero dependencies, one port) serving

- ``GET /metrics`` — the registry's Prometheus text exposition
  (``text/plain; version=0.0.4``), straight from
  :meth:`MetricsRegistry.render_prometheus`;
- ``GET /healthz`` — a JSON health document from a caller-supplied
  callable (:meth:`repro.remote.server.BlockServer.health`), with the
  HTTP status doing the load-balancer signalling: 200 when
  ``status == "ok"``, 503 when degraded;
- ``GET /traces?n=K`` — the last K records from a flight recorder or
  trace sink as JSONL, for a quick "what was this node just doing"
  without shelling in.

Rendering happens on the HTTP thread at scrape time; the datapath
never blocks on an observer (same weakref-collector contract as the
registry itself).  ``close()`` is synchronous: after it returns, the
port is released and the serving thread has exited.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs, urlparse

from repro.metrics.registry import MetricsRegistry, get_registry

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_DEFAULT_TRACE_TAIL = 256


class TelemetryServer:
    """Serve /metrics, /healthz, and /traces from a daemon thread.

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after construction — handy for tests).  ``health`` is a callable
    returning a JSON-serializable dict with a top-level ``status``
    key; ``traces`` is anything with a ``records(n)`` method (a
    :class:`repro.metrics.flight_recorder.FlightRecorder`) and
    defaults at request time to the installed process-wide recorder.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 registry: MetricsRegistry | None = None,
                 health: Callable[[], dict] | None = None,
                 traces: Any | None = None) -> None:
        self.registry = registry if registry is not None else get_registry()
        self.health = health
        self.traces = traces
        telemetry = self

        class _Handler(BaseHTTPRequestHandler):
            # Telemetry must not spam the node's stderr per scrape.
            def log_message(self, fmt, *args):  # noqa: ARG002
                pass

            def do_GET(self):
                try:
                    telemetry._handle(self)
                except BrokenPipeError:
                    pass  # scraper went away mid-response

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"telemetry-{self._httpd.server_address[1]}",
            daemon=True)
        self._thread.start()
        self._closed = False

    # -- address ---------------------------------------------------------

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    # -- request handling ------------------------------------------------

    def _handle(self, req: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(req.path)
        # Self-observability (incremented *before* rendering so even a
        # failing render leaves evidence of aggregator-induced load):
        # every scrape is itself a sample in the next scrape.
        known = parsed.path in ("/metrics", "/healthz", "/traces")
        path_label = parsed.path if known else "other"
        self.registry.counter("telemetry_scrapes_total",
                              path=path_label).inc()
        started = time.perf_counter()
        try:
            if parsed.path == "/metrics":
                body = self.registry.render_prometheus().encode("utf-8")
                self._reply(req, 200, PROMETHEUS_CONTENT_TYPE, body)
            elif parsed.path == "/healthz":
                self._handle_healthz(req)
            elif parsed.path == "/traces":
                self._handle_traces(req, parsed.query)
            else:
                self._reply(req, 404, "text/plain; charset=utf-8",
                            b"not found; try /metrics /healthz /traces\n")
        finally:
            self.registry.histogram(
                "telemetry_render_seconds", path=path_label).observe(
                    time.perf_counter() - started)

    def _handle_healthz(self, req: BaseHTTPRequestHandler) -> None:
        if self.health is None:
            doc = {"status": "ok", "detail": "no health callable wired"}
        else:
            try:
                doc = self.health()
            except Exception as exc:
                doc = {"status": "degraded",
                       "detail": f"health callable raised: {exc!r}"}
        status = 200 if doc.get("status") == "ok" else 503
        body = (json.dumps(doc, indent=2, sort_keys=True, default=str)
                + "\n").encode("utf-8")
        self._reply(req, status, "application/json; charset=utf-8", body)

    def _handle_traces(self, req: BaseHTTPRequestHandler,
                       query: str) -> None:
        n = _DEFAULT_TRACE_TAIL
        raw = parse_qs(query).get("n")
        if raw:
            try:
                n = max(0, int(raw[0]))
            except ValueError:
                self._reply(req, 400, "text/plain; charset=utf-8",
                            b"n must be an integer\n")
                return
        source = self.traces
        if source is None:
            from repro.metrics.flight_recorder import get_recorder
            source = get_recorder()
        if source is None:
            self._reply(req, 503, "text/plain; charset=utf-8",
                        b"no trace source wired\n")
            return
        lines = [json.dumps(rec, sort_keys=True, default=str)
                 for rec in source.records(n)]
        body = ("\n".join(lines) + ("\n" if lines else "")).encode("utf-8")
        self._reply(req, 200, "application/jsonl; charset=utf-8", body)

    @staticmethod
    def _reply(req: BaseHTTPRequestHandler, status: int,
               content_type: str, body: bytes) -> None:
        req.send_response(status)
        req.send_header("Content-Type", content_type)
        req.send_header("Content-Length", str(len(body)))
        req.end_headers()
        req.wfile.write(body)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
