"""Fixed-size per-series time-series storage for the fleet aggregator.

A fleet poller cannot keep unbounded history for thousands of nodes;
:class:`SeriesRing` is a fixed-capacity ring of ``(t, value)`` points
(oldest overwritten first) with the two derived quantities alert rules
and dashboards need:

* :meth:`SeriesRing.delta` — counter *increase* over a window, aware
  of counter resets (a node restart drops its cumulative counters to
  zero; the increase after a reset is the post-reset value, never a
  huge negative);
* :meth:`SeriesRing.rate` — that increase divided by the window's
  wall-clock span.

:class:`SeriesStore` keys rings by ``(name, labels)`` — one store per
scraped node — and answers the fleet-level questions ("sum of the
latest values of this family", "summed increase over the last N
polls") the derived-signal layer is built on.  Neither class locks:
the aggregator mutates a store only from its poll loop and hands
consumers immutable snapshots of the numbers they need.
"""

from __future__ import annotations

from repro.metrics.registry import Sample

__all__ = ["SeriesRing", "SeriesStore"]


class SeriesRing:
    """Fixed-capacity ring of ``(t, value)`` observations."""

    __slots__ = ("capacity", "_ts", "_vs", "_start", "_count")

    def __init__(self, capacity: int = 240) -> None:
        if capacity < 2:
            raise ValueError(
                f"a series ring needs >= 2 points for deltas, "
                f"got capacity {capacity}")
        self.capacity = capacity
        self._ts: list[float] = [0.0] * capacity
        self._vs: list[float] = [0.0] * capacity
        self._start = 0  # index of the oldest retained point
        self._count = 0

    def append(self, t: float, value: float) -> None:
        idx = (self._start + self._count) % self.capacity
        self._ts[idx] = float(t)
        self._vs[idx] = float(value)
        if self._count < self.capacity:
            self._count += 1
        else:
            self._start = (self._start + 1) % self.capacity

    def __len__(self) -> int:
        return self._count

    def _at(self, i: int) -> tuple[float, float]:
        idx = (self._start + i) % self.capacity
        return self._ts[idx], self._vs[idx]

    def points(self, n: int | None = None) -> list[tuple[float, float]]:
        """The last ``n`` (default: all) retained points, oldest
        first."""
        count = self._count if n is None else min(n, self._count)
        return [self._at(i)
                for i in range(self._count - count, self._count)]

    def values(self, n: int | None = None) -> list[float]:
        return [v for _t, v in self.points(n)]

    def latest(self) -> tuple[float, float] | None:
        if not self._count:
            return None
        return self._at(self._count - 1)

    def delta(self, n: int | None = None) -> float | None:
        """Counter increase over the last ``n`` points (None = whole
        ring), reset-aware.

        A drop between consecutive points is treated as a counter
        reset: the post-reset value is counted as the increase since
        the reset (the Prometheus ``increase()`` convention).  Needs
        at least two points; returns None below that.
        """
        pts = self.points(n)
        if len(pts) < 2:
            return None
        total = 0.0
        prev = pts[0][1]
        for _t, v in pts[1:]:
            total += v if v < prev else v - prev
            prev = v
        return total

    def rate(self, n: int | None = None) -> float | None:
        """Reset-aware increase per second over the last ``n``
        points; None when the window has fewer than two points or no
        time span."""
        pts = self.points(n)
        if len(pts) < 2:
            return None
        span = pts[-1][0] - pts[0][0]
        if span <= 0:
            return None
        delta = self.delta(n)
        return None if delta is None else delta / span


class SeriesStore:
    """Rings keyed by ``(series name, sorted labels)`` for one node."""

    __slots__ = ("capacity", "_rings")

    def __init__(self, capacity: int = 240) -> None:
        self.capacity = capacity
        self._rings: dict[
            tuple[str, tuple[tuple[str, str], ...]], SeriesRing] = {}

    def observe(self, t: float, samples: "list[Sample]") -> None:
        """Append one scrape's samples at timestamp ``t``."""
        for name, labels, value in samples:
            key = (name, tuple(sorted(labels.items())))
            ring = self._rings.get(key)
            if ring is None:
                ring = self._rings[key] = SeriesRing(self.capacity)
            ring.append(t, value)

    def __len__(self) -> int:
        return len(self._rings)

    def families(self) -> list[str]:
        return sorted({name for name, _labels in self._rings})

    def ring(self, name: str, **labels: str) -> SeriesRing | None:
        key = (name, tuple(sorted(
            (k, str(v)) for k, v in labels.items())))
        return self._rings.get(key)

    def rings(self, name: str) -> list[tuple[dict[str, str], SeriesRing]]:
        """Every labeled ring of one series name."""
        return [(dict(key[1]), ring)
                for key, ring in self._rings.items()
                if key[0] == name]

    # -- family aggregates (one node, across label sets) -----------------

    def latest_sum(self, name: str) -> float | None:
        """Sum of the latest value across the family's label sets;
        None if the family was never scraped."""
        rings = [r for _l, r in self.rings(name)]
        if not rings:
            return None
        total = 0.0
        for ring in rings:
            latest = ring.latest()
            if latest is not None:
                total += latest[1]
        return total

    def delta_sum(self, name: str, n: int | None = None) -> float | None:
        """Summed reset-aware increase across the family's label sets
        over the last ``n`` points; None if no ring has two points."""
        deltas = [d for _l, r in self.rings(name)
                  if (d := r.delta(n)) is not None]
        if not deltas:
            return None
        return sum(deltas)

    def rate_sum(self, name: str, n: int | None = None) -> float | None:
        rates = [r_ for _l, r in self.rings(name)
                 if (r_ := r.rate(n)) is not None]
        if not rates:
            return None
        return sum(rates)

    def first_present(self, names: "tuple[str, ...] | list[str]",
                      ) -> str | None:
        """The first family name (in preference order) this node has
        ever published, or None."""
        for name in names:
            if any(key[0] == name for key in self._rings):
                return name
        return None
