"""A low-overhead structured event/span bus with causal IDs.

Every layer of the stack reports into one tracer: a deployment wave
opens a span, each VM boot is a child span (with per-phase children),
and the block layer underneath emits per-read events that inherit the
enclosing span — so one JSONL trace file can be reconstructed into the
full causal chain *deploy → node → VM → chain → individual reads*
(:mod:`repro.metrics.boot_report` does exactly that).

Overhead contract (the observability budget of DESIGN.md §8):

* **disabled** (the default), the only cost at an instrumentation site
  is ``if TRACER.enabled:`` — one attribute load and a branch, no
  allocation, no call.  A regression test asserts the qcow2 read hot
  path allocates nothing extra per read with tracing off.
* **enabled**, an event is one clock read, one small dict, and one
  bare (GIL-atomic) list append; serialization to JSON is deferred to
  ``flush()``/``close()`` and buffer bounding to span closes, so the
  qcow2 read hot path stays within a ≤5 % slowdown budget — tracked by
  ``benchmarks/bench_ext_tracing.py``.

Clocks.  Wall-clock spans use ``time.perf_counter`` via the
:meth:`Tracer.span` context manager.  The simulator records spans with
*virtual* timestamps instead: :meth:`Tracer.record_span` takes explicit
``start``/``end`` values (``env.now``) and an explicit parent, because
simulated VM boots interleave on one thread and context-manager nesting
would lie about causality.  Records carry a ``clock`` attribute
(``"wall"`` or ``"sim"``) so consumers never compare timestamps across
domains.

IDs are deterministic counters (``t0001``/``s0001``…), not random —
traces of identical runs are diffable.  Because two *processes* both
start their counters at 1, cross-process deployments give each tracer
an ``id_prefix`` (``enable(sink, id_prefix="srv-")``) so a storage
node's ids can never collide with a client's; traces recorded without
prefixes can still be merged after the fact
(:func:`repro.metrics.boot_report.merge_traces` rewrites one side).

Cross-process propagation: a span's ``(trace_id, span_id)`` travels
over the v3 wire protocol (DESIGN.md §10), and the receiving server
re-enters the trace with :meth:`Tracer.propagated_span` — a span whose
trace id and parent are the *remote* caller's, pushed on the local
thread's stack so everything underneath (driver ``block.read`` events,
nested spans) attaches to the caller's causal chain.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from threading import get_ident
from typing import Any, Callable, Iterable, Iterator

#: Flush the in-memory buffer to disk once it holds this many records
#: (checked at span closes, not per event).
_AUTOFLUSH_RECORDS = 65536

CLOCK_WALL = "wall"
CLOCK_SIM = "sim"


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------


class ListSink:
    """Collect records in memory (tests, report building).

    ``append`` is a bare ``list.append`` — atomic under the GIL, so no
    lock is needed on the instrumented path.
    """

    def __init__(self) -> None:
        self.records: list[dict] = []
        self.append = self.records.append

    def maybe_autoflush(self) -> None:
        pass  # in-memory, unbounded by design

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlSink:
    """Buffer records and write them as JSON Lines on flush/close.

    ``append`` is a bare, lock-free ``list.append`` (atomic under the
    GIL) so the instrumented path pays no method call and no lock; JSON
    encoding and file I/O happen at flush.  Memory stays bounded via
    :meth:`maybe_autoflush`, which the tracer calls at span closes —
    off the per-event hot path.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._buffer: list[dict] = []
        self.append = self._buffer.append
        # Truncate up front so a crash mid-run leaves a (possibly
        # empty) file, not a stale previous trace.
        with open(path, "w", encoding="utf-8"):
            pass

    def maybe_autoflush(self) -> None:
        if len(self._buffer) >= _AUTOFLUSH_RECORDS:
            self.flush()

    def flush(self) -> None:
        with self._lock:
            buf = self._buffer
            if not buf:
                return
            lines = [json.dumps(rec, separators=(",", ":"),
                                sort_keys=True) for rec in buf]
            # Clear in place: the tracer holds a bound append to this
            # exact list, so its identity must survive the flush.  (A
            # record appended concurrently with the clear can be lost;
            # flushes happen at quiescent points.)
            del buf[:]
            with open(self.path, "a", encoding="utf-8") as f:
                f.write("\n".join(lines) + "\n")

    def close(self) -> None:
        self.flush()


# ---------------------------------------------------------------------------
# the tracer
# ---------------------------------------------------------------------------


class Span:
    """An open span on the per-thread context stack."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start",
                 "attrs", "ctx")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: str | None, start: float,
                 attrs: dict[str, Any]) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.attrs = attrs
        # Lazily built (trace_id, span_id) tuple, cached so every wire
        # request issued under this span carries the *same* tuple
        # object — the protocol's encode memo keys on identity.
        self.ctx: tuple[str, str] | None = None


class Tracer:
    """The event/span bus.  One instance (:data:`TRACER`) is global.

    ``enabled`` is a plain attribute on purpose: instrumentation sites
    guard with ``if TRACER.enabled:`` and must pay nothing else when
    tracing is off.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._sink: ListSink | JsonlSink | None = None
        self._append: Callable[[dict], None] | None = None
        self._clock: Callable[[], float] = time.perf_counter
        # Per-thread span stacks, keyed by thread id.  A plain dict +
        # get_ident() costs ~1/4 of a threading.local attribute lookup
        # on the event hot path; individual get/set are GIL-atomic.
        # Entries for finished threads linger as empty lists (bounded
        # by thread count; cleared on disable()).
        self._stacks: dict[int, list[Span]] = {}
        # itertools.count: next() is a single GIL-atomic C call, so id
        # allocation needs no lock on the propagated-span hot path.
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._id_prefix = ""

    # -- lifecycle -------------------------------------------------------

    def enable(self, sink: "ListSink | JsonlSink",
               clock: Callable[[], float] | None = None, *,
               id_prefix: str | None = None) -> None:
        """Start recording into ``sink``.  ``clock`` overrides the
        wall clock (rarely needed; the simulator passes explicit
        timestamps to :meth:`record_span` instead).  ``id_prefix``
        namespaces this process's generated ids (``srv-t0001``…) so
        traces from several processes merge without collisions."""
        self._sink = sink
        self._append = sink.append  # bound once, saves a lookup/event
        if clock is not None:
            self._clock = clock
        if id_prefix is not None:
            self._id_prefix = id_prefix
        self.enabled = True

    def disable(self) -> "ListSink | JsonlSink | None":
        """Stop recording; flushes and returns the sink."""
        self.enabled = False
        sink, self._sink = self._sink, None
        self._append = None
        self._clock = time.perf_counter
        self._id_prefix = ""
        # Open spans keep their list reference and unwind safely; new
        # threads start clean.
        self._stacks = {}
        if sink is not None:
            sink.flush()
        return sink

    def flush(self) -> None:
        sink = self._sink
        if sink is not None:
            sink.flush()

    # -- ids and context -------------------------------------------------

    def _new_trace_id(self) -> str:
        return f"{self._id_prefix}t{next(self._trace_ids):04d}"

    def _new_span_id(self) -> str:
        return f"{self._id_prefix}s{next(self._span_ids):06d}"

    def _stack(self) -> list[Span]:
        stacks = self._stacks
        tid = get_ident()
        stack = stacks.get(tid)
        if stack is None:
            stack = stacks[tid] = []
        return stack

    def current_span(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stacks.get(get_ident())
        return stack[-1] if stack else None

    # -- spans -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a wall-clock span; nests via the per-thread stack."""
        if not self.enabled:
            # A fresh throwaway span, so callers may still annotate
            # ``span.attrs`` unconditionally (span call sites are off
            # the hot path; the per-event zero-allocation contract is
            # the callers' ``if TRACER.enabled:`` guard).
            yield Span(name, "", "", None, 0.0, attrs)
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(
            name,
            parent.trace_id if parent else self._new_trace_id(),
            self._new_span_id(),
            parent.span_id if parent else None,
            self._clock(),
            attrs,
        )
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            self._emit_span(span, self._clock(), CLOCK_WALL)

    @contextmanager
    def propagated_span(self, name: str, trace_id: str,
                        parent_id: str | None,
                        **attrs: Any) -> Iterator[Span]:
        """Open a span whose trace and parent come from a *remote*
        caller (the v3 wire protocol's trace-context field).

        The span gets a locally generated id but the caller's trace id
        and parent, and is pushed on this thread's stack like any other
        span — driver events and nested spans underneath attach to the
        remote caller's causal chain.  The record is marked with a
        ``propagated: true`` attr so :func:`boot_report.merge_traces`
        can tell remote-rooted server spans from server-local ones when
        rewriting colliding ids.
        """
        if not self.enabled:
            yield Span(name, "", "", None, 0.0, attrs)
            return
        span = self.begin_propagated(name, trace_id, parent_id, attrs)
        try:
            yield span
        finally:
            self.end_propagated(span)

    def begin_propagated(self, name: str, trace_id: str,
                         parent_id: str | None,
                         attrs: dict[str, Any]) -> Span:
        """Open a propagated span without the context-manager wrapper.

        The explicit begin/end pair exists for per-request hot paths
        (the block server opens one propagated span per served v3
        request); the generator machinery behind ``@contextmanager``
        costs several times the span bookkeeping itself.  Callers must
        pair with :meth:`end_propagated` in a ``finally``.
        """
        attrs["propagated"] = True
        span = Span(name, trace_id, self._new_span_id(), parent_id,
                    self._clock(), attrs)
        self._stack().append(span)
        return span

    def end_propagated(self, span: Span) -> None:
        self._stack().pop()
        self._emit_span(span, self._clock(), CLOCK_WALL)

    def close_propagated(self, span: Span) -> float:
        """Pop a propagated span and stamp its end time *without*
        emitting the record yet.

        The block server closes the span before sending the response
        (so the recorded duration covers only the dispatch) but emits
        the record after, where the ~1 µs of dict building and sink
        append overlaps the client's next request instead of sitting
        on the measured round trip.  Pair with :meth:`emit_closed`.
        """
        self._stack().pop()
        return self._clock()

    def emit_closed(self, span: Span, end: float) -> None:
        """Emit the record for a span closed via
        :meth:`close_propagated`."""
        self._emit_span(span, end, CLOCK_WALL)

    def propagation_context(self) -> tuple[str, str] | None:
        """The ``(trace_id, span_id)`` a wire request should carry, or
        None when tracing is off or no span is open on this thread."""
        if not self.enabled:
            return None
        cur = self.current_span()
        if cur is None or not cur.trace_id:
            return None
        ctx = cur.ctx
        if ctx is None:
            ctx = cur.ctx = (cur.trace_id, cur.span_id)
        return ctx

    def allocate_ids(self,
                     trace_id: str | None = None) -> tuple[str, str]:
        """Pre-allocate ``(trace_id, span_id)`` for a span that will be
        recorded later via :meth:`record_span` with ``span_id=``.

        The simulator needs this inversion: a deployment wave's span
        only completes after every interleaved VM boot inside it, yet
        those boots must record child spans parented on the wave.
        """
        return (trace_id or self._new_trace_id(), self._new_span_id())

    def record_span(self, name: str, start: float, end: float, *,
                    trace_id: str | None = None,
                    span_id: str | None = None,
                    parent_id: str | None = None,
                    clock: str = CLOCK_SIM,
                    **attrs: Any) -> tuple[str, str]:
        """Record a completed span with explicit timestamps.

        This is the simulator's interface: boots interleave on one
        thread under virtual time, so causality is passed explicitly.
        Returns ``(trace_id, span_id)`` for parenting further records.
        """
        if not self.enabled:
            return ("", "")
        if trace_id is None:
            cur = self.current_span()
            if parent_id is None and cur is not None:
                trace_id, parent_id = cur.trace_id, cur.span_id
            else:
                trace_id = cur.trace_id if cur else self._new_trace_id()
        if span_id is None:
            span_id = self._new_span_id()
        span = Span(name, trace_id, span_id, parent_id, start, attrs)
        self._emit_span(span, end, clock)
        return (trace_id, span_id)

    def _emit_span(self, span: Span, end: float, clock: str) -> None:
        sink = self._sink
        if sink is None:
            return
        sink.append({
            "type": "span",
            "name": span.name,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "start": span.start,
            "end": end,
            "clock": clock,
            "attrs": span.attrs,
        })
        # Span closes are off the per-event hot path — the right place
        # to bound the sink's buffer.
        sink.maybe_autoflush()

    # -- events ----------------------------------------------------------

    def event(self, name: str, **attrs: Any) -> None:
        """A point event, causally attached to the enclosing span.

        Callers on hot paths must guard with ``if TRACER.enabled:`` —
        this method assumes tracing is on.
        """
        append = self._append
        if append is None:
            return
        stack = self._stacks.get(get_ident())  # current_span, inlined
        cur = stack[-1] if stack else None
        append({
            "type": "event",
            "name": name,
            "trace_id": cur.trace_id if cur else None,
            "parent_id": cur.span_id if cur else None,
            "ts": self._clock(),
            "attrs": attrs,
        })


#: The process-wide tracer.  Hot paths guard on ``TRACER.enabled``.
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


# ---------------------------------------------------------------------------
# trace file schema and validation
# ---------------------------------------------------------------------------

#: JSON Schema (draft-07 subset) for one JSONL trace record.  The CI
#: smoke test validates every record of a traced quickstart run against
#: this; :func:`validate_record` implements the same rules without the
#: ``jsonschema`` dependency for offline environments.
TRACE_RECORD_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro trace record",
    "oneOf": [
        {
            "type": "object",
            "properties": {
                "type": {"const": "span"},
                "name": {"type": "string", "minLength": 1},
                "trace_id": {"type": "string", "minLength": 1},
                "span_id": {"type": "string", "minLength": 1},
                "parent_id": {"type": ["string", "null"]},
                "start": {"type": "number"},
                "end": {"type": "number"},
                "clock": {"enum": [CLOCK_WALL, CLOCK_SIM]},
                "attrs": {"type": "object"},
            },
            "required": ["type", "name", "trace_id", "span_id",
                         "start", "end", "clock", "attrs"],
            "additionalProperties": False,
        },
        {
            "type": "object",
            "properties": {
                "type": {"const": "event"},
                "name": {"type": "string", "minLength": 1},
                "trace_id": {"type": ["string", "null"]},
                "parent_id": {"type": ["string", "null"]},
                "ts": {"type": "number"},
                "attrs": {"type": "object"},
            },
            "required": ["type", "name", "ts", "attrs"],
            "additionalProperties": False,
        },
    ],
}

_SPAN_REQUIRED = {"type", "name", "trace_id", "span_id", "start",
                  "end", "clock", "attrs"}
_SPAN_ALLOWED = _SPAN_REQUIRED | {"parent_id"}
_EVENT_REQUIRED = {"type", "name", "ts", "attrs"}
_EVENT_ALLOWED = _EVENT_REQUIRED | {"trace_id", "parent_id"}


def validate_record(rec: object) -> list[str]:
    """Validation errors for one trace record ([] when valid).

    Implements :data:`TRACE_RECORD_SCHEMA` without third-party
    dependencies so validation also runs where ``jsonschema`` is
    unavailable.
    """
    if not isinstance(rec, dict):
        return [f"record is {type(rec).__name__}, not an object"]
    errors: list[str] = []
    kind = rec.get("type")
    if kind == "span":
        required, allowed = _SPAN_REQUIRED, _SPAN_ALLOWED
    elif kind == "event":
        required, allowed = _EVENT_REQUIRED, _EVENT_ALLOWED
    else:
        return [f"unknown record type {kind!r}"]
    for field in sorted(required - rec.keys()):
        errors.append(f"{kind}: missing field {field!r}")
    for field in sorted(rec.keys() - allowed):
        errors.append(f"{kind}: unexpected field {field!r}")
    for field in ("name", "trace_id", "span_id"):
        if field in rec and field in required \
                and not (isinstance(rec[field], str) and rec[field]):
            errors.append(f"{kind}: {field!r} must be a non-empty string")
    for field in ("start", "end", "ts"):
        if field in rec and field in required \
                and not isinstance(rec[field], (int, float)):
            errors.append(f"{kind}: {field!r} must be a number")
    if "parent_id" in rec and rec["parent_id"] is not None \
            and not isinstance(rec["parent_id"], str):
        errors.append(f"{kind}: 'parent_id' must be a string or null")
    if kind == "span" and rec.get("clock") not in (CLOCK_WALL, CLOCK_SIM):
        errors.append(f"span: 'clock' must be one of "
                      f"({CLOCK_WALL!r}, {CLOCK_SIM!r})")
    if "attrs" in rec and not isinstance(rec["attrs"], dict):
        errors.append(f"{kind}: 'attrs' must be an object")
    return errors


def validate_trace(records: Iterable[object]) -> list[str]:
    """Validate many records; errors are prefixed with their index."""
    errors: list[str] = []
    for i, rec in enumerate(records):
        for err in validate_record(rec):
            errors.append(f"record {i}: {err}")
    return errors


def load_trace(path: str) -> list[dict]:
    """Parse a JSONL trace file into records (no validation)."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not valid JSON: {exc}") from exc
    return records
