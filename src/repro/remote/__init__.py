"""Remote block access: an NBD-style server/client over TCP.

The paper's testbed reads base images over NFS; its prototype lineage
(and much later work, e.g. qemu's own NBD export) serves images over a
block protocol instead.  This package provides that substrate with
real sockets and real bytes:

* :class:`~repro.remote.server.BlockServer` exports local images
  (raw or qcow2, including cache images) under export names;
* :class:`~repro.remote.client.RemoteImage` is a normal
  :class:`~repro.imagefmt.driver.BlockDriver` backed by a connection,
  so a CoW or cache chain can use ``nbd://host:port/export`` as its
  backing file and everything — copy-on-read, quotas, tooling — works
  unchanged over the network.

The substrate is built for the paper's scale-out case: the wire
protocol is versioned — v2 (negotiated at connect) tags requests so a
single connection keeps a bounded window of them in flight and the
server completes them out of order, v3 adds an optional trace-context
field so a client's span ids travel with each request (DESIGN.md §10),
v4 adds negotiated per-chunk compression for WAN-shaped links
(DESIGN.md §12), and v1 lock-step remains as the
fallback and A/B baseline (see :mod:`repro.remote.protocol`) — the
server dispatches reads of one export concurrently (reader-writer
locking; see :mod:`repro.remote.server`), the client has per-operation
deadlines with bounded reconnect-and-replay (see
:mod:`repro.remote.client`), and
:class:`~repro.remote.fault.FaultInjector` lets tests exercise the
failure paths deterministically.
"""

from repro.remote.client import RemoteImage, TransportStats, parse_url
from repro.remote.fault import FaultInjector, FaultStats
from repro.remote.protocol import (
    MAX_VERSION,
    VERSION_1,
    VERSION_2,
    VERSION_3,
    VERSION_4,
    ExportRefusedError,
    ProtocolError,
    RemoteOpError,
)
from repro.remote.rwlock import RWLock
from repro.remote.server import BlockServer, ExportStats

__all__ = [
    "BlockServer",
    "ExportRefusedError",
    "ExportStats",
    "FaultInjector",
    "FaultStats",
    "ProtocolError",
    "RemoteImage",
    "RemoteOpError",
    "RWLock",
    "TransportStats",
    "MAX_VERSION",
    "VERSION_1",
    "VERSION_2",
    "VERSION_3",
    "VERSION_4",
    "parse_url",
]
