"""Remote block access: an NBD-style server/client over TCP.

The paper's testbed reads base images over NFS; its prototype lineage
(and much later work, e.g. qemu's own NBD export) serves images over a
block protocol instead.  This package provides that substrate with
real sockets and real bytes:

* :class:`~repro.remote.server.BlockServer` exports local images
  (raw or qcow2, including cache images) under export names;
* :class:`~repro.remote.client.RemoteImage` is a normal
  :class:`~repro.imagefmt.driver.BlockDriver` backed by a connection,
  so a CoW or cache chain can use ``nbd://host:port/export`` as its
  backing file and everything — copy-on-read, quotas, tooling — works
  unchanged over the network.
"""

from repro.remote.client import RemoteImage, parse_url
from repro.remote.server import BlockServer

__all__ = ["BlockServer", "RemoteImage", "parse_url"]
