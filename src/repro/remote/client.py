"""RemoteImage: a block driver backed by a server connection.

Chains treat it like any other image, so
``base(remote) ← cache(local) ← CoW(local)`` moves real bytes over a
real socket — the closest this environment gets to the paper's NFS
mount, and a drop-in backing via ``nbd://host:port/export`` URLs.

Pipelining.  With a v2 server (negotiated at connect; see
:mod:`repro.remote.protocol`) the connection keeps up to ``depth``
tagged requests in flight: the caller fans chunked reads/writes into a
bounded window, a demultiplexing reader thread matches responses to
requests by tag, and a latency-shaped link stays full instead of
paying one round-trip per chunk.  ``protocol=1`` forces the old
lock-step framing (the A/B baseline), and connecting to a pre-v2
server falls back to it automatically.

Trace propagation.  Under v3 (the default advertisement; a pre-v3
server transparently clamps the connection to v2) every request frame
carries the ``(trace_id, span_id)`` of the span active on the calling
thread when the operation was issued, so the storage node's per-request
``export.*`` spans land in the *caller's* trace — see DESIGN.md §10.
The context rides a fixed 64-byte header field (all zeroes when no
span is active), so the request header stays a single read on the
serving side whether or not tracing is on.

Failure model.  Every wire round-trip is bounded by a per-operation
deadline (``op_timeout``; in the pipelined path the deadline applies
to the *oldest* outstanding request).  A timeout or a mid-stream
disconnect leaves the framing in an unknown state, so the client never
tries to resynchronize: it abandons the socket, reconnects (handshake
included) with exponential backoff, and re-issues only the requests
that were never acknowledged — block reads/writes/flushes are
idempotent, so replay is safe.  After ``max_retries`` failed
re-attempts the error surfaces as
:class:`~repro.errors.RemoteTimeoutError` or
:class:`~repro.errors.RemoteDisconnectedError`.  Server-*reported*
errors (:class:`~repro.remote.protocol.RemoteOpError`, e.g. a write to
a read-only export) arrive on a healthy connection and are raised
immediately, never retried.

Thread-safety: one ``RemoteImage`` is one connection and one caller.
The internal reader thread only demultiplexes; the public interface
must still be driven by a single thread at a time
(``supports_concurrent_reads`` stays False); open one connection per
client thread instead.
"""

from __future__ import annotations

import itertools
import re
import socket
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field

from repro.errors import (
    InvalidImageError,
    RemoteDisconnectedError,
    RemoteTimeoutError,
)
from repro.imagefmt.driver import BlockDriver
from repro.metrics.collectors import LatencyHistogram, op_latency_histograms
from repro.metrics.registry import get_registry, latency_samples
from repro.metrics.tracing import TRACER
from repro.remote import protocol as wire

_URL_RE = re.compile(
    r"^nbd://(?P<host>[^:/]+):(?P<port>\d+)/(?P<export>.+)$")

_OP_KINDS = {wire.REQ_READ: "read", wire.REQ_WRITE: "write",
             wire.REQ_FLUSH: "flush"}


def parse_url(url: str) -> tuple[str, int, str]:
    """Split ``nbd://host:port/export`` into its parts."""
    m = _URL_RE.match(url)
    if not m:
        raise InvalidImageError(f"not a block-server URL: {url!r}")
    return m.group("host"), int(m.group("port")), m.group("export")


def is_remote_url(path: str) -> bool:
    return path.startswith("nbd://")


@dataclass
class TransportStats:
    """Traffic and failure/recovery counters for one connection."""

    requests: int = 0     # wire requests sent (including replays)
    retries: int = 0      # re-attempts after a transport failure
    reconnects: int = 0   # successful re-handshakes
    timeouts: int = 0     # operations that hit the op deadline
    bytes_sent: int = 0
    bytes_received: int = 0
    bytes_copied: int = 0  # payload bytes memcpy'd reassembling chunks
    inflight_hwm: int = 0  # most requests simultaneously unacknowledged
    wire_compressed_bytes: int = 0  # compressed payload bytes on the wire
    wire_compressed_bytes_raw: int = 0  # their inflated (logical) size
    latency: dict[str, LatencyHistogram] = field(
        default_factory=op_latency_histograms)

    @property
    def compression_ratio(self) -> float:
        """wire/raw for payloads that shipped compressed (1.0 = none)."""
        if not self.wire_compressed_bytes_raw:
            return 1.0
        return self.wire_compressed_bytes / self.wire_compressed_bytes_raw

    def summary(self) -> dict:
        """Plain-dict view for ``image_info()`` and experiment logs."""
        return {
            "requests": self.requests,
            "retries": self.retries,
            "reconnects": self.reconnects,
            "timeouts": self.timeouts,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "bytes_copied": self.bytes_copied,
            "inflight_hwm": self.inflight_hwm,
            "wire_compressed_bytes": self.wire_compressed_bytes,
            "wire_compressed_bytes_raw": self.wire_compressed_bytes_raw,
            "compression_ratio": self.compression_ratio,
            "latency": {kind: h.summary()
                        for kind, h in self.latency.items() if h.count},
        }


_CONN_SEQ = itertools.count(1)


def _register_transport_collector(img: "RemoteImage"):
    """Publish a connection's ``transport_stats`` through the registry.

    The collector holds only a weak reference — registering never
    extends the image's lifetime — and is scrape-time only, so the
    datapath keeps its plain-attribute counters.  Returns the handle
    for :meth:`MetricsRegistry.unregister_collector` (also pruned
    automatically once the image is gone or closed).
    """
    ref = weakref.ref(img)
    labels = {"export": img._export, "conn": str(next(_CONN_SEQ))}

    def collect():
        live = ref()
        if live is None or live.closed:
            return None
        s = live.transport_stats
        out = [
            ("remote_client_requests_total", labels, float(s.requests)),
            ("remote_client_retries_total", labels, float(s.retries)),
            ("remote_client_reconnects_total", labels,
             float(s.reconnects)),
            ("remote_client_timeouts_total", labels, float(s.timeouts)),
            ("remote_client_bytes_sent_total", labels,
             float(s.bytes_sent)),
            ("remote_client_bytes_received_total", labels,
             float(s.bytes_received)),
            ("remote_client_bytes_copied_total", labels,
             float(s.bytes_copied)),
            ("remote_client_inflight_hwm", labels, float(s.inflight_hwm)),
            ("remote_client_wire_compressed_bytes_total", labels,
             float(s.wire_compressed_bytes)),
            ("remote_client_wire_compressed_bytes_raw_total", labels,
             float(s.wire_compressed_bytes_raw)),
        ]
        out.extend(latency_samples(
            "remote_client_op_latency", labels, s.latency))
        return out

    return get_registry().register_collector(collect)


class _Pending:
    """One request of a pipelined exchange: its tag, completion event,
    and eventual result or error."""

    __slots__ = ("req", "tag", "event", "result", "error", "done",
                 "sent_at")

    def __init__(self, req: wire.Request) -> None:
        self.req = req
        self.tag = -1
        self.event = threading.Event()
        self.result = b""
        self.error: Exception | None = None
        self.done = False
        self.sent_at = 0.0


class RemoteImage(BlockDriver):
    """One connection to one export."""

    format_name = "remote"

    # Large guest reads are split so a single request never exceeds
    # the protocol bound (and the server stays responsive to others).
    _DEFAULT_CHUNK = 4 * 1024 * 1024
    _DEFAULT_DEPTH = 8

    def __init__(self, sock: socket.socket, url: str, size: int,
                 read_only: bool, *,
                 version: int = wire.VERSION_1,
                 connect_timeout: float = 10.0,
                 op_timeout: float = 30.0,
                 max_retries: int = 3,
                 backoff_base: float = 0.05,
                 backoff_max: float = 2.0,
                 protocol: int | None = None,
                 depth: int = _DEFAULT_DEPTH,
                 chunk_size: int = _DEFAULT_CHUNK,
                 compress: "bool | int" = False,
                 compress_min_size: int = wire.DEFAULT_COMPRESS_MIN,
                 compress_granted: bool = False) -> None:
        super().__init__(url, size, read_only)
        self._sock: socket.socket | None = sock
        self._host, self._port, self._export = parse_url(url)
        self._connect_timeout = connect_timeout
        self._op_timeout = op_timeout
        self._max_retries = max_retries
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._version = version
        self._depth = max(1, depth)
        self._chunk = chunk_size
        # Compression preference (what we ask every (re)connect for)
        # vs grant (what this connection negotiated).
        self._compress_level = (wire.DEFAULT_COMPRESS_LEVEL
                                if compress is True else int(compress))
        self._compress_min = compress_min_size
        self._wire_compress = compress_granted
        # Which version to ask for on (re)connects: an explicit
        # ``protocol`` wins; otherwise negotiate, but remember a v1
        # fallback so every reconnect doesn't re-pay the failed probe.
        if protocol is not None:
            self._protocol_pref: int | None = protocol
        elif version == wire.VERSION_1:
            self._protocol_pref = wire.VERSION_1
        else:
            self._protocol_pref = None
        self.transport_stats = TransportStats()
        self._metrics_collector = _register_transport_collector(self)
        # Pipelining state (v2): requests keyed by tag, a demux reader
        # per live socket, and a generation counter so a reader of an
        # abandoned socket can never poison its successor.
        self._plock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._next_tag = 0
        self._gen = 0
        self._dead: Exception | None = None
        self._reader: threading.Thread | None = None
        if self._version >= wire.VERSION_2 and self._sock is not None:
            self._start_reader()

    @classmethod
    def connect(cls, url: str, *, read_only: bool = True,
                timeout: float = 10.0,
                op_timeout: float = 30.0,
                max_retries: int = 3,
                backoff_base: float = 0.05,
                backoff_max: float = 2.0,
                protocol: int | None = None,
                depth: int = _DEFAULT_DEPTH,
                chunk_size: int = _DEFAULT_CHUNK,
                compress: "bool | int" = False,
                compress_min_size: int = wire.DEFAULT_COMPRESS_MIN,
                ) -> "RemoteImage":
        """Connect and handshake.

        ``timeout`` bounds connection establishment; ``op_timeout``
        bounds every subsequent wire round-trip.  ``max_retries``
        re-attempts (reconnect + replay, exponential backoff from
        ``backoff_base`` capped at ``backoff_max``) are made per
        operation before a failure surfaces.

        ``protocol`` pins the wire protocol version (1 = lock-step,
        2 = pipelined, 3 = pipelined + trace context, 4 = pipelined +
        compression, 5 = v4 + cluster manifests); the default
        negotiates v5, transparently accepts an older server's
        v4/v3/v2 answer, and falls back to v1 against a pre-v2
        server.  ``depth`` bounds how many tagged requests a
        v2+ connection keeps in flight; large guest I/O is split into
        ``chunk_size`` requests that fill that window.

        ``compress=True`` (or a zlib level 1-9) asks the server for
        per-chunk payload compression — granted only on a v4
        negotiation with a compression-willing server, silently
        dropped against older peers.  Payloads under
        ``compress_min_size``, and chunks that don't shrink, ship raw
        either way.
        """
        if protocol is not None and protocol not in (wire.VERSION_1,
                                                     wire.VERSION_2,
                                                     wire.VERSION_3,
                                                     wire.VERSION_4,
                                                     wire.VERSION_5):
            raise ValueError(f"unsupported protocol version {protocol}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if compress is not False and compress is not True \
                and not 1 <= int(compress) <= 9:
            raise ValueError(f"compress must be bool or 1..9, "
                             f"got {compress!r}")
        if compress and protocol is not None \
                and protocol < wire.VERSION_4:
            raise ValueError(
                f"compression needs protocol v4, but v{protocol} "
                f"was pinned")
        host, port, export = parse_url(url)
        sock, size, version, granted = cls._dial(
            host, port, export, timeout, op_timeout, protocol,
            bool(compress))
        return cls(sock, url, size, read_only, version=version,
                   connect_timeout=timeout, op_timeout=op_timeout,
                   max_retries=max_retries, backoff_base=backoff_base,
                   backoff_max=backoff_max, protocol=protocol,
                   depth=depth, chunk_size=chunk_size,
                   compress=compress,
                   compress_min_size=compress_min_size,
                   compress_granted=granted)

    @property
    def protocol_version(self) -> int:
        """The wire protocol version this connection negotiated."""
        return self._version

    @property
    def pipeline_depth(self) -> int:
        """Maximum tagged requests kept in flight (1 under v1)."""
        return self._depth if self._version >= wire.VERSION_2 else 1

    @property
    def compression_enabled(self) -> bool:
        """True when this connection negotiated v4 compression."""
        return self._wire_compress

    @classmethod
    def _dial(cls, host: str, port: int, export: str,
              connect_timeout: float, op_timeout: float,
              prefer: int | None, want_compress: bool = False,
              ) -> tuple[socket.socket, int, int, bool]:
        """Connect and negotiate; returns
        (socket, size, version, compress_granted).

        A v2-framed hello to a pre-v2 server is answered by dropping
        the connection (unknown magic), which we observe as a protocol
        or connection error and retry once with the v1 hello.  A v3/v4
        advertisement to an older v2+ server needs no fallback at all —
        the server clamps down in the same handshake.  An export
        refusal is a definitive answer on any version and is never
        retried.
        """
        if prefer is None or prefer >= wire.VERSION_2:
            advertise = wire.MAX_VERSION if prefer is None else prefer
            try:
                sock, size, version, granted = cls._dial_version(
                    host, port, export, connect_timeout, op_timeout,
                    advertise, want_compress)
                if prefer is not None and version != prefer:
                    # Pinned v3/v4 against an older server: a
                    # definitive mismatch, not a transport failure.
                    sock.close()
                    raise wire.ProtocolError(
                        f"server negotiated v{version}, "
                        f"v{prefer} was pinned")
                return sock, size, version, granted
            except wire.ExportRefusedError:
                raise
            except (wire.ProtocolError, ConnectionError) as exc:
                if prefer is not None:
                    # v2+ was pinned; no fallback — but surface the
                    # reset as a RemoteError like every other failure.
                    if isinstance(exc, ConnectionError):
                        raise RemoteDisconnectedError(
                            f"{host}:{port} closed the connection "
                            f"during the v{prefer} handshake "
                            f"(pre-v2 server?)") from exc
                    raise
        return cls._dial_version(host, port, export,
                                 connect_timeout, op_timeout,
                                 wire.VERSION_1, False)

    @staticmethod
    def _dial_version(host: str, port: int, export: str,
                      connect_timeout: float, op_timeout: float,
                      version: int, want_compress: bool,
                      ) -> tuple[socket.socket, int, int, bool]:
        try:
            sock = socket.create_connection((host, port),
                                            timeout=connect_timeout)
        except TimeoutError as exc:
            raise RemoteTimeoutError(
                f"connecting to {host}:{port} timed out after "
                f"{connect_timeout:g}s") from exc
        except OSError as exc:
            raise RemoteDisconnectedError(
                f"cannot connect to {host}:{port}: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Re-arm from the connect timeout to the per-round-trip
        # deadline (the handshake below is the first round-trip).
        sock.settimeout(op_timeout)
        granted = False
        try:
            if version >= wire.VERSION_2:
                ask = want_compress and version >= wire.VERSION_4
                wire.send_handshake_request_v2(sock, export,
                                               version=version,
                                               compress=ask)
                version, size, granted = wire.recv_handshake_response_ex(
                    sock, max_version=version)
                if granted and not ask:
                    raise wire.ProtocolError(
                        "server granted compression that was never "
                        "requested")
            else:
                wire.send_handshake_request(sock, export)
                size = wire.recv_handshake_response(sock)
        except TimeoutError as exc:
            sock.close()
            raise RemoteTimeoutError(
                f"handshake with {host}:{port} timed out after "
                f"{op_timeout:g}s") from exc
        except Exception:
            sock.close()
            raise
        return sock, size, version, granted

    # -- transport ----------------------------------------------------------

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        with self._plock:
            # Retire the current reader: whatever it observes on the
            # dying socket no longer concerns the next connection.
            self._gen += 1
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)  # wake a blocked recv
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def _reconnect(self) -> None:
        sock, size, version, granted = self._dial(
            self._host, self._port, self._export,
            self._connect_timeout, self._op_timeout,
            self._protocol_pref, bool(self._compress_level))
        if size != self.size:
            sock.close()
            raise RemoteDisconnectedError(
                f"export {self._export!r} changed size across "
                f"reconnect ({self.size} -> {size})")
        with self._plock:
            self._dead = None
        self._sock = sock
        self._version = version
        # The grant is per-connection: renegotiated on every reconnect
        # from the same stored preference, so a mid-window reconnect
        # keeps compressing iff the (possibly restarted) server still
        # agrees.
        self._wire_compress = granted
        if version == wire.VERSION_1:
            self._protocol_pref = wire.VERSION_1
        self.transport_stats.reconnects += 1
        if version >= wire.VERSION_2:
            self._start_reader()

    # -- v2 demultiplexing reader -------------------------------------------

    def _start_reader(self) -> None:
        gen = self._gen
        thread = threading.Thread(
            target=self._reader_loop, args=(gen, self._sock),
            daemon=True,
            name=f"remoteimage-{self._export}-rx{gen}")
        self._reader = thread
        thread.start()

    def _reader_loop(self, gen: int, sock: socket.socket) -> None:
        """Read v2 responses and complete their pending requests.

        The socket keeps the per-op timeout armed, so an idle
        connection wakes the reader periodically; a timeout *between*
        frames just means nothing was owed and the reader keeps
        listening, while a stall *inside* a frame (or any other
        failure) marks the connection dead.  The caller thread owns
        all recovery — the reader only reports.
        """
        hdr_size = wire.RESPONSE2_HEADER_SIZE
        while True:
            buf = b""
            try:
                while len(buf) < hdr_size:
                    chunk = sock.recv(hdr_size - len(buf))
                    if not chunk:
                        raise wire.ProtocolError(
                            "connection closed mid-message")
                    buf += chunk
            except TimeoutError:
                if buf:
                    self._poison(gen, wire.ProtocolError(
                        "response stalled mid-frame"))
                    return
                if not self._gen_current(gen):
                    return
                continue
            except (wire.ProtocolError, OSError) as exc:
                self._poison(gen, exc)
                return
            try:
                status, tag, length = wire.decode_response_v2_header(buf)
                payload = wire.recv_exact(sock, length) if length else b""
                wire_len = length
                if status & wire.FLAG_COMPRESSED:
                    if not self._wire_compress:
                        raise wire.ProtocolError(
                            "compressed response on a connection that "
                            "negotiated no compression")
                    status &= ~wire.FLAG_COMPRESSED
                    # Inflate on the reader thread: it overlaps the
                    # caller's next send, and a corrupt stream poisons
                    # the connection like any other framing damage.
                    payload = wire.decompress_payload(payload)
                    stats = self.transport_stats
                    stats.wire_compressed_bytes += wire_len
                    stats.wire_compressed_bytes_raw += len(payload)
            except (TimeoutError, wire.ProtocolError, OSError) as exc:
                self._poison(gen, exc)
                return
            self._complete(gen, tag, status, payload, wire_len)

    def _gen_current(self, gen: int) -> bool:
        with self._plock:
            return gen == self._gen

    def _poison(self, gen: int, exc: Exception) -> None:
        """Reader-side: mark the connection dead, wake all waiters."""
        with self._plock:
            if gen != self._gen:
                return
            self._dead = exc
            waiters = list(self._pending.values())
        for p in waiters:
            p.event.set()

    def _complete(self, gen: int, tag: int, status: int,
                  payload: bytes, wire_len: int | None = None) -> None:
        with self._plock:
            if gen != self._gen:
                return
            p = self._pending.pop(tag, None)
        if p is None:
            return  # response to a request nobody waits on anymore
        stats = self.transport_stats
        stats.bytes_received += wire.RESPONSE2_HEADER_SIZE + (
            len(payload) if wire_len is None else wire_len)
        kind = _OP_KINDS.get(p.req.req_type, "other")
        stats.latency[kind].observe(time.monotonic() - p.sent_at)
        if status == wire.STATUS_OK:
            p.result = payload
        else:
            p.error = wire.RemoteOpError(
                f"remote error: {payload.decode('utf-8', 'replace')}")
        p.done = True
        p.event.set()

    # -- v2 pipelined exchange ----------------------------------------------

    def _register(self, p: _Pending) -> None:
        with self._plock:
            if p.tag < 0:
                p.tag = self._next_tag
                self._next_tag = (self._next_tag + 1) & wire.MAX_TAG
            self._pending[p.tag] = p
            if len(self._pending) > self.transport_stats.inflight_hwm:
                self.transport_stats.inflight_hwm = len(self._pending)

    def _send_pending(self, p: _Pending) -> None:
        p.event.clear()
        p.sent_at = time.monotonic()
        stats = self.transport_stats
        stats.requests += 1
        if self._version >= wire.VERSION_4 and self._wire_compress:
            sent, payload_wire, compressed = wire.send_request_v4(
                self._sock, p.tag, p.req,
                compress=True, level=self._compress_level,
                min_size=self._compress_min)
            stats.bytes_sent += sent
            if compressed:
                stats.wire_compressed_bytes += payload_wire
                stats.wire_compressed_bytes_raw += len(p.req.payload)
        elif self._version >= wire.VERSION_3:
            stats.bytes_sent += \
                wire.send_request_v3(self._sock, p.tag, p.req)
        else:
            wire.send_request_v2(self._sock, p.tag, p.req)
            stats.bytes_sent += (
                wire.REQUEST2_HEADER_SIZE + len(p.req.payload))

    def _run_pipelined(self, reqs: list[wire.Request]) -> list[bytes]:
        """Exchange a batch of requests through the tagged window.

        Up to ``depth`` requests are unacknowledged at once; the
        per-op deadline applies to the oldest.  On a transport failure
        the whole window is replayed (only unacknowledged tags) after
        a reconnect, which counts against the batch's shared retry
        budget.  A server-reported error aborts the batch immediately
        on the still-healthy connection, like the lock-step path.
        """
        batch = [_Pending(r) for r in reqs]
        window: deque[_Pending] = deque()
        next_i = 0
        failures = 0
        last: Exception | None = None
        try:
            while True:
                # Harvest whatever finished at the head of the window.
                while window and window[0].done:
                    p = window.popleft()
                    if p.error is not None:
                        raise p.error
                if next_i == len(batch) and not window:
                    break
                if self._sock is None or self._dead is not None:
                    with self._plock:
                        dead = self._dead
                    if dead is not None:
                        last = RemoteDisconnectedError(
                            f"{self.path}: connection lost: {dead}")
                        last.__cause__ = dead
                    self._drop_connection()
                    failures += 1
                    if failures > self._max_retries:
                        if last is None:
                            last = RemoteDisconnectedError(
                                f"{self.path}: connection lost")
                        raise last
                    self.transport_stats.retries += 1
                    time.sleep(min(self._backoff_max,
                                   self._backoff_base
                                   * 2 ** (failures - 1)))
                    try:
                        self._reconnect()
                    except (RemoteTimeoutError,
                            RemoteDisconnectedError) as exc:
                        last = exc
                        continue
                    if self._version < wire.VERSION_2:
                        # The export moved to a lock-step v1 server
                        # mid-batch: drain what is still owed serially.
                        for p in list(window) + batch[next_i:]:
                            if not p.done:
                                p.result = self._roundtrip(p.req)
                                p.done = True
                        window.clear()
                        next_i = len(batch)
                        continue
                    try:
                        for p in window:
                            if not p.done:
                                self._send_pending(p)  # replay unacked
                    except (TimeoutError, OSError) as exc:
                        last = RemoteDisconnectedError(
                            f"{self.path}: replay failed: {exc}")
                        last.__cause__ = exc
                        self._drop_connection()
                        continue
                # Keep the window full.
                try:
                    while (next_i < len(batch)
                           and len(window) < self._depth):
                        p = batch[next_i]
                        self._register(p)
                        self._send_pending(p)
                        window.append(p)
                        next_i += 1
                except (TimeoutError, OSError) as exc:
                    last = RemoteDisconnectedError(
                        f"{self.path}: connection lost: {exc}")
                    last.__cause__ = exc
                    self._drop_connection()
                    continue
                if not window:
                    continue
                # The oldest outstanding request carries the deadline —
                # measured from when *it* was last transmitted, not
                # from when it became head.  Waiting a full op_timeout
                # per head change would let a stalled request sent
                # ``depth`` positions back linger ~depth x op_timeout
                # before timing out.  (A replay resets ``sent_at``, so
                # every transmission gets one full deadline.)
                head = window[0]
                remaining = (head.sent_at + self._op_timeout
                             - time.monotonic())
                if remaining > 0 and head.event.wait(remaining):
                    continue  # done or poisoned; the loop top sorts it out
                if head.done:
                    continue  # finished right on the deadline
                with self._plock:
                    if self._dead is not None:
                        continue  # poisoned, not stalled: reconnect path
                self.transport_stats.timeouts += 1
                last = RemoteTimeoutError(
                    f"{self.path}: request type {head.req.req_type} at "
                    f"offset {head.req.offset} exceeded the "
                    f"{self._op_timeout:g}s deadline")
                self._drop_connection()
        finally:
            # Abandon whatever the batch still owns so late responses
            # on a healthy connection are dropped, not misdelivered.
            with self._plock:
                for p in batch:
                    if p.tag >= 0:
                        self._pending.pop(p.tag, None)
        return [p.result for p in batch]

    def _exchange(self, reqs: list[wire.Request]) -> list[bytes]:
        if self._version >= wire.VERSION_2:
            return self._run_pipelined(reqs)
        return [self._roundtrip(r) for r in reqs]

    # -- v1 lock-step exchange ----------------------------------------------

    def _roundtrip(self, req: wire.Request) -> bytes:
        """One request/response exchange, with reconnect-and-retry."""
        attempts = self._max_retries + 1
        last: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                self.transport_stats.retries += 1
                time.sleep(min(self._backoff_max,
                               self._backoff_base * 2 ** (attempt - 1)))
            try:
                if self._sock is None:
                    self._reconnect()
                self.transport_stats.requests += 1
                started = time.monotonic()
                wire.send_request(self._sock, req)
                self.transport_stats.bytes_sent += (
                    wire.REQUEST_HEADER_SIZE + len(req.payload))
                payload = wire.recv_response(self._sock)
                self.transport_stats.bytes_received += (
                    wire.RESPONSE_HEADER_SIZE + len(payload))
                kind = _OP_KINDS.get(req.req_type, "other")
                self.transport_stats.latency[kind].observe(
                    time.monotonic() - started)
                return payload
            except wire.RemoteOpError:
                raise  # server-side failure on a healthy connection
            except (RemoteTimeoutError, RemoteDisconnectedError) as exc:
                last = exc  # reconnect itself failed; keep backing off
            except TimeoutError as exc:
                self.transport_stats.timeouts += 1
                self._drop_connection()
                last = RemoteTimeoutError(
                    f"{self.path}: request type {req.req_type} at "
                    f"offset {req.offset} exceeded the {self._op_timeout:g}s "
                    f"deadline (attempt {attempt + 1}/{attempts})")
                last.__cause__ = exc
            except (wire.ProtocolError, OSError) as exc:
                self._drop_connection()
                last = RemoteDisconnectedError(
                    f"{self.path}: connection lost: {exc}")
                last.__cause__ = exc
        assert last is not None
        raise last

    # -- driver hooks -------------------------------------------------------

    def _trace_ctx(self) -> tuple[str, str] | None:
        """The span context to stamp on outgoing requests.

        Captured once per driver-level operation (all chunks of one
        guest I/O carry the same issuing span); only worth computing
        when the negotiated protocol can carry it.
        """
        if self._version >= wire.VERSION_3 and TRACER.enabled:
            return TRACER.propagation_context()
        return None

    def _read_impl(self, offset: int, length: int) -> bytes:
        ctx = self._trace_ctx()
        reqs = []
        pos = offset
        end = offset + length
        while pos < end:
            n = min(self._chunk, end - pos)
            reqs.append(wire.Request(wire.REQ_READ, pos, n,
                                     trace_ctx=ctx))
            pos += n
        chunks = self._exchange(reqs)
        if len(chunks) > 1:
            # Multi-chunk reads pay one reassembly copy; single-chunk
            # reads return the wire buffer as-is.
            self.transport_stats.bytes_copied += sum(map(len, chunks))
        return b"".join(chunks)

    def _write_impl(self, offset: int, data: bytes) -> None:
        ctx = self._trace_ctx()
        reqs = []
        pos = 0
        while pos < len(data):
            chunk = data[pos: pos + self._chunk]
            reqs.append(wire.Request(wire.REQ_WRITE, offset + pos,
                                     len(chunk), chunk,
                                     trace_ctx=ctx))
            pos += len(chunk)
        self._exchange(reqs)

    def _flush_impl(self) -> None:
        self._exchange([wire.Request(wire.REQ_FLUSH, 0, 0,
                                     trace_ctx=self._trace_ctx())])

    def read_batch(self, extents: list[tuple[int, int]]) -> list[bytes]:
        """Read several extents through one pipelined window.

        This is the bulk interface the cache warmer uses: all chunks
        of all extents share the connection's in-flight window, so N
        small extents cost ~N/depth round-trips instead of N.  Results
        are returned in extent order.
        """
        self._check_open()
        ctx = self._trace_ctx()
        reqs: list[wire.Request] = []
        spans: list[tuple[int, int]] = []  # (first request index, count)
        for offset, length in extents:
            self._check_bounds(offset, length)
            first = len(reqs)
            pos = offset
            end = offset + length
            while pos < end:
                n = min(self._chunk, end - pos)
                reqs.append(wire.Request(wire.REQ_READ, pos, n,
                                         trace_ctx=ctx))
                pos += n
            spans.append((first, len(reqs) - first))
        chunks = self._exchange(reqs)
        out: list[bytes] = []
        for (first, count), (offset, length) in zip(spans, extents):
            if count > 1:
                self.transport_stats.bytes_copied += sum(
                    map(len, chunks[first:first + count]))
            data = b"".join(chunks[first:first + count])
            if len(data) != length:
                raise InvalidImageError(
                    f"server returned {len(data)} bytes for a "
                    f"{length}-byte read")
            if length:
                self.stats.record_read(offset, length)
                if TRACER.enabled:
                    TRACER.event(
                        "block.read",
                        layer=self.trace_role or self.format_name,
                        path=self.path, offset=offset, length=length)
            out.append(data)
        return out

    def fetch_manifest(self):
        """Fetch the export's cluster-hash manifest (protocol v5+).

        Returns a :class:`~repro.imagefmt.manifest.ClusterManifest`;
        the server builds one lazily (scanning the export) if none was
        attached.  Raises :class:`~repro.remote.protocol.ProtocolError`
        when this connection negotiated below v5 — callers that can
        live without a manifest (peer fill probing an old peer) catch
        it and fall back to plain reads.
        """
        self._check_open()
        if self._version < wire.VERSION_5:
            raise wire.ProtocolError(
                f"manifest requires protocol v5; this connection "
                f"negotiated v{self._version}")
        from repro.imagefmt.manifest import ClusterManifest
        blob = self._exchange(
            [wire.Request(wire.REQ_MANIFEST, 0, 0,
                          trace_ctx=self._trace_ctx())])[0]
        return ClusterManifest.from_bytes(blob)

    def image_info(self) -> dict:
        info = super().image_info()
        info.update({
            "url": self.path,
            "protocol_version": self._version,
            "pipeline_depth": self.pipeline_depth,
            "compression": self._wire_compress,
            "transport": self.transport_stats.summary(),
        })
        return info

    def _close_impl(self) -> None:
        get_registry().unregister_collector(self._metrics_collector)
        sock, self._sock = self._sock, None
        with self._plock:
            self._gen += 1  # retire the reader; its reports are stale
        reader = self._reader
        self._reader = None
        if sock is not None:
            try:
                if self._version >= wire.VERSION_3:
                    wire.send_request_v3(
                        sock, 0, wire.Request(wire.REQ_DISCONNECT, 0, 0))
                elif self._version >= wire.VERSION_2:
                    wire.send_request_v2(
                        sock, 0, wire.Request(wire.REQ_DISCONNECT, 0, 0))
                else:
                    wire.send_request(
                        sock, wire.Request(wire.REQ_DISCONNECT, 0, 0))
            except OSError:
                pass
            try:
                sock.shutdown(socket.SHUT_RDWR)  # wake a blocked reader
            except OSError:
                pass
            sock.close()
        if reader is not None and reader.is_alive():
            reader.join(timeout=1.0)
