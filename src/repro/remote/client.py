"""RemoteImage: a block driver backed by a server connection.

Chains treat it like any other image, so
``base(remote) ← cache(local) ← CoW(local)`` moves real bytes over a
real socket — the closest this environment gets to the paper's NFS
mount, and a drop-in backing via ``nbd://host:port/export`` URLs.
"""

from __future__ import annotations

import re
import socket

from repro.errors import InvalidImageError
from repro.imagefmt.driver import BlockDriver
from repro.remote import protocol as wire

_URL_RE = re.compile(
    r"^nbd://(?P<host>[^:/]+):(?P<port>\d+)/(?P<export>.+)$")


def parse_url(url: str) -> tuple[str, int, str]:
    """Split ``nbd://host:port/export`` into its parts."""
    m = _URL_RE.match(url)
    if not m:
        raise InvalidImageError(f"not a block-server URL: {url!r}")
    return m.group("host"), int(m.group("port")), m.group("export")


def is_remote_url(path: str) -> bool:
    return path.startswith("nbd://")


class RemoteImage(BlockDriver):
    """One connection to one export."""

    format_name = "remote"

    # Large guest reads are split so a single request never exceeds
    # the protocol bound (and the server stays responsive to others).
    _CHUNK = 4 * 1024 * 1024

    def __init__(self, sock: socket.socket, url: str, size: int,
                 read_only: bool) -> None:
        super().__init__(url, size, read_only)
        self._sock = sock

    @classmethod
    def connect(cls, url: str, *, read_only: bool = True,
                timeout: float = 10.0) -> "RemoteImage":
        host, port, export = parse_url(url)
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            wire.send_handshake_request(sock, export)
            size = wire.recv_handshake_response(sock)
        except Exception:
            sock.close()
            raise
        return cls(sock, url, size, read_only)

    # -- driver hooks -------------------------------------------------------

    def _read_impl(self, offset: int, length: int) -> bytes:
        parts = []
        pos = offset
        end = offset + length
        while pos < end:
            n = min(self._CHUNK, end - pos)
            wire.send_request(self._sock,
                              wire.Request(wire.REQ_READ, pos, n))
            parts.append(wire.recv_response(self._sock))
            pos += n
        return b"".join(parts)

    def _write_impl(self, offset: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            chunk = data[pos: pos + self._CHUNK]
            wire.send_request(
                self._sock,
                wire.Request(wire.REQ_WRITE, offset + pos,
                             len(chunk), chunk))
            wire.recv_response(self._sock)
            pos += len(chunk)

    def _flush_impl(self) -> None:
        wire.send_request(self._sock,
                          wire.Request(wire.REQ_FLUSH, 0, 0))
        wire.recv_response(self._sock)

    def _close_impl(self) -> None:
        try:
            wire.send_request(self._sock,
                              wire.Request(wire.REQ_DISCONNECT, 0, 0))
        except OSError:
            pass
        self._sock.close()
