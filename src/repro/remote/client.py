"""RemoteImage: a block driver backed by a server connection.

Chains treat it like any other image, so
``base(remote) ← cache(local) ← CoW(local)`` moves real bytes over a
real socket — the closest this environment gets to the paper's NFS
mount, and a drop-in backing via ``nbd://host:port/export`` URLs.

Failure model.  Every wire round-trip is bounded by a per-operation
deadline (``op_timeout``; the old implementation left the *connect*
timeout armed on every subsequent recv).  A timeout or a mid-stream
disconnect leaves the framing in an unknown state, so the client never
tries to resynchronize: it abandons the socket, reconnects (handshake
included) with exponential backoff, and re-issues the request — block
reads/writes/flushes are idempotent, so replay is safe.  After
``max_retries`` failed re-attempts the error surfaces as
:class:`~repro.errors.RemoteTimeoutError` or
:class:`~repro.errors.RemoteDisconnectedError`.  Server-*reported*
errors (:class:`~repro.remote.protocol.RemoteOpError`, e.g. a write to
a read-only export) arrive on a healthy connection and are raised
immediately, never retried.

Thread-safety: one ``RemoteImage`` is one connection with strictly
alternating request/response framing, so it must not be shared across
threads (``supports_concurrent_reads`` stays False); open one
connection per client thread instead.
"""

from __future__ import annotations

import re
import socket
import time
from dataclasses import dataclass

from repro.errors import (
    InvalidImageError,
    RemoteDisconnectedError,
    RemoteTimeoutError,
)
from repro.imagefmt.driver import BlockDriver
from repro.remote import protocol as wire

_URL_RE = re.compile(
    r"^nbd://(?P<host>[^:/]+):(?P<port>\d+)/(?P<export>.+)$")


def parse_url(url: str) -> tuple[str, int, str]:
    """Split ``nbd://host:port/export`` into its parts."""
    m = _URL_RE.match(url)
    if not m:
        raise InvalidImageError(f"not a block-server URL: {url!r}")
    return m.group("host"), int(m.group("port")), m.group("export")


def is_remote_url(path: str) -> bool:
    return path.startswith("nbd://")


@dataclass
class TransportStats:
    """Failure/recovery counters for one RemoteImage connection."""

    requests: int = 0     # wire round-trips attempted
    retries: int = 0      # re-attempts after a transport failure
    reconnects: int = 0   # successful re-handshakes
    timeouts: int = 0     # round-trips that hit the op deadline


class RemoteImage(BlockDriver):
    """One connection to one export."""

    format_name = "remote"

    # Large guest reads are split so a single request never exceeds
    # the protocol bound (and the server stays responsive to others).
    _CHUNK = 4 * 1024 * 1024

    def __init__(self, sock: socket.socket, url: str, size: int,
                 read_only: bool, *,
                 connect_timeout: float = 10.0,
                 op_timeout: float = 30.0,
                 max_retries: int = 3,
                 backoff_base: float = 0.05,
                 backoff_max: float = 2.0) -> None:
        super().__init__(url, size, read_only)
        self._sock: socket.socket | None = sock
        self._host, self._port, self._export = parse_url(url)
        self._connect_timeout = connect_timeout
        self._op_timeout = op_timeout
        self._max_retries = max_retries
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self.transport_stats = TransportStats()

    @classmethod
    def connect(cls, url: str, *, read_only: bool = True,
                timeout: float = 10.0,
                op_timeout: float = 30.0,
                max_retries: int = 3,
                backoff_base: float = 0.05,
                backoff_max: float = 2.0) -> "RemoteImage":
        """Connect and handshake.

        ``timeout`` bounds connection establishment; ``op_timeout``
        bounds every subsequent wire round-trip.  ``max_retries``
        re-attempts (reconnect + replay, exponential backoff from
        ``backoff_base`` capped at ``backoff_max``) are made per
        operation before a failure surfaces.
        """
        host, port, export = parse_url(url)
        sock, size = cls._dial(host, port, export, timeout, op_timeout)
        return cls(sock, url, size, read_only,
                   connect_timeout=timeout, op_timeout=op_timeout,
                   max_retries=max_retries, backoff_base=backoff_base,
                   backoff_max=backoff_max)

    @staticmethod
    def _dial(host: str, port: int, export: str,
              connect_timeout: float,
              op_timeout: float) -> tuple[socket.socket, int]:
        try:
            sock = socket.create_connection((host, port),
                                            timeout=connect_timeout)
        except TimeoutError as exc:
            raise RemoteTimeoutError(
                f"connecting to {host}:{port} timed out after "
                f"{connect_timeout:g}s") from exc
        except OSError as exc:
            raise RemoteDisconnectedError(
                f"cannot connect to {host}:{port}: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Re-arm from the connect timeout to the per-round-trip
        # deadline (the handshake below is the first round-trip).
        sock.settimeout(op_timeout)
        try:
            wire.send_handshake_request(sock, export)
            size = wire.recv_handshake_response(sock)
        except TimeoutError as exc:
            sock.close()
            raise RemoteTimeoutError(
                f"handshake with {host}:{port} timed out after "
                f"{op_timeout:g}s") from exc
        except Exception:
            sock.close()
            raise
        return sock, size

    # -- transport ----------------------------------------------------------

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _reconnect(self) -> None:
        sock, size = self._dial(self._host, self._port, self._export,
                                self._connect_timeout, self._op_timeout)
        if size != self.size:
            sock.close()
            raise RemoteDisconnectedError(
                f"export {self._export!r} changed size across "
                f"reconnect ({self.size} -> {size})")
        self._sock = sock
        self.transport_stats.reconnects += 1

    def _roundtrip(self, req: wire.Request) -> bytes:
        """One request/response exchange, with reconnect-and-retry."""
        attempts = self._max_retries + 1
        last: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                self.transport_stats.retries += 1
                time.sleep(min(self._backoff_max,
                               self._backoff_base * 2 ** (attempt - 1)))
            try:
                if self._sock is None:
                    self._reconnect()
                self.transport_stats.requests += 1
                wire.send_request(self._sock, req)
                return wire.recv_response(self._sock)
            except wire.RemoteOpError:
                raise  # server-side failure on a healthy connection
            except (RemoteTimeoutError, RemoteDisconnectedError) as exc:
                last = exc  # reconnect itself failed; keep backing off
            except TimeoutError as exc:
                self.transport_stats.timeouts += 1
                self._drop_connection()
                last = RemoteTimeoutError(
                    f"{self.path}: request type {req.req_type} at "
                    f"offset {req.offset} exceeded the {self._op_timeout:g}s "
                    f"deadline (attempt {attempt + 1}/{attempts})")
                last.__cause__ = exc
            except (wire.ProtocolError, OSError) as exc:
                self._drop_connection()
                last = RemoteDisconnectedError(
                    f"{self.path}: connection lost: {exc}")
                last.__cause__ = exc
        assert last is not None
        raise last

    # -- driver hooks -------------------------------------------------------

    def _read_impl(self, offset: int, length: int) -> bytes:
        parts = []
        pos = offset
        end = offset + length
        while pos < end:
            n = min(self._CHUNK, end - pos)
            parts.append(self._roundtrip(
                wire.Request(wire.REQ_READ, pos, n)))
            pos += n
        return b"".join(parts)

    def _write_impl(self, offset: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            chunk = data[pos: pos + self._CHUNK]
            self._roundtrip(
                wire.Request(wire.REQ_WRITE, offset + pos,
                             len(chunk), chunk))
            pos += len(chunk)

    def _flush_impl(self) -> None:
        self._roundtrip(wire.Request(wire.REQ_FLUSH, 0, 0))

    def _close_impl(self) -> None:
        sock, self._sock = self._sock, None
        if sock is None:
            return
        try:
            wire.send_request(sock,
                              wire.Request(wire.REQ_DISCONNECT, 0, 0))
        except OSError:
            pass
        sock.close()
