"""Single-threaded event-loop serving engine for the block server.

This is the C10k datapath (DESIGN.md §11): one ``selectors`` loop owns
every socket, each connection is a small state machine, and the only
threads are a fixed worker pool that runs the blocking
``driver.read``/``write``/``flush`` calls so the loop itself never
blocks.  Contrast with the legacy threaded engine (one thread per
connection plus a short-lived thread per pipelined request): a boot
storm of N clients costs N + N×inflight threads there, and a constant
``1 + workers`` threads here.

Zero-copy framing
-----------------

The loop never assembles a frame in an intermediate buffer:

* request headers are ``recv_into`` a preallocated per-connection
  scratch buffer (one buffer, reused for every header — the header is
  fully parsed before the next one arrives, so reuse is safe) and
  parsed in place with ``struct.unpack_from``;
* a write request's payload is ``recv_into`` a fresh ``bytearray``
  sized from the header (fresh per request — pipelining means the
  previous payload may still be in a worker's hands), then handed to
  the driver as a ``memoryview`` — the payload is copied exactly zero
  times between the socket and the driver;
* responses go out as ``sendmsg([header, payload])`` scatter-gather —
  header and payload are never concatenated, and a short write just
  advances the iovec (memoryview slices, still no copy).

So a request's payload crosses user space exactly once in each
direction, and the ``bytes_copied`` counter on
:class:`~repro.remote.server.ExportStats` — which the threaded engine
increments at its join/concat sites — stays at zero here.  That
difference is asserted by ``tools/copy_audit.py`` and the C10k bench.

Concurrency model
-----------------

All connection and framing state is owned by the loop thread; workers
only ever see immutable job tuples and post ``(conn, tag, payload,
error)`` completions to a deque drained by the loop (a socketpair wakes
the selector).  Export stats/inflight accounting uses the same
mutex-guarded helpers as the threaded engine, so ``ExportStats`` stay
exact under either engine.  Backpressure is per-connection: v1
connections allow one request in flight (lock-step by construction),
v2/v3 connections allow ``max_inflight_per_conn``; at the limit the
loop simply stops reading from that socket until a response finishes
sending, which pushes back through TCP exactly like the threaded
engine's bounded semaphore.

``close()`` mirrors the threaded drain: stop accepting and reading,
let in-flight dispatches finish and flush their responses, then tear
down whatever outlives the drain timeout.
"""

from __future__ import annotations

import collections
import queue
import selectors
import socket
import threading
import time

from repro.metrics.tracing import TRACER
from repro.remote import protocol as wire
from repro.remote.fault import ACTION_DELAY, ACTION_DROP, ACTION_ERROR

# Connection states: handshake (magic, then the version-specific rest,
# then the export name), then request header / payload forever.
_HS_MAGIC = 0
_HS_V1_REST = 1
_HS_V2_REST = 2
_HS_NAME = 3
_REQ_HEADER = 4
_REQ_PAYLOAD = 5

#: Scratch-buffer size: the largest fixed-size thing we ever read into
#: it (a v3 request header; every handshake prefix is smaller).
_SCRATCH = max(wire.REQUEST_HEADER_SIZE, wire.REQUEST2_HEADER_SIZE,
               wire.REQUEST3_HEADER_SIZE)


class _Drop(Exception):
    """Internal: tear this connection down without responding."""


class _OutUnit:
    """One response (or handshake reply) queued for sending.

    ``bufs`` is the remaining iovec list — memoryviews, consumed
    destructively as ``sendmsg`` reports progress.  ``end_of_request``
    marks units whose completion finishes one in-flight request
    (handshake replies don't)."""

    __slots__ = ("bufs", "end_of_request")

    def __init__(self, bufs: list, end_of_request: bool) -> None:
        self.bufs = [memoryview(b) for b in bufs if len(b)]
        self.end_of_request = end_of_request


class _Conn:
    """Per-connection state machine, owned by the loop thread."""

    __slots__ = ("sock", "conn_id", "state", "version", "export",
                 "scratch", "buf", "have", "need",
                 "req_type", "tag", "offset", "length", "trace_ctx",
                 "payload", "out", "inflight", "limit", "events",
                 "paused", "close_after_flush", "closed",
                 "compress_req", "compress", "req_compressed")

    def __init__(self, sock: socket.socket, conn_id: int) -> None:
        self.sock = sock
        self.conn_id = conn_id
        self.state = _HS_MAGIC
        self.version = 0
        self.export = None
        self.scratch = bytearray(_SCRATCH)
        self.buf = memoryview(self.scratch)  # current recv_into target
        self.have = 0
        self.need = 4  # the hello magic
        self.req_type = 0
        self.tag = 0
        self.offset = 0
        self.length = 0
        self.trace_ctx = None
        self.payload = None  # bytearray being filled for a write
        self.out: collections.deque[_OutUnit] = collections.deque()
        self.inflight = 0
        self.limit = 1
        self.events = 0
        self.paused = False
        self.close_after_flush = False
        self.closed = False
        self.compress_req = False  # hello asked for v4 compression
        self.compress = False      # ...and the server granted it
        self.req_compressed = False  # current write payload deflated


class EventLoopEngine:
    """Owns the selector loop and worker pool for one ``BlockServer``.

    The server keeps the public face (exports, stats, fault injector,
    telemetry); the engine only moves bytes and schedules dispatches
    through the server's existing ``_serve_traced``/``_dispatch``/
    accounting helpers, so both engines share one source of truth for
    semantics.
    """

    def __init__(self, server, lsock: socket.socket, *,
                 workers: int = 8) -> None:
        self._server = server
        self._lsock = lsock
        self._lsock.setblocking(False)
        self._sel = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._jobs: queue.SimpleQueue = queue.SimpleQueue()
        self._completions: collections.deque = collections.deque()
        self._jobs_outstanding = 0  # loop-thread-owned
        self._conns: set[_Conn] = set()
        self._next_conn_id = 0
        self._closing = False
        self._closed = False
        self._close_lock = threading.Lock()
        self._draining = False
        self._drain_deadline = 0.0
        self._sel.register(self._lsock, selectors.EVENT_READ,
                           self._on_accept)
        self._sel.register(self._wake_r, selectors.EVENT_READ,
                           self._on_wakeup)
        port = server.port
        self._worker_threads = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"blockserver-{port}-io{i}")
            for i in range(max(1, workers))]
        for t in self._worker_threads:
            t.start()
        self._thread = threading.Thread(
            target=self._loop, daemon=True,
            name=f"blockserver-{port}-loop")
        self._thread.start()

    @property
    def queue_depth(self) -> int:
        """Requests accepted but not yet answered (dispatch queue +
        in-service workers + unsent completions).

        Read cross-thread without a lock: ``_jobs_outstanding`` is a
        loop-thread-owned int, so an observer sees a value at most one
        transition stale — fine for a health document, useless for
        accounting.
        """
        return self._jobs_outstanding

    # -- the loop ------------------------------------------------------------

    def _loop(self) -> None:
        try:
            self._loop_inner()
        finally:
            # Whatever got us here (drain finished, drain timed out, or
            # an unexpected loop error), leave no socket behind.
            for conn in list(self._conns):
                self._teardown(conn)
            self._drain_completions()
            try:
                self._sel.close()
            except OSError:
                pass
            for s in (self._lsock, self._wake_r):
                try:
                    s.close()
                except OSError:
                    pass

    def _loop_inner(self) -> None:
        while True:
            if self._closing and not self._draining:
                self._begin_drain()
            if self._draining:
                if self._drained() or \
                        time.monotonic() >= self._drain_deadline:
                    return
                timeout = min(
                    0.05, max(0.001,
                              self._drain_deadline - time.monotonic()))
            else:
                timeout = None
            for key, mask in self._sel.select(timeout):
                data = key.data
                if callable(data):
                    data()
                    continue
                conn = data
                if mask & selectors.EVENT_WRITE and not conn.closed:
                    self._try_send(conn)
                if mask & selectors.EVENT_READ and not conn.closed:
                    self._on_readable(conn)
            self._drain_completions()

    def _drained(self) -> bool:
        return (self._jobs_outstanding == 0
                and not self._completions
                and all(not c.out for c in self._conns))

    def _begin_drain(self) -> None:
        self._draining = True
        self._drain_deadline = (time.monotonic()
                                + self._server._drain_timeout)
        try:
            self._sel.unregister(self._lsock)
        except (KeyError, ValueError):
            pass
        try:
            self._lsock.close()
        except OSError:
            pass
        # Stop reading everywhere; queued/in-flight responses still go
        # out (that is the drain).
        for conn in list(self._conns):
            self._update_events(conn)

    def _on_wakeup(self) -> None:
        while True:
            try:
                if not self._wake_r.recv(4096):
                    return
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # pipe full means a wakeup is already pending

    # -- accepting -----------------------------------------------------------

    def _on_accept(self) -> None:
        while True:
            try:
                sock, _addr = self._lsock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listen socket closed under us
            if self._closing:
                sock.close()
                continue
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Conn(sock, self._next_conn_id)
            self._next_conn_id += 1
            self._conns.add(conn)
            self._sel.register(sock, selectors.EVENT_READ, conn)
            conn.events = selectors.EVENT_READ

    # -- reading -------------------------------------------------------------

    def _fill(self, conn: _Conn) -> bool:
        """recv_into toward ``conn.need``; True when the target is
        complete, False when the socket would block."""
        while conn.have < conn.need:
            n = conn.sock.recv_into(conn.buf[conn.have:conn.need])
            if n == 0:
                raise _Drop  # orderly EOF from the peer
            conn.have += n
        return True

    def _on_readable(self, conn: _Conn) -> None:
        try:
            while not (conn.paused or conn.close_after_flush
                       or conn.closed or self._draining):
                try:
                    if not self._fill(conn):
                        return
                except (BlockingIOError, InterruptedError):
                    return
                self._advance(conn)
        except (_Drop, wire.ProtocolError, UnicodeDecodeError,
                OSError, ValueError):
            # Peer went away, spoke garbage, or the fault injector said
            # drop: same answer as the threaded engine — tear it down
            # without a response.
            self._teardown(conn)

    def _advance(self, conn: _Conn) -> None:
        """One completed read target → the next state."""
        state = conn.state
        if state == _REQ_HEADER:
            self._on_request_header(conn)
        elif state == _REQ_PAYLOAD:
            payload = conn.payload
            conn.payload = None
            if conn.req_compressed:
                # Compressed writes trade the zero-copy handoff for
                # wire bytes by design; inflating here (loop thread)
                # keeps the worker pool for driver I/O, and corrupt
                # data tears the connection down like any framing
                # damage.
                self._begin_request(
                    conn, wire.decompress_payload(payload),
                    wire_len=len(payload))
            else:
                self._begin_request(conn, memoryview(payload))
        elif state == _HS_MAGIC:
            magic = wire.parse_hello_magic(conn.scratch)
            if magic == wire.MAGIC:
                conn.state = _HS_V1_REST
                conn.need = wire.HANDSHAKE_REQ_SIZE
            elif (magic == wire.MAGIC2
                  and self._server._max_protocol >= wire.VERSION_2):
                conn.state = _HS_V2_REST
                conn.need = wire.HANDSHAKE2_REQ_SIZE
            else:
                # Unknown magic — or a v2 hello at a max_protocol=1
                # server, which emulates a genuine pre-v2 deployment by
                # dropping the connection (the client's fallback path).
                raise wire.ProtocolError(
                    f"bad handshake magic 0x{magic:08x}")
        elif state == _HS_V1_REST:
            conn.version = wire.VERSION_1
            self._expect_name(conn, wire.parse_hello_rest_v1(conn.scratch))
        elif state == _HS_V2_REST:
            conn.version, name_len, conn.compress_req = \
                wire.parse_hello_rest_ex(
                    conn.scratch,
                    max_version=self._server._max_protocol)
            self._expect_name(conn, name_len)
        elif state == _HS_NAME:
            self._on_hello(conn, bytes(conn.buf[:conn.need])
                           .decode("utf-8"))
        else:
            raise wire.ProtocolError(f"bad connection state {state}")

    def _expect_name(self, conn: _Conn, name_len: int) -> None:
        conn.state = _HS_NAME
        conn.have = 0
        conn.need = name_len
        if name_len > _SCRATCH:
            conn.buf = memoryview(bytearray(name_len))
        if name_len == 0:
            self._advance(conn)

    def _on_hello(self, conn: _Conn, name: str) -> None:
        conn.buf = memoryview(conn.scratch)
        server = self._server
        export = server._exports.get(name)
        if export is None:
            if conn.version >= wire.VERSION_2:
                reply = wire.pack_handshake_response_v2(
                    error=True, version=conn.version)
            else:
                reply = wire.pack_handshake_response(error=True)
            conn.close_after_flush = True
            self._update_events(conn)
            self._queue_unit(conn, [reply], end_of_request=False)
            return
        with export.stats_lock:
            export.stats.connections += 1
        conn.export = export
        conn.limit = (1 if conn.version == wire.VERSION_1
                      else server._max_inflight_per_conn)
        conn.compress = (conn.compress_req
                         and conn.version >= wire.VERSION_4
                         and server._compression)
        if conn.version >= wire.VERSION_2:
            reply = wire.pack_handshake_response_v2(
                size=export.driver.size, version=conn.version,
                compress=conn.compress)
        else:
            reply = wire.pack_handshake_response(
                size=export.driver.size)
        self._queue_unit(conn, [reply], end_of_request=False)
        self._expect_header(conn)

    def _expect_header(self, conn: _Conn) -> None:
        conn.state = _REQ_HEADER
        conn.have = 0
        conn.need = wire.request_header_size(conn.version)

    def _on_request_header(self, conn: _Conn) -> None:
        buf = conn.scratch
        conn.req_compressed = False
        if conn.version == wire.VERSION_1:
            conn.req_type, conn.offset, conn.length = \
                wire.parse_request_header(buf)
            conn.tag = 0
            conn.trace_ctx = None
        elif conn.version == wire.VERSION_2:
            conn.req_type, conn.tag, conn.offset, conn.length = \
                wire.parse_request2_header(buf)
            conn.trace_ctx = None
        elif conn.version == wire.VERSION_3:
            (conn.req_type, conn.tag, conn.offset, conn.length,
             conn.trace_ctx) = wire.parse_request3_header(buf)
        else:
            (conn.req_type, conn.tag, conn.offset, conn.length,
             conn.trace_ctx, conn.req_compressed) = \
                wire.parse_request4_header(buf)
            if conn.req_compressed and not conn.compress:
                raise wire.ProtocolError(
                    "compressed request on a connection that "
                    "negotiated no compression")
        if conn.req_type == wire.REQ_WRITE and conn.length > 0:
            # Fresh buffer per write: under pipelining the previous
            # payload may still be owned by a worker.  This very buffer
            # reaches the driver — received once, copied never.
            conn.payload = bytearray(conn.length)
            conn.buf = memoryview(conn.payload)
            conn.state = _REQ_PAYLOAD
            conn.have = 0
            conn.need = conn.length
        else:
            self._begin_request(conn, b"")

    def _begin_request(self, conn: _Conn, payload,
                       wire_len: int | None = None) -> None:
        conn.buf = memoryview(conn.scratch)
        server = self._server
        export = conn.export
        length = (len(payload) if conn.req_type == wire.REQ_WRITE
                  else conn.length)
        req = wire.Request(conn.req_type, conn.offset, length,
                           payload, conn.trace_ctx)
        server._count_received(
            export, wire.request_header_size(conn.version), req,
            payload_wire_len=wire_len)
        if wire_len is not None and wire_len != len(payload):
            with export.stats_lock:
                export.stats.wire_compressed_bytes += wire_len
                export.stats.wire_compressed_bytes_raw += len(payload)
        self._expect_header(conn)
        if req.req_type == wire.REQ_DISCONNECT:
            conn.close_after_flush = True
            self._update_events(conn)
            self._maybe_finish_close(conn)
            return
        # Snapshot the injector once (same TOCTOU discipline as the
        # threaded reader loop): action and delay come from one
        # injector even if set_fault_injector races us.
        fault = server._fault
        action = fault.next_action() if fault is not None else None
        if action == ACTION_DROP:
            raise _Drop
        server._enter_inflight(export)
        conn.inflight += 1
        if conn.inflight >= conn.limit:
            conn.paused = True
            self._update_events(conn)
        if action == ACTION_ERROR:
            self._queue_response(conn, conn.tag, b"", "injected fault")
            return
        if req.req_type == wire.REQ_MANIFEST \
                and conn.version < wire.VERSION_5:
            # v5 capability on an older negotiation: a per-request
            # error (stream stays intact), same contract as the
            # threaded engine.
            self._queue_response(conn, conn.tag, b"",
                                 "manifest requires protocol v5")
            return
        delay = fault.delay_seconds if action == ACTION_DELAY else 0.0
        self._jobs_outstanding += 1
        self._jobs.put((conn, conn.tag, req, delay))

    # -- workers -------------------------------------------------------------

    def _worker_loop(self) -> None:
        server = self._server
        while True:
            job = self._jobs.get()
            if job is None:
                return
            conn, tag, req, delay = job
            export = conn.export
            if delay:
                # Sleeping here (not in the loop!) lets injected
                # latency overlap across the window, matching the
                # threaded engine's per-request workers.
                time.sleep(delay)
            payload: bytes = b""
            error: str | None = None
            try:
                payload, span, end = server._serve_traced(
                    export, req, conn.conn_id)
            except Exception as exc:  # surfaced to the client
                export.record_error(exc)
                error = str(exc)
            else:
                if span is not None:
                    server._fill_span_attrs(span, export, req,
                                            conn.conn_id)
                    TRACER.emit_closed(span, end)
            compressed = False
            raw_len = 0
            if error is None and conn.compress and payload:
                # Deflate in the worker so the loop thread only ever
                # shuffles bytes; chunks that don't shrink ship raw.
                raw_len = len(payload)
                payload, compressed = wire.compress_payload(
                    payload, server._compress_level, server._compress_min)
            self._completions.append(
                (conn, tag, payload, error, compressed, raw_len))
            self._wake()

    def _drain_completions(self) -> None:
        while True:
            try:
                (conn, tag, payload, error,
                 compressed, raw_len) = self._completions.popleft()
            except IndexError:
                return
            self._jobs_outstanding -= 1
            if conn.closed:
                # The response has nowhere to go, but the request is no
                # longer in service.
                self._server._exit_inflight(conn.export)
                continue
            self._queue_response(conn, tag, payload, error,
                                 compressed=compressed, raw_len=raw_len)

    # -- sending -------------------------------------------------------------

    def _queue_response(self, conn: _Conn, tag: int, payload,
                        error: str | None, *, compressed: bool = False,
                        raw_len: int = 0) -> None:
        body = error.encode("utf-8") if error is not None else payload
        if conn.version == wire.VERSION_1:
            header = wire.pack_response_header(
                len(body), error=error is not None)
            hsize = wire.RESPONSE_HEADER_SIZE
        else:
            header = wire.pack_response2_header(
                tag, len(body), error=error is not None,
                compressed=compressed)
            hsize = wire.RESPONSE2_HEADER_SIZE
        if compressed:
            export = conn.export
            with export.stats_lock:
                export.stats.wire_compressed_bytes += len(body)
                export.stats.wire_compressed_bytes_raw += raw_len
        # Count before the first byte can hit the wire: once the client
        # has read the frame the counters must already cover it.
        self._server._count_sent(conn.export, hsize, len(body))
        self._queue_unit(conn, [header, body], end_of_request=True)

    def _queue_unit(self, conn: _Conn, bufs: list,
                    end_of_request: bool) -> None:
        conn.out.append(_OutUnit(bufs, end_of_request))
        self._try_send(conn)

    def _try_send(self, conn: _Conn) -> None:
        if conn.closed:
            return
        while conn.out:
            unit = conn.out[0]
            try:
                sent = conn.sock.sendmsg(unit.bufs)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._teardown(conn)
                return
            while sent:
                head = unit.bufs[0]
                if sent >= len(head):
                    sent -= len(head)
                    unit.bufs.pop(0)
                else:
                    unit.bufs[0] = head[sent:]  # view slice — no copy
                    sent = 0
            if unit.bufs:
                break  # short write: wait for EVENT_WRITE
            conn.out.popleft()
            if unit.end_of_request:
                self._finish_request(conn)
                if conn.closed:
                    return
        self._update_events(conn)
        self._maybe_finish_close(conn)

    def _finish_request(self, conn: _Conn) -> None:
        self._server._exit_inflight(conn.export)
        conn.inflight -= 1
        if conn.paused and conn.inflight < conn.limit:
            conn.paused = False
            self._update_events(conn)

    def _maybe_finish_close(self, conn: _Conn) -> None:
        if (conn.close_after_flush and not conn.closed
                and not conn.out and conn.inflight == 0):
            self._teardown(conn)

    # -- bookkeeping ---------------------------------------------------------

    def _update_events(self, conn: _Conn) -> None:
        if conn.closed:
            return
        want = 0
        if not (conn.paused or conn.close_after_flush or self._draining):
            want |= selectors.EVENT_READ
        if conn.out:
            want |= selectors.EVENT_WRITE
        if want == conn.events:
            return
        try:
            if conn.events == 0:
                self._sel.register(conn.sock, want, conn)
            elif want == 0:
                self._sel.unregister(conn.sock)
            else:
                self._sel.modify(conn.sock, want, conn)
        except (KeyError, ValueError, OSError):
            pass
        conn.events = want

    def _teardown(self, conn: _Conn) -> None:
        if conn.closed:
            return
        conn.closed = True
        if conn.events:
            try:
                self._sel.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
            conn.events = 0
        self._conns.discard(conn)
        # Responses that were queued (or half-sent) but will never
        # finish still end their requests' service time.
        for unit in conn.out:
            if unit.end_of_request:
                self._server._exit_inflight(conn.export)
        conn.out.clear()
        try:
            conn.sock.close()
        except OSError:
            pass

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drain and stop: called from ``BlockServer.close()``.

        Blocks until the loop thread has drained (or timed out) and the
        worker pool has exited; afterwards no engine thread is alive.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._closing = True
        self._wake()
        self._thread.join(self._server._drain_timeout + 2.0)
        for _ in self._worker_threads:
            self._jobs.put(None)
        deadline = time.monotonic() + self._server._drain_timeout
        for t in self._worker_threads:
            t.join(max(0.1, deadline - time.monotonic()))
        # Jobs that completed after the loop exited still carry
        # inflight accounting; settle the books.
        while self._completions:
            conn = self._completions.popleft()[0]
            if conn.export is not None:
                self._server._exit_inflight(conn.export)
        try:
            self._wake_w.close()
        except OSError:
            pass
