"""Fault injection for the block server.

Tests and benchmarks need to exercise the client's deadline/retry
machinery *deterministically*: a dropped connection at a known request,
a delay long enough to trip a deadline, a server-side error response.
:class:`FaultInjector` provides that as a hook the server consults
once per data request (handshakes are never faulted, so a reconnecting
client can always get back in).

Two modes compose:

* **one-shot queue** — ``inject("drop", "delay", ...)`` schedules
  exact faults for the next requests, in order (fully deterministic);
* **rates** — ``drop_rate``/``delay_rate``/``error_rate`` fractions
  drawn from a seeded RNG, for soak-style benchmarks.

Actions:

``drop``
    Close the connection without responding.  The client observes EOF
    mid-message and reconnects.
``delay``
    Sleep ``delay_seconds`` before serving the request normally.  With
    a delay longer than the client's ``op_timeout`` this forces the
    timeout path.
``error``
    Answer the request with a ``STATUS_ERROR`` response (surfaced to
    the caller as :class:`~repro.remote.protocol.RemoteOpError`; the
    connection stays up and is *not* retried).
``none``
    Serve the request normally.  A queue placeholder so a fault can be
    positioned at an exact request index — e.g. ``inject("none",
    "drop")`` lets the first request of a pipelined window complete
    and severs the connection on the second, while tagged requests
    3..N are already in flight behind it.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from dataclasses import dataclass

ACTION_DROP = "drop"
ACTION_DELAY = "delay"
ACTION_ERROR = "error"
ACTION_NONE = "none"  # queue placeholder: serve normally
_ACTIONS = (ACTION_DROP, ACTION_DELAY, ACTION_ERROR, ACTION_NONE)


@dataclass
class FaultStats:
    """Counts of faults actually injected."""

    dropped: int = 0
    delayed: int = 0
    errored: int = 0

    @property
    def total(self) -> int:
        return self.dropped + self.delayed + self.errored


class FaultInjector:
    """Decides, per request, whether to misbehave and how."""

    def __init__(self, *, drop_rate: float = 0.0,
                 delay_rate: float = 0.0,
                 error_rate: float = 0.0,
                 delay_seconds: float = 0.05,
                 seed: int = 0) -> None:
        for name, rate in (("drop_rate", drop_rate),
                           ("delay_rate", delay_rate),
                           ("error_rate", error_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if drop_rate + delay_rate + error_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        self._drop_rate = drop_rate
        self._delay_rate = delay_rate
        self._error_rate = error_rate
        self.delay_seconds = delay_seconds
        self._rng = random.Random(seed)
        self._queue: deque[str] = deque()
        self._lock = threading.Lock()
        self.stats = FaultStats()

    def inject(self, *actions: str) -> None:
        """Queue one-shot faults, consumed before any random rates."""
        for action in actions:
            if action not in _ACTIONS:
                raise ValueError(
                    f"unknown fault action {action!r}; "
                    f"expected one of {_ACTIONS}")
        with self._lock:
            self._queue.extend(actions)

    def pending(self) -> int:
        """One-shot faults not yet consumed."""
        with self._lock:
            return len(self._queue)

    def next_action(self) -> str | None:
        """The fault to apply to the next request, or None."""
        with self._lock:
            if self._queue:
                action = self._queue.popleft()
                if action == ACTION_NONE:
                    return None
            else:
                r = self._rng.random()
                if r < self._drop_rate:
                    action = ACTION_DROP
                elif r < self._drop_rate + self._delay_rate:
                    action = ACTION_DELAY
                elif r < (self._drop_rate + self._delay_rate
                          + self._error_rate):
                    action = ACTION_ERROR
                else:
                    return None
            if action == ACTION_DROP:
                self.stats.dropped += 1
            elif action == ACTION_DELAY:
                self.stats.delayed += 1
            else:
                self.stats.errored += 1
            return action
