"""Wire protocol for the block server (a compact NBD-alike).

Handshake (client → server, then server → client)::

    C: u32 magic | u16 name_len | name bytes
    S: u32 magic | u8 status | u64 size          (status 0 = OK)

Requests (client → server) and responses (server → client)::

    C: u32 magic | u8 type | u64 offset | u32 length [| payload]
    S: u32 magic | u8 status | u32 length [| payload]

Types: READ (server returns ``length`` payload bytes), WRITE (client
sends payload; server returns empty), FLUSH, DISCONNECT.  All integers
are big-endian.  Errors carry a UTF-8 message as payload.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass

MAGIC = 0x52425331  # "RBS1"

REQ_READ = 1
REQ_WRITE = 2
REQ_FLUSH = 3
REQ_DISCONNECT = 4

STATUS_OK = 0
STATUS_ERROR = 1

_HANDSHAKE_REQ = struct.Struct(">IH")
_HANDSHAKE_RESP = struct.Struct(">IBQ")
_REQUEST = struct.Struct(">IBQI")
_RESPONSE = struct.Struct(">IBI")

MAX_PAYLOAD = 32 * 1024 * 1024  # sanity bound for one request


class ProtocolError(Exception):
    """Malformed or unexpected wire data.

    After a ProtocolError the stream position is unknown, so the
    connection cannot be reused; the client's retry loop abandons the
    socket and reconnects.  :class:`RemoteOpError` is the exception to
    that rule.
    """


class RemoteOpError(ProtocolError):
    """The server reported a per-request error (``STATUS_ERROR``).

    Unlike a bare :class:`ProtocolError`, the wire framing is intact
    and the connection remains usable, so the client re-raises this
    immediately instead of reconnecting and retrying.
    """


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly n bytes or raise on EOF."""
    parts = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-message")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


# -- handshake ---------------------------------------------------------------


def send_handshake_request(sock: socket.socket, export: str) -> None:
    name = export.encode("utf-8")
    if len(name) > 0xFFFF:
        raise ValueError("export name too long")
    sock.sendall(_HANDSHAKE_REQ.pack(MAGIC, len(name)) + name)


def recv_handshake_request(sock: socket.socket) -> str:
    raw = recv_exact(sock, _HANDSHAKE_REQ.size)
    magic, name_len = _HANDSHAKE_REQ.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad handshake magic 0x{magic:08x}")
    return recv_exact(sock, name_len).decode("utf-8")


def send_handshake_response(sock: socket.socket, *, size: int = 0,
                            error: bool = False) -> None:
    status = STATUS_ERROR if error else STATUS_OK
    sock.sendall(_HANDSHAKE_RESP.pack(MAGIC, status, size))


def recv_handshake_response(sock: socket.socket) -> int:
    raw = recv_exact(sock, _HANDSHAKE_RESP.size)
    magic, status, size = _HANDSHAKE_RESP.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad handshake magic 0x{magic:08x}")
    if status != STATUS_OK:
        raise ProtocolError("server refused the export")
    return size


# -- requests ---------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    req_type: int
    offset: int
    length: int
    payload: bytes = b""


def send_request(sock: socket.socket, req: Request) -> None:
    if len(req.payload) > MAX_PAYLOAD or req.length > MAX_PAYLOAD:
        raise ValueError("request exceeds MAX_PAYLOAD")
    sock.sendall(_REQUEST.pack(MAGIC, req.req_type, req.offset,
                               req.length) + req.payload)


def recv_request(sock: socket.socket) -> Request:
    raw = recv_exact(sock, _REQUEST.size)
    magic, req_type, offset, length = _REQUEST.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad request magic 0x{magic:08x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"oversized request ({length} bytes)")
    payload = b""
    if req_type == REQ_WRITE:
        payload = recv_exact(sock, length)
    return Request(req_type, offset, length, payload)


def send_response(sock: socket.socket, *, payload: bytes = b"",
                  error: str | None = None) -> None:
    if error is not None:
        body = error.encode("utf-8")
        sock.sendall(_RESPONSE.pack(MAGIC, STATUS_ERROR, len(body))
                     + body)
        return
    sock.sendall(_RESPONSE.pack(MAGIC, STATUS_OK, len(payload))
                 + payload)


def recv_response(sock: socket.socket) -> bytes:
    raw = recv_exact(sock, _RESPONSE.size)
    magic, status, length = _RESPONSE.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad response magic 0x{magic:08x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"oversized response ({length} bytes)")
    payload = recv_exact(sock, length) if length else b""
    if status != STATUS_OK:
        raise RemoteOpError(
            f"remote error: {payload.decode('utf-8', 'replace')}")
    return payload
