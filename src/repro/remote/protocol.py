"""Wire protocol for the block server (a compact NBD-alike).

Two protocol versions share one port; the client's hello magic picks
the version and the server answers in kind (see *negotiation* below).

Version 1 — lock-step (one request in flight)::

    C: u32 magic1 | u16 name_len | name bytes
    S: u32 magic1 | u8 status | u64 size          (status 0 = OK)

    C: u32 magic1 | u8 type | u64 offset | u32 length [| payload]
    S: u32 magic1 | u8 status | u32 length [| payload]

Version 2 — pipelined (tagged, multiple requests in flight)::

    C: u32 magic2 | u8 version | u16 name_len | name bytes
    S: u32 magic2 | u8 status | u8 version | u64 size

    C: u32 magic2 | u8 type | u32 tag | u64 offset | u32 length [| payload]
    S: u32 magic2 | u8 status | u32 tag | u32 length [| payload]

The v2 ``tag`` is an opaque client-chosen identifier echoed verbatim in
the response, so responses may arrive in any order and the client
demultiplexes by tag.  A connection speaks exactly one version for its
whole lifetime.

Version 3 — pipelined with trace context (DESIGN.md §10)::

    C: u32 magic2 | u8 version=3 | u16 name_len | name bytes
    S: u32 magic2 | u8 status | u8 version=3 | u64 size

    C: u32 magic2 | u8 type | u32 tag | u64 offset | u32 length
       | 64-byte ctx field [| payload]
    S: u32 magic2 | u8 status | u32 tag | u32 length [| payload]

v3 shares the v2 framing and response format exactly; the only
difference is the fixed 64-byte trace-context field on request frames.
The context is ``trace_id NUL span_id`` (UTF-8, zero-padded to the
field size) naming the client span that issued the request; an
all-zero field means no context (tracing off, or no span open).  The
field is fixed-size on purpose: the whole request header stays one
``recv`` on the serving side, so carrying context never costs an extra
syscall per request (the <= 5% propagation budget of
``bench_ext_tracing``).  The server opens a child span per served
request from it, so one merged trace file links a client's ``vm.boot``
phase to the storage node's ``export.read`` work.

Negotiation: a v2-capable client opens with the v2 hello.  A v2 server
answers with a v2 handshake response; a v1-only server reads the
unknown magic, closes the connection, and the client reconnects with a
v1 hello (lock-step fallback).  A v1 client's hello is served by both.
An export refusal is :class:`ExportRefusedError` — a definitive answer,
never retried with the other version.

v3 rides the version byte the v2 hello already carries: the client
advertises 3, and the *server* answers with the highest version it
speaks (``min(advertised, max)``), which the client clamps down to.  A
pre-v3 server therefore answers 2 and the connection transparently
runs plain v2 — no context field, no second round-trip, old peers
untouched; a pre-v2 server drops the hello and the v1 fallback above
takes over.  The same extension discipline as the qcow2 cache header
extension: new field, old readers unaffected.

Version 4 — pipelined with negotiated per-chunk compression
(DESIGN.md §12)::

    C: u32 magic2 | u8 version=4|COMPRESS? | u16 name_len | name bytes
    S: u32 magic2 | u8 status | u8 version=4|COMPRESS? | u64 size

    frames identical to v3, except the high bit of the request *type*
    byte and of the response *status* byte may carry FLAG_COMPRESSED.

v4 changes no struct layouts at all — a v4 request frame is a v3
frame, a v4 response frame is a v2 response frame.  What v4 adds is
*capability*: either payload direction may ship a zlib-compressed
payload, marked by ``FLAG_COMPRESSED`` (0x80) on the request's type
byte (compressed WRITE payload) or the response's status byte
(compressed READ payload).  The header ``length`` field then counts
the *wire* (compressed) bytes; the receiver inflates and validates
against ``MAX_PAYLOAD``.  Chunks below the negotiated minimum size or
that do not shrink ship raw with the flag clear, so the zero-copy
``sendmsg`` fast path of the event-loop engine is untouched whenever
compression does not pay.

Compression is negotiated in the hello with the same high bit: a
client that wants it advertises ``version|COMPRESS_FLAG``; the server
echoes the flag in its answer only when it (a) negotiated v4 and (b)
has compression enabled.  An old server masks nothing — it computes
``min(advertised, max)`` on the raw byte, and since the flagged byte
is numerically large the min clamps to the old server's own ceiling,
exactly like a plain v4 advertisement.  An old client never sees the
flag because the server only echoes what was requested.

Version 5 — pipelined with cluster-manifest requests (DESIGN.md §14)::

    C: u32 magic2 | u8 version=5|COMPRESS? | u16 name_len | name bytes
    S: u32 magic2 | u8 status | u8 version=5|COMPRESS? | u64 size

    frames identical to v4, plus one new request type MANIFEST (5).

v5 changes no struct layouts either — a v5 frame *is* a v4 frame.
What v5 adds is one request type: ``REQ_MANIFEST`` asks the server for
the export's cluster-hash manifest (:mod:`repro.imagefmt.manifest`),
returned as the response payload (a serialized manifest document; the
request's ``offset``/``length`` are zero).  The manifest is what a
peer-to-peer cache fill verifies fetched clusters against, so it is
only meaningful on peers that can produce it — a server that
negotiated below v5 answers a MANIFEST request with a per-request
error (``STATUS_ERROR``), never a broken stream, and the negotiation
itself follows the same ``min(advertised, max)`` clamp as v2-v4: a v5
client against a v4 server transparently runs v4 and simply cannot ask
for manifests (the peer-fill client then falls back to the storage
node).

Types: READ (server returns ``length`` payload bytes), WRITE (client
sends payload; server returns empty), FLUSH, DISCONNECT, MANIFEST
(v5+; server returns the export's cluster-hash manifest).  All
integers are big-endian.  Errors carry a UTF-8 message as payload.
"""

from __future__ import annotations

import socket
import struct
import zlib
from dataclasses import dataclass

MAGIC = 0x52425331   # "RBS1"
MAGIC2 = 0x52425332  # "RBS2"

VERSION_1 = 1
VERSION_2 = 2
VERSION_3 = 3
VERSION_4 = 4
VERSION_5 = 5

#: Highest version this module implements (what a server answers to a
#: future client advertising more).
MAX_VERSION = VERSION_5

#: High bit of the hello version byte: compression requested (client)
#: or granted (server).  Also the per-frame compressed-payload marker
#: (:data:`FLAG_COMPRESSED`); both live in bytes whose defined values
#: stay far below 0x80.
COMPRESS_FLAG = 0x80
FLAG_COMPRESSED = 0x80

#: zlib defaults for the negotiated-compression path: level 6 is
#: zlib's own default trade-off, and payloads under the minimum ship
#: raw (small boot reads rarely shrink enough to pay for the inflate).
DEFAULT_COMPRESS_LEVEL = 6
DEFAULT_COMPRESS_MIN = 512

REQ_READ = 1
REQ_WRITE = 2
REQ_FLUSH = 3
REQ_DISCONNECT = 4
REQ_MANIFEST = 5  # v5+: fetch the export's cluster-hash manifest

STATUS_OK = 0
STATUS_ERROR = 1

_HANDSHAKE_REQ = struct.Struct(">IH")
_HANDSHAKE_RESP = struct.Struct(">IBQ")
_REQUEST = struct.Struct(">IBQI")
_RESPONSE = struct.Struct(">IBI")

_HANDSHAKE2_REQ = struct.Struct(">IBH")
_HANDSHAKE2_RESP = struct.Struct(">IBBQ")
_REQUEST2 = struct.Struct(">IBIQI")
_RESPONSE2 = struct.Struct(">IBII")
_REQUEST3 = struct.Struct(">IBIQI64s")  # v2 request + fixed ctx field

REQUEST_HEADER_SIZE = _REQUEST.size
RESPONSE_HEADER_SIZE = _RESPONSE.size
REQUEST2_HEADER_SIZE = _REQUEST2.size
RESPONSE2_HEADER_SIZE = _RESPONSE2.size
REQUEST3_HEADER_SIZE = _REQUEST3.size

MAX_PAYLOAD = 32 * 1024 * 1024  # sanity bound for one request
MAX_TAG = 0xFFFFFFFF
MAX_TRACE_CTX = 64  # the fixed v3 trace-context field size


class ProtocolError(Exception):
    """Malformed or unexpected wire data.

    After a ProtocolError the stream position is unknown, so the
    connection cannot be reused; the client's retry loop abandons the
    socket and reconnects.  :class:`RemoteOpError` is the exception to
    that rule.
    """


class RemoteOpError(ProtocolError):
    """The server reported a per-request error (``STATUS_ERROR``).

    Unlike a bare :class:`ProtocolError`, the wire framing is intact
    and the connection remains usable, so the client re-raises this
    immediately instead of reconnecting and retrying.
    """


class ExportRefusedError(ProtocolError):
    """The server answered the handshake with a refusal.

    A definitive application-level answer (unknown export name), as
    opposed to a transport/framing failure: the client must not fall
    back to another protocol version or retry.
    """


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly n bytes or raise on EOF."""
    parts = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-message")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


# -- v4 payload compression --------------------------------------------------


def compress_payload(payload, level: int = DEFAULT_COMPRESS_LEVEL,
                     min_size: int = DEFAULT_COMPRESS_MIN,
                     ) -> "tuple[bytes, bool]":
    """Maybe deflate one payload: returns ``(wire_payload, compressed)``.

    Payloads below ``min_size`` — or whose deflate does not actually
    shrink them — are returned as-is with ``compressed=False``, so the
    caller's raw path (and the event loop's zero-copy send) is taken
    whenever compression would not pay.  Accepts any buffer (the event
    loop hands driver ``bytes``, the client may hand ``memoryview``).
    """
    n = len(payload)
    if n < min_size:
        return payload, False
    blob = zlib.compress(bytes(payload) if not isinstance(payload, bytes)
                         else payload, level)
    if len(blob) >= n:
        return payload, False
    return blob, True


def decompress_payload(blob, expected_max: int = MAX_PAYLOAD) -> bytes:
    """Inflate one compressed wire payload.

    Corruption (zlib error, truncated stream) and decompression bombs
    (inflated size beyond ``expected_max``) both surface as a clean
    :class:`ProtocolError` — the receiver treats either as a broken
    stream, never as data.
    """
    d = zlib.decompressobj()
    try:
        out = d.decompress(bytes(blob), expected_max + 1)
    except zlib.error as exc:
        raise ProtocolError(
            f"corrupt compressed payload: {exc}") from exc
    if len(out) > expected_max or d.unconsumed_tail:
        raise ProtocolError(
            f"compressed payload inflates past {expected_max} bytes")
    if not d.eof:
        raise ProtocolError(
            "corrupt compressed payload: truncated stream")
    return out


# -- handshake ---------------------------------------------------------------


def send_handshake_request(sock: socket.socket, export: str) -> None:
    name = export.encode("utf-8")
    if len(name) > 0xFFFF:
        raise ValueError("export name too long")
    sock.sendall(_HANDSHAKE_REQ.pack(MAGIC, len(name)) + name)


def recv_handshake_request(sock: socket.socket) -> str:
    raw = recv_exact(sock, _HANDSHAKE_REQ.size)
    magic, name_len = _HANDSHAKE_REQ.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad handshake magic 0x{magic:08x}")
    return recv_exact(sock, name_len).decode("utf-8")


def send_handshake_response(sock: socket.socket, *, size: int = 0,
                            error: bool = False) -> None:
    status = STATUS_ERROR if error else STATUS_OK
    sock.sendall(_HANDSHAKE_RESP.pack(MAGIC, status, size))


def recv_handshake_response(sock: socket.socket) -> int:
    raw = recv_exact(sock, _HANDSHAKE_RESP.size)
    magic, status, size = _HANDSHAKE_RESP.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad handshake magic 0x{magic:08x}")
    if status != STATUS_OK:
        raise ExportRefusedError("server refused the export")
    return size


def send_handshake_request_v2(sock: socket.socket, export: str, *,
                              version: int = VERSION_2,
                              compress: bool = False) -> None:
    """Send the v2-framed hello, advertising ``version`` (2..5).

    ``compress=True`` sets :data:`COMPRESS_FLAG` on the version byte —
    only meaningful when advertising v4+ (an old server min-clamps the
    flagged byte down to its own ceiling and the flag evaporates).
    """
    name = export.encode("utf-8")
    if len(name) > 0xFFFF:
        raise ValueError("export name too long")
    vbyte = version | (COMPRESS_FLAG if compress else 0)
    sock.sendall(_HANDSHAKE2_REQ.pack(MAGIC2, vbyte, len(name)) + name)


def recv_handshake_request_ex(
        sock: socket.socket, *,
        max_version: int = MAX_VERSION) -> tuple[int, str, bool]:
    """Server side: accept a hello, return
    ``(negotiated version, export, compress_requested)``.

    For a v2-framed hello the negotiated version is
    ``min(advertised, max_version)`` — a v3 client against a
    ``max_version=2`` server transparently runs v2, exactly as a
    genuine pre-v3 server would answer.  With ``max_version=1`` a
    v2-framed hello raises :class:`ProtocolError` exactly as a genuine
    pre-v2 server would (unknown magic → drop the connection), which
    is what the client's fallback path expects.

    ``compress_requested`` is only honoured on a v4 negotiation; the
    caller decides the grant (server policy) and echoes it in the
    handshake response.
    """
    magic_raw = recv_exact(sock, 4)
    (magic,) = struct.unpack(">I", magic_raw)
    if magic == MAGIC:
        (name_len,) = struct.unpack(
            ">H", recv_exact(sock, _HANDSHAKE_REQ.size - 4))
        return VERSION_1, recv_exact(sock, name_len).decode("utf-8"), \
            False
    if magic == MAGIC2 and max_version >= VERSION_2:
        vbyte, name_len = struct.unpack(
            ">BH", recv_exact(sock, _HANDSHAKE2_REQ.size - 4))
        compress = bool(vbyte & COMPRESS_FLAG)
        version = vbyte & ~COMPRESS_FLAG
        if version < VERSION_2:
            raise ProtocolError(
                f"bad v2 hello: advertised version {version}")
        version = min(version, max_version)
        return (version,
                recv_exact(sock, name_len).decode("utf-8"),
                compress and version >= VERSION_4)
    raise ProtocolError(f"bad handshake magic 0x{magic:08x}")


def recv_handshake_request_any(
        sock: socket.socket, *,
        max_version: int = MAX_VERSION) -> tuple[int, str]:
    """Server side: accept a hello, return (negotiated version, export).

    The pre-v4 signature, kept for callers that never grant
    compression; see :func:`recv_handshake_request_ex`.
    """
    version, export, _compress = recv_handshake_request_ex(
        sock, max_version=max_version)
    return version, export


def send_handshake_response_v2(sock: socket.socket, *, size: int = 0,
                               error: bool = False,
                               version: int = VERSION_2,
                               compress: bool = False) -> None:
    sock.sendall(pack_handshake_response_v2(
        size=size, error=error, version=version, compress=compress))


def recv_handshake_response_ex(
        sock: socket.socket, *,
        max_version: int = VERSION_2) -> tuple[int, int, bool]:
    """Client side: returns (version, size, compress_granted) from a
    v2-framed server reply.  ``max_version`` is what the client
    advertised; the server may answer that or anything down to 2 (its
    own ceiling), never more.  The compress grant is only valid on a
    v4 answer (an old server can never set it: its version byte is a
    bare small integer)."""
    raw = recv_exact(sock, _HANDSHAKE2_RESP.size)
    magic, status, vbyte, size = _HANDSHAKE2_RESP.unpack(raw)
    if magic != MAGIC2:
        raise ProtocolError(f"bad handshake magic 0x{magic:08x}")
    if status != STATUS_OK:
        raise ExportRefusedError("server refused the export")
    compress = bool(vbyte & COMPRESS_FLAG)
    version = vbyte & ~COMPRESS_FLAG
    if not VERSION_2 <= version <= max_version:
        raise ProtocolError(
            f"server negotiated unsupported version {version}")
    if compress and version < VERSION_4:
        raise ProtocolError(
            f"server granted compression on a v{version} connection")
    return version, size, compress


def recv_handshake_response_v2(
        sock: socket.socket, *,
        max_version: int = VERSION_2) -> tuple[int, int]:
    """Pre-v4 client-side signature of
    :func:`recv_handshake_response_ex` (drops the compress grant)."""
    version, size, _compress = recv_handshake_response_ex(
        sock, max_version=max_version)
    return version, size


# -- requests ---------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    req_type: int
    offset: int
    length: int
    payload: bytes = b""
    #: ``(trace_id, span_id)`` of the client span that issued this
    #: request; carried on the wire only under v3 (ignored by v1/v2
    #: senders, so stamping it is always safe).
    trace_ctx: "tuple[str, str] | None" = None


def send_request(sock: socket.socket, req: Request) -> None:
    if len(req.payload) > MAX_PAYLOAD or req.length > MAX_PAYLOAD:
        raise ValueError("request exceeds MAX_PAYLOAD")
    sock.sendall(_REQUEST.pack(MAGIC, req.req_type, req.offset,
                               req.length) + req.payload)


def recv_request(sock: socket.socket) -> Request:
    raw = recv_exact(sock, _REQUEST.size)
    magic, req_type, offset, length = _REQUEST.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad request magic 0x{magic:08x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"oversized request ({length} bytes)")
    payload = b""
    if req_type == REQ_WRITE:
        payload = recv_exact(sock, length)
    return Request(req_type, offset, length, payload)


def send_response(sock: socket.socket, *, payload: bytes = b"",
                  error: str | None = None) -> None:
    if error is not None:
        body = error.encode("utf-8")
        sock.sendall(_RESPONSE.pack(MAGIC, STATUS_ERROR, len(body))
                     + body)
        return
    sock.sendall(_RESPONSE.pack(MAGIC, STATUS_OK, len(payload))
                 + payload)


def recv_response(sock: socket.socket) -> bytes:
    raw = recv_exact(sock, _RESPONSE.size)
    magic, status, length = _RESPONSE.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad response magic 0x{magic:08x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"oversized response ({length} bytes)")
    payload = recv_exact(sock, length) if length else b""
    if status != STATUS_OK:
        raise RemoteOpError(
            f"remote error: {payload.decode('utf-8', 'replace')}")
    return payload


# -- v2 (tagged) requests ----------------------------------------------------


def send_request_v2(sock: socket.socket, tag: int, req: Request) -> None:
    if len(req.payload) > MAX_PAYLOAD or req.length > MAX_PAYLOAD:
        raise ValueError("request exceeds MAX_PAYLOAD")
    if not 0 <= tag <= MAX_TAG:
        raise ValueError(f"tag {tag} out of range")
    sock.sendall(_REQUEST2.pack(MAGIC2, req.req_type, tag, req.offset,
                                req.length) + req.payload)


def recv_request_v2(sock: socket.socket) -> tuple[int, Request]:
    raw = recv_exact(sock, _REQUEST2.size)
    magic, req_type, tag, offset, length = _REQUEST2.unpack(raw)
    if magic != MAGIC2:
        raise ProtocolError(f"bad request magic 0x{magic:08x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"oversized request ({length} bytes)")
    payload = b""
    if req_type == REQ_WRITE:
        payload = recv_exact(sock, length)
    return tag, Request(req_type, offset, length, payload)


def send_response_v2(sock: socket.socket, tag: int, *,
                     payload: bytes = b"",
                     error: str | None = None,
                     compressed: bool = False) -> None:
    """``compressed=True`` marks ``payload`` as already-deflated wire
    bytes (v4 connections only; the status byte carries the flag)."""
    if error is not None:
        body = error.encode("utf-8")
        sock.sendall(_RESPONSE2.pack(MAGIC2, STATUS_ERROR, tag, len(body))
                     + body)
        return
    status = STATUS_OK | (FLAG_COMPRESSED if compressed else 0)
    sock.sendall(_RESPONSE2.pack(MAGIC2, status, tag, len(payload))
                 + payload)


def decode_response_v2_header(raw: bytes) -> tuple[int, int, int]:
    """Parse a v2 response header into (status, tag, payload length).

    Split from the payload read so the client's demux reader can
    tolerate idle timeouts *between* frames (header not yet started)
    while treating a stall *inside* a frame as a dead connection.
    """
    magic, status, tag, length = _RESPONSE2.unpack(raw)
    if magic != MAGIC2:
        raise ProtocolError(f"bad response magic 0x{magic:08x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"oversized response ({length} bytes)")
    return status, tag, length


# -- v3 (tagged + trace context) requests ------------------------------------


# One-slot encode memo: all chunk requests of one driver operation —
# and usually many consecutive operations — carry the identical span
# context, so the common case is a tuple-identity hit.  A stale entry
# is impossible (the memo is keyed on the tuple itself) and the slot
# is only ever replaced wholesale, which is GIL-atomic.
_ctx_memo: "tuple[tuple[str, str], bytes] | None" = None


def encode_trace_ctx(ctx: "tuple[str, str] | None") -> bytes:
    """Pack ``(trace_id, span_id)`` into the wire context field
    (unpadded; the frame struct zero-pads to the fixed field size)."""
    global _ctx_memo
    if ctx is None:
        return b""
    memo = _ctx_memo
    if memo is not None and memo[0] is ctx:
        return memo[1]
    blob = ctx[0].encode("utf-8") + b"\x00" + ctx[1].encode("utf-8")
    if len(blob) > MAX_TRACE_CTX:
        raise ValueError(
            f"trace context too long ({len(blob)} bytes)")
    _ctx_memo = (ctx, blob)
    return blob


def decode_trace_ctx(blob: bytes) -> "tuple[str, str] | None":
    """Unpack a wire context field (zero padding stripped); malformed
    context is a protocol error (the sender always writes
    ``trace NUL span``)."""
    blob = blob.rstrip(b"\x00")
    if not blob:
        return None
    trace, sep, span = blob.partition(b"\x00")
    if not sep or not trace or not span:
        raise ProtocolError("malformed trace context field")
    try:
        return (trace.decode("utf-8"), span.decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"undecodable trace context: {exc}") from exc


def send_request_v3(sock: socket.socket, tag: int, req: Request) -> int:
    """Send one v3 frame; returns the wire bytes written (header incl.
    context field + payload) for the sender's byte accounting."""
    if len(req.payload) > MAX_PAYLOAD or req.length > MAX_PAYLOAD:
        raise ValueError("request exceeds MAX_PAYLOAD")
    if not 0 <= tag <= MAX_TAG:
        raise ValueError(f"tag {tag} out of range")
    frame = _REQUEST3.pack(MAGIC2, req.req_type, tag, req.offset,
                           req.length,
                           encode_trace_ctx(req.trace_ctx)) \
        + req.payload
    sock.sendall(frame)
    return len(frame)


def recv_request_v3(sock: socket.socket) -> tuple[int, Request]:
    raw = recv_exact(sock, _REQUEST3.size)
    magic, req_type, tag, offset, length, ctx_raw = \
        _REQUEST3.unpack(raw)
    if magic != MAGIC2:
        raise ProtocolError(f"bad request magic 0x{magic:08x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"oversized request ({length} bytes)")
    ctx = decode_trace_ctx(ctx_raw)
    payload = b""
    if req_type == REQ_WRITE:
        payload = recv_exact(sock, length)
    return tag, Request(req_type, offset, length, payload, ctx)


def recv_response_v2(sock: socket.socket) -> tuple[int, bytes, str | None]:
    """One-shot v2 response read: (tag, payload, error message or None).

    The error is returned rather than raised so a demultiplexer can
    route it to the owning request before surfacing it.
    """
    raw = recv_exact(sock, _RESPONSE2.size)
    status, tag, length = decode_response_v2_header(raw)
    payload = recv_exact(sock, length) if length else b""
    if status != STATUS_OK:
        return tag, b"", payload.decode("utf-8", "replace")
    return tag, payload, None


# -- v4 (tagged + trace context + compression) requests ----------------------


def send_request_v4(sock: socket.socket, tag: int, req: Request, *,
                    compress: bool = False,
                    level: int = DEFAULT_COMPRESS_LEVEL,
                    min_size: int = DEFAULT_COMPRESS_MIN,
                    ) -> tuple[int, int, bool]:
    """Send one v4 frame, deflating a WRITE payload when it pays.

    Returns ``(wire_bytes, payload_wire_len, compressed)`` — the total
    frame size for byte accounting, the payload's on-wire size, and
    whether it shipped deflated (``FLAG_COMPRESSED`` on the type
    byte).  Non-write requests and ``compress=False`` degrade to the
    exact v3 frame.
    """
    if len(req.payload) > MAX_PAYLOAD or req.length > MAX_PAYLOAD:
        raise ValueError("request exceeds MAX_PAYLOAD")
    if not 0 <= tag <= MAX_TAG:
        raise ValueError(f"tag {tag} out of range")
    payload = req.payload
    compressed = False
    if compress and req.req_type == REQ_WRITE and payload:
        payload, compressed = compress_payload(payload, level, min_size)
    type_byte = req.req_type | (FLAG_COMPRESSED if compressed else 0)
    frame = _REQUEST3.pack(MAGIC2, type_byte, tag, req.offset,
                           len(payload) if req.req_type == REQ_WRITE
                           else req.length,
                           encode_trace_ctx(req.trace_ctx)) \
        + payload
    sock.sendall(frame)
    return len(frame), len(payload), compressed


def recv_request_v4(sock: socket.socket) -> tuple[int, Request, int]:
    """Receive one v4 frame: ``(tag, request, payload_wire_len)``.

    A compressed WRITE payload is inflated here, so the returned
    :class:`Request` always carries logical bytes (its ``length`` is
    the logical payload size); ``payload_wire_len`` is what actually
    crossed the wire, for the server's traffic accounting.  Corrupt
    compressed data raises :class:`ProtocolError` like any other
    framing damage.
    """
    raw = recv_exact(sock, _REQUEST3.size)
    magic, type_byte, tag, offset, length, ctx_raw = \
        _REQUEST3.unpack(raw)
    if magic != MAGIC2:
        raise ProtocolError(f"bad request magic 0x{magic:08x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"oversized request ({length} bytes)")
    compressed = bool(type_byte & FLAG_COMPRESSED)
    req_type = type_byte & ~FLAG_COMPRESSED
    ctx = decode_trace_ctx(ctx_raw)
    if req_type != REQ_WRITE:
        if compressed:
            raise ProtocolError(
                f"compressed flag on request type {req_type}")
        return tag, Request(req_type, offset, length, b"", ctx), 0
    payload = recv_exact(sock, length)
    wire_len = length
    if compressed:
        payload = decompress_payload(payload)
    return (tag,
            Request(req_type, offset, len(payload), payload, ctx),
            wire_len)


# -- buffer-oriented codec ----------------------------------------------------
#
# The socket-oriented helpers above read and write through intermediate
# bytes objects (``recv_exact`` joins chunks, ``send_*`` concatenates
# header + payload).  The event-loop server engine instead fills
# preallocated buffers with ``recv_into`` and sends header + payload as
# separate iovecs via ``sendmsg``, so it needs parse/pack variants that
# work on a caller-owned buffer and never touch a socket.  All parsers
# accept any buffer-compatible object (bytes, bytearray, memoryview)
# and read via ``unpack_from`` — no slicing, no copies.

HANDSHAKE_REQ_SIZE = _HANDSHAKE_REQ.size
HANDSHAKE2_REQ_SIZE = _HANDSHAKE2_REQ.size


def parse_hello_magic(buf) -> int:
    """Read the 4-byte hello magic from the start of ``buf``."""
    (magic,) = struct.unpack_from(">I", buf, 0)
    return magic


def parse_hello_rest_v1(buf) -> int:
    """Parse the v1 hello tail (after the magic): returns name_len."""
    (name_len,) = struct.unpack_from(">H", buf, 4)
    return name_len


def parse_hello_rest_v2(buf, *, max_version: int = MAX_VERSION) -> tuple[int, int]:
    """Parse the v2-framed hello tail: (negotiated version, name_len).

    Mirrors :func:`recv_handshake_request_any` — the negotiated version
    is ``min(advertised, max_version)`` and an advertised version below
    2 inside v2 framing is a protocol error.
    """
    version, name_len, _compress = parse_hello_rest_ex(
        buf, max_version=max_version)
    return version, name_len


def parse_hello_rest_ex(
        buf, *,
        max_version: int = MAX_VERSION) -> tuple[int, int, bool]:
    """Parse the v2-framed hello tail:
    (negotiated version, name_len, compress_requested).

    Mirrors :func:`recv_handshake_request_ex` — the compress request
    only survives a v4 negotiation.
    """
    vbyte, name_len = struct.unpack_from(">BH", buf, 4)
    compress = bool(vbyte & COMPRESS_FLAG)
    version = vbyte & ~COMPRESS_FLAG
    if version < VERSION_2:
        raise ProtocolError(f"bad v2 hello: advertised version {version}")
    version = min(version, max_version)
    return version, name_len, compress and version >= VERSION_4


def pack_handshake_response(*, size: int = 0, error: bool = False) -> bytes:
    status = STATUS_ERROR if error else STATUS_OK
    return _HANDSHAKE_RESP.pack(MAGIC, status, size)


def pack_handshake_response_v2(*, size: int = 0, error: bool = False,
                               version: int = VERSION_2,
                               compress: bool = False) -> bytes:
    status = STATUS_ERROR if error else STATUS_OK
    vbyte = version | (COMPRESS_FLAG if compress else 0)
    return _HANDSHAKE2_RESP.pack(MAGIC2, status, vbyte, size)


def parse_request_header(buf) -> tuple[int, int, int]:
    """Parse a v1 request header from ``buf``: (type, offset, length)."""
    magic, req_type, offset, length = _REQUEST.unpack_from(buf, 0)
    if magic != MAGIC:
        raise ProtocolError(f"bad request magic 0x{magic:08x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"oversized request ({length} bytes)")
    return req_type, offset, length


def parse_request2_header(buf) -> tuple[int, int, int, int]:
    """Parse a v2 request header: (type, tag, offset, length)."""
    magic, req_type, tag, offset, length = _REQUEST2.unpack_from(buf, 0)
    if magic != MAGIC2:
        raise ProtocolError(f"bad request magic 0x{magic:08x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"oversized request ({length} bytes)")
    return req_type, tag, offset, length


def parse_request3_header(
        buf) -> tuple[int, int, int, int, "tuple[str, str] | None"]:
    """Parse a v3 request header: (type, tag, offset, length, ctx).

    The 64-byte context field is decoded in place (``bytes`` of the
    field is unavoidable for the decode, but it is 64 bytes of header,
    not payload)."""
    magic, req_type, tag, offset, length, ctx_raw = \
        _REQUEST3.unpack_from(buf, 0)
    if magic != MAGIC2:
        raise ProtocolError(f"bad request magic 0x{magic:08x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"oversized request ({length} bytes)")
    return req_type, tag, offset, length, decode_trace_ctx(ctx_raw)


def pack_response_header(length: int, *, error: bool = False) -> bytes:
    """Pack a v1 response header for a payload of ``length`` bytes.

    The payload itself travels as its own iovec — never concatenated
    onto this header."""
    status = STATUS_ERROR if error else STATUS_OK
    return _RESPONSE.pack(MAGIC, status, length)


def pack_response2_header(tag: int, length: int, *,
                          error: bool = False,
                          compressed: bool = False) -> bytes:
    """Pack a v2/v3/v4 response header (v3/v4 responses are v2
    responses; under v4 ``compressed`` flags a deflated payload of
    ``length`` wire bytes)."""
    status = STATUS_ERROR if error else STATUS_OK
    if compressed:
        status |= FLAG_COMPRESSED
    return _RESPONSE2.pack(MAGIC2, status, tag, length)


def parse_request4_header(
        buf) -> "tuple[int, int, int, int, tuple[str, str] | None, bool]":
    """Parse a v4 request header:
    (type, tag, offset, length, ctx, compressed).

    Layout-identical to v3; the only difference is the
    ``FLAG_COMPRESSED`` bit stripped off the type byte.  ``length`` is
    wire bytes (compressed size when the flag is set).
    """
    magic, type_byte, tag, offset, length, ctx_raw = \
        _REQUEST3.unpack_from(buf, 0)
    if magic != MAGIC2:
        raise ProtocolError(f"bad request magic 0x{magic:08x}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"oversized request ({length} bytes)")
    compressed = bool(type_byte & FLAG_COMPRESSED)
    req_type = type_byte & ~FLAG_COMPRESSED
    if compressed and req_type != REQ_WRITE:
        raise ProtocolError(
            f"compressed flag on request type {req_type}")
    return (req_type, tag, offset, length, decode_trace_ctx(ctx_raw),
            compressed)


def request_header_size(version: int) -> int:
    """Fixed request-header size for a negotiated protocol version."""
    if version == VERSION_1:
        return REQUEST_HEADER_SIZE
    if version == VERSION_2:
        return REQUEST2_HEADER_SIZE
    return REQUEST3_HEADER_SIZE
