"""A writer-preferring reader-writer lock for the block server.

The server's old per-export mutex serialized every client of an
export — exactly the many-VMs-one-VMI scenario the paper scales.
:class:`RWLock` lets any number of ``REQ_READ`` handlers run
concurrently while keeping writes (and CoR-populating reads, which
mutate the image) exclusive.

Writer preference: once a writer is waiting, new readers queue behind
it.  Under the paper's read-mostly boot storms writers are rare, so
this avoids writer starvation without measurably delaying readers.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Shared/exclusive lock.  Not reentrant in either mode."""

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- shared (read) side -------------------------------------------------

    def acquire_read(self, timeout: float | None = None) -> bool:
        with self._cond:
            ok = self._cond.wait_for(
                lambda: not self._writer_active
                and not self._writers_waiting,
                timeout)
            if not ok:
                return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- exclusive (write) side ---------------------------------------------

    def acquire_write(self, timeout: float | None = None) -> bool:
        with self._cond:
            self._writers_waiting += 1
            acquired = False
            try:
                acquired = self._cond.wait_for(
                    lambda: not self._writer_active
                    and self._readers == 0,
                    timeout)
                if acquired:
                    self._writer_active = True
                return acquired
            finally:
                self._writers_waiting -= 1
                if not acquired and not self._writers_waiting \
                        and not self._writer_active:
                    # Readers queue behind waiting writers; if the last
                    # waiting writer gives up (timeout or interrupt)
                    # nobody releases anything afterwards, so wake the
                    # queued readers or they block forever.
                    self._cond.notify_all()

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    # -- context managers ---------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        return (f"<RWLock readers={self._readers} "
                f"writer={self._writer_active} "
                f"writers_waiting={self._writers_waiting}>")
