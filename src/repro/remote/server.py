"""The block server: export local images over TCP.

One thread per connection.  Dispatch is export-scoped and
reader-writer locked:

* ``REQ_READ`` takes the export's **shared** lock when the driver
  declares :attr:`~repro.imagefmt.driver.BlockDriver.supports_concurrent_reads`
  (raw files, read-only QCOW2) — concurrent clients of one export, the
  paper's many-VMs-one-VMI scenario, then proceed in parallel;
* ``REQ_WRITE``/``REQ_FLUSH`` — and *all* requests against drivers
  whose read path may mutate state (cache images with copy-on-read,
  anything opened read-write) — take the **exclusive** lock.

The parallel/exclusive decision is made once per export at
:meth:`BlockServer.add_export` time from the driver's declared
contract (see the locking-contract notes in
:mod:`repro.imagefmt.driver`); chains with range tracking enabled are
always serialized (RangeSet mutation is not thread-safe), and
``parallel_reads=False`` on the server forces the old fully-serialized
behaviour for A/B benchmarking.
Per-export :class:`ExportStats` are the authoritative traffic measure
under concurrency and are guarded by their own mutex.

:meth:`BlockServer.close` is a graceful shutdown: it stops the accept
loop, half-closes live connections so in-flight requests drain their
responses, joins the serving threads, and force-closes anything that
outlives the drain timeout.  A :class:`~repro.remote.fault.FaultInjector`
can be attached to drop/delay/error a deterministic or random subset
of requests, which is how the client's retry path is tested.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field

from repro.imagefmt.driver import BlockDriver
from repro.remote import protocol as wire
from repro.remote.fault import (
    ACTION_DELAY,
    ACTION_DROP,
    ACTION_ERROR,
    FaultInjector,
)
from repro.remote.rwlock import RWLock


def _chain_range_tracked(driver: BlockDriver) -> bool:
    """True if any image in the backing chain records touched ranges."""
    img: BlockDriver | None = driver
    while img is not None:
        if img.stats.track_ranges:
            return True
        img = img.backing
    return False


@dataclass
class ExportStats:
    """Traffic counters for one export.

    All fields — including ``connections`` — are mutated only under
    the export's stats mutex, so they are exact even with many
    parallel readers (the per-driver ``DriverStats`` make no such
    guarantee; see :mod:`repro.imagefmt.driver`).
    """

    connections: int = 0
    read_ops: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    bytes_written: int = 0
    errors: int = 0


@dataclass
class _Export:
    driver: BlockDriver
    writable: bool
    parallel_reads: bool
    lock: RWLock = field(default_factory=RWLock)
    stats_lock: threading.Lock = field(default_factory=threading.Lock)
    stats: ExportStats = field(default_factory=ExportStats)


class BlockServer:
    """Serves registered images until closed."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 parallel_reads: bool = True,
                 fault_injector: FaultInjector | None = None,
                 drain_timeout: float = 5.0) -> None:
        self._exports: dict[str, _Export] = {}
        self._parallel_reads = parallel_reads
        self._fault = fault_injector
        self._drain_timeout = drain_timeout
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(64)
        self.host, self.port = self._sock.getsockname()
        self._closing = False
        # Guards _conns/_workers/_closing; never held while blocking.
        self._state_lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._workers: set[threading.Thread] = set()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"blockserver-{self.port}-accept")
        self._accept_thread.start()

    # -- exports -----------------------------------------------------------

    def add_export(self, name: str, driver: BlockDriver,
                   *, writable: bool = False) -> None:
        """Register an open driver under an export name.

        The server takes ownership for serving purposes only; the
        caller still closes the driver after the server shuts down.
        Whether reads of this export run in parallel is decided here,
        once, from ``driver.supports_concurrent_reads`` — a driver that
        is unsafe for concurrent reads (read-write QCOW2, CoR caches,
        remote connections) is served fully serialized.  A chain with
        range tracking enabled (``enable_range_tracking``, the Table 1
        unique-reads measurement) is likewise serialized: RangeSet
        mutation is not thread-safe.  Enable tracking *before*
        registering the export; the decision is not revisited.
        """
        if name in self._exports:
            raise ValueError(f"export {name!r} already registered")
        parallel = (self._parallel_reads
                    and driver.supports_concurrent_reads
                    and not _chain_range_tracked(driver))
        self._exports[name] = _Export(driver, writable, parallel)

    def export_stats(self, name: str) -> ExportStats:
        return self._exports[name].stats

    def url(self, name: str) -> str:
        return f"nbd://{self.host}:{self.port}/{name}"

    def set_fault_injector(self, injector: FaultInjector | None) -> None:
        """Attach (or detach) a fault injector for subsequent requests."""
        self._fault = injector

    # -- serving -----------------------------------------------------------

    def _accept_loop(self) -> None:
        n = 0
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # socket closed by close()
            with self._state_lock:
                if self._closing:
                    conn.close()
                    return
                self._workers = {t for t in self._workers if t.is_alive()}
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    daemon=True,
                    name=f"blockserver-{self.port}-conn{n}")
                self._conns.add(conn)
                self._workers.add(thread)
            thread.start()
            n += 1

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            name = wire.recv_handshake_request(conn)
            export = self._exports.get(name)
            if export is None:
                wire.send_handshake_response(conn, error=True)
                return
            with export.stats_lock:
                export.stats.connections += 1
            wire.send_handshake_response(conn,
                                         size=export.driver.size)
            self._request_loop(conn, export)
        except (wire.ProtocolError, OSError):
            pass  # client went away or spoke garbage: drop it
        finally:
            with self._state_lock:
                self._conns.discard(conn)
            conn.close()

    def _request_loop(self, conn: socket.socket,
                      export: _Export) -> None:
        while True:
            req = wire.recv_request(conn)
            if req.req_type == wire.REQ_DISCONNECT:
                return
            if self._fault is not None:
                action = self._fault.next_action()
                if action == ACTION_DROP:
                    return  # close without responding: client sees EOF
                if action == ACTION_DELAY:
                    time.sleep(self._fault.delay_seconds)
                elif action == ACTION_ERROR:
                    wire.send_response(conn, error="injected fault")
                    continue
            try:
                payload = self._dispatch(export, req)
            except Exception as exc:  # surfaced to the client
                with export.stats_lock:
                    export.stats.errors += 1
                wire.send_response(conn, error=str(exc))
                continue
            wire.send_response(conn, payload=payload)

    def _dispatch(self, export: _Export, req: wire.Request) -> bytes:
        if req.req_type == wire.REQ_READ:
            ctx = (export.lock.read_locked() if export.parallel_reads
                   else export.lock.write_locked())
            with ctx:
                data = export.driver.read(req.offset, req.length)
            with export.stats_lock:
                export.stats.read_ops += 1
                export.stats.bytes_read += len(data)
            return data
        if req.req_type == wire.REQ_WRITE:
            if not export.writable:
                raise PermissionError("export is read-only")
            with export.lock.write_locked():
                export.driver.write(req.offset, req.payload)
            with export.stats_lock:
                export.stats.write_ops += 1
                export.stats.bytes_written += len(req.payload)
            return b""
        if req.req_type == wire.REQ_FLUSH:
            with export.lock.write_locked():
                export.driver.flush()
            return b""
        raise wire.ProtocolError(
            f"unknown request type {req.req_type}")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Graceful shutdown: stop accepting, drain, join, force-close.

        In-flight requests finish and send their responses (connections
        are only half-closed at first); anything still alive after
        ``drain_timeout`` has its socket torn down.  After close()
        returns, no serving thread of this server is left running.
        """
        with self._state_lock:
            if self._closing:
                return
            self._closing = True
            conns = list(self._conns)
            workers = list(self._workers)
        # A blocked accept() is not interrupted by closing the listen
        # socket from another thread on Linux; wake it with a throwaway
        # connection, which the loop sees, closes, and exits on.
        try:
            with socket.create_connection((self.host, self.port),
                                          timeout=1.0):
                pass
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=self._drain_timeout)
        # Drain phase: stop reading further requests, let in-flight
        # dispatches send their responses.
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RD)
            except OSError:
                pass
        deadline = time.monotonic() + self._drain_timeout
        for t in workers:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        # Cancel phase: tear down whatever outlived the drain window.
        with self._state_lock:
            leftovers = list(self._conns)
        for conn in leftovers:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for t in workers:
            t.join(timeout=1.0)

    def __enter__(self) -> "BlockServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
