"""The block server: export local images over TCP.

One thread per connection; each export's driver is guarded by a lock
(our drivers are not thread-safe, and concurrent clients of one export
are exactly the paper's many-VMs-one-VMI scenario).  The server is a
context manager; tests and examples run it on an ephemeral localhost
port.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, field

from repro.imagefmt.driver import BlockDriver
from repro.remote import protocol as wire


@dataclass
class ExportStats:
    connections: int = 0
    read_ops: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    bytes_written: int = 0
    errors: int = 0


@dataclass
class _Export:
    driver: BlockDriver
    writable: bool
    lock: threading.Lock = field(default_factory=threading.Lock)
    stats: ExportStats = field(default_factory=ExportStats)


class BlockServer:
    """Serves registered images until closed."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._exports: dict[str, _Export] = {}
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.host, self.port = self._sock.getsockname()
        self._closing = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"blockserver-{self.port}")
        self._accept_thread.start()

    # -- exports -----------------------------------------------------------

    def add_export(self, name: str, driver: BlockDriver,
                   *, writable: bool = False) -> None:
        """Register an open driver under an export name.

        The server takes ownership for serving purposes only; the
        caller still closes the driver after the server shuts down.
        """
        if name in self._exports:
            raise ValueError(f"export {name!r} already registered")
        self._exports[name] = _Export(driver, writable)

    def export_stats(self, name: str) -> ExportStats:
        return self._exports[name].stats

    def url(self, name: str) -> str:
        return f"nbd://{self.host}:{self.port}/{name}"

    # -- serving -----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # socket closed
            threading.Thread(target=self._serve_connection,
                             args=(conn,), daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            name = wire.recv_handshake_request(conn)
            export = self._exports.get(name)
            if export is None:
                wire.send_handshake_response(conn, error=True)
                return
            export.stats.connections += 1
            wire.send_handshake_response(conn,
                                         size=export.driver.size)
            self._request_loop(conn, export)
        except (wire.ProtocolError, OSError):
            pass  # client went away or spoke garbage: drop it
        finally:
            conn.close()

    def _request_loop(self, conn: socket.socket,
                      export: _Export) -> None:
        while True:
            req = wire.recv_request(conn)
            if req.req_type == wire.REQ_DISCONNECT:
                return
            try:
                payload = self._dispatch(export, req)
            except Exception as exc:  # surfaced to the client
                export.stats.errors += 1
                wire.send_response(conn, error=str(exc))
                continue
            wire.send_response(conn, payload=payload)

    def _dispatch(self, export: _Export, req: wire.Request) -> bytes:
        with export.lock:
            if req.req_type == wire.REQ_READ:
                data = export.driver.read(req.offset, req.length)
                export.stats.read_ops += 1
                export.stats.bytes_read += len(data)
                return data
            if req.req_type == wire.REQ_WRITE:
                if not export.writable:
                    raise PermissionError("export is read-only")
                export.driver.write(req.offset, req.payload)
                export.stats.write_ops += 1
                export.stats.bytes_written += len(req.payload)
                return b""
            if req.req_type == wire.REQ_FLUSH:
                export.driver.flush()
                return b""
        raise wire.ProtocolError(
            f"unknown request type {req.req_type}")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._closing = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "BlockServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
