"""The block server: export local images over TCP.

Two serving engines share this class (DESIGN.md §11):

* the default **event-loop** engine
  (:mod:`repro.remote.eventloop`) — a single-threaded
  ``selectors`` loop doing zero-copy framing (``recv_into`` into
  preallocated buffers, ``sendmsg`` scatter-gather responses) with a
  small fixed worker pool for the blocking ``driver.read``/``write``
  calls, built to survive hundreds of concurrent clients;
* the legacy **threaded** engine (``BlockServer(threaded=True)``,
  kept for A/B comparison) — one thread per connection; under the v2
  (pipelined) protocol each connection additionally fans its tagged
  requests out to short-lived worker threads, so requests *on one
  socket* complete out of order — reads overlap through the export's
  shared lock and each response is serialized onto the wire by a
  per-connection send lock.

A ``max_protocol=1`` server emulates a genuine pre-v2 deployment (it
drops v2 hellos on the floor), which is how the client's negotiation
fallback is exercised.

Dispatch is export-scoped and reader-writer locked:

* ``REQ_READ`` takes the export's **shared** lock when the driver
  declares :attr:`~repro.imagefmt.driver.BlockDriver.supports_concurrent_reads`
  (raw files, read-only QCOW2) — concurrent clients of one export, the
  paper's many-VMs-one-VMI scenario, then proceed in parallel;
* ``REQ_WRITE``/``REQ_FLUSH`` — and *all* requests against drivers
  whose read path may mutate state (cache images with copy-on-read,
  anything opened read-write) — take the **exclusive** lock.

The parallel/exclusive decision is made once per export at
:meth:`BlockServer.add_export` time from the driver's declared
contract (see the locking-contract notes in
:mod:`repro.imagefmt.driver`); chains with range tracking enabled are
always serialized (RangeSet mutation is not thread-safe), and
``parallel_reads=False`` on the server forces the old fully-serialized
behaviour for A/B benchmarking.
Per-export :class:`ExportStats` are the authoritative traffic measure
under concurrency and are guarded by their own mutex.

:meth:`BlockServer.close` is a graceful shutdown: it stops the accept
loop, half-closes live connections so in-flight requests drain their
responses, joins the serving threads, and force-closes anything that
outlives the drain timeout.  A :class:`~repro.remote.fault.FaultInjector`
can be attached to drop/delay/error a deterministic or random subset
of requests, which is how the client's retry path is tested.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import weakref
from dataclasses import dataclass, field

from repro.imagefmt.driver import BlockDriver
from repro.metrics.collectors import LatencyHistogram, op_latency_histograms
from repro.metrics.registry import get_registry, latency_samples
from repro.metrics.tracing import TRACER
from repro.remote import protocol as wire
from repro.remote.fault import (
    ACTION_DELAY,
    ACTION_DROP,
    ACTION_ERROR,
    FaultInjector,
)
from repro.remote.rwlock import RWLock

_OP_KINDS = {wire.REQ_READ: "read", wire.REQ_WRITE: "write",
             wire.REQ_FLUSH: "flush"}
# Propagated span names, interned once — _serve_traced runs per
# request.
_OP_SPAN_NAMES = {op: f"export.{kind}" for op, kind in _OP_KINDS.items()}


def _chain_range_tracked(driver: BlockDriver) -> bool:
    """True if any image in the backing chain records touched ranges."""
    img: BlockDriver | None = driver
    while img is not None:
        if img.stats.track_ranges:
            return True
        img = img.backing
    return False


@dataclass
class ExportStats:
    """Traffic counters for one export.

    All fields — including ``connections`` — are mutated only under
    :attr:`lock` (the export's stats mutex), so they are exact even
    with many parallel readers (the per-driver ``DriverStats`` make no
    such guarantee; see :mod:`repro.imagefmt.driver`).
    :meth:`summary` takes the same lock, so a snapshot under load can
    never pair a ``read_ops`` from before a request with a
    ``bytes_read`` from after it — the byte-for-byte reconciliation
    checks in the benchmarks rely on that.
    """

    connections: int = 0
    read_ops: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    bytes_written: int = 0
    manifest_ops: int = 0  # v5 cluster-manifest requests served
    errors: int = 0
    wire_bytes_sent: int = 0      # response frames + payloads
    wire_bytes_received: int = 0  # request frames + payloads
    bytes_copied: int = 0         # payload bytes memcpy'd in user space
    inflight_hwm: int = 0         # most requests dispatched at once
    wire_compressed_bytes: int = 0  # compressed payload bytes on the wire
    wire_compressed_bytes_raw: int = 0  # their inflated (logical) size
    latency: dict[str, LatencyHistogram] = field(
        default_factory=op_latency_histograms)

    @property
    def compression_ratio(self) -> float:
        """wire/raw for payloads that shipped compressed (1.0 = none)."""
        if not self.wire_compressed_bytes_raw:
            return 1.0
        return (self.wire_compressed_bytes
                / self.wire_compressed_bytes_raw)
    #: The stats mutex itself.  Living on the stats object (rather than
    #: beside it on ``_Export``) lets bare ``ExportStats`` instances be
    #: snapshotted consistently too.
    lock: threading.Lock = field(default_factory=threading.Lock,
                                 repr=False, compare=False)

    def summary(self) -> dict:
        """Plain-dict view for reports and experiment logs.

        Taken under :attr:`lock` — the snapshot is atomic with respect
        to every datapath mutation."""
        with self.lock:
            return {
                "connections": self.connections,
                "read_ops": self.read_ops,
                "bytes_read": self.bytes_read,
                "write_ops": self.write_ops,
                "bytes_written": self.bytes_written,
                "manifest_ops": self.manifest_ops,
                "errors": self.errors,
                "wire_bytes_sent": self.wire_bytes_sent,
                "wire_bytes_received": self.wire_bytes_received,
                "bytes_copied": self.bytes_copied,
                "inflight_hwm": self.inflight_hwm,
                "wire_compressed_bytes": self.wire_compressed_bytes,
                "wire_compressed_bytes_raw":
                    self.wire_compressed_bytes_raw,
                "compression_ratio": self.compression_ratio,
                "latency": {kind: h.summary()
                            for kind, h in self.latency.items()
                            if h.count},
            }


@dataclass
class _Export:
    name: str
    driver: BlockDriver
    writable: bool
    parallel_reads: bool
    lock: RWLock = field(default_factory=RWLock)
    stats: ExportStats = field(default_factory=ExportStats)
    inflight: int = 0  # guarded by stats_lock
    last_error: str | None = None  # guarded by stats_lock
    collector: object | None = None  # registry handle, removed on close
    owned: bool = False  # server opened the driver and closes it too
    #: Cluster-hash manifest served to v5 MANIFEST requests: attached
    #: by the warmer (set_manifest) or built lazily on first request.
    #: The serialized blob is cached beside it; both fields are guarded
    #: by ``manifest_lock`` and dropped whenever a write lands.
    manifest: object | None = None
    manifest_blob: bytes | None = None
    manifest_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False)

    @property
    def stats_lock(self) -> threading.Lock:
        """The stats mutex (lives on :class:`ExportStats` so
        ``summary()`` can be self-consistent; see there)."""
        return self.stats.lock

    def record_error(self, exc: Exception) -> None:
        with self.stats_lock:
            self.stats.errors += 1
            self.last_error = f"{type(exc).__name__}: {exc}"


def _register_export_collector(name: str, export: _Export,
                               registry=None):
    """Publish an export's :class:`ExportStats` through the registry.

    Weakref-backed and scrape-time only: the mutex-guarded counters on
    the datapath are untouched, and a dropped export prunes itself at
    the next scrape.  The handle is kept on the export so
    :meth:`BlockServer.close` can unregister eagerly.

    Besides the wire-traffic counters this also surfaces the export's
    crash-consistency health (DESIGN.md §9) per scrape: the driver's
    durability-barrier count (``fsync_ops``), whether the image is
    currently dirty, and whether this open ran recovery — so a fleet
    scraping ``/metrics`` sees a node serving a recovered or dirty
    image without ssh-ing in.
    """
    ref = weakref.ref(export)
    labels = {"export": name}

    def collect():
        live = ref()
        if live is None:
            return None
        driver = live.driver
        consistency = []
        if not driver.closed:
            info = driver.image_info()
            # Cache effectiveness of the exported chain — the per-node
            # inputs to the fleet aggregator's cache hit ratio and
            # storage-offload signals (Fig 2/11).  Hit/miss accounting
            # lives on the cache *layer*, not the chain top, so walk
            # the whole chain; "backing bytes" are what the deepest
            # backed layer pulled from its base — the traffic that
            # actually reached central storage.
            hit = miss = 0.0
            base_pull = 0.0
            layer = driver
            while layer is not None:
                hit += layer.stats.cache_hit_bytes
                miss += layer.stats.cache_miss_bytes
                nxt = getattr(layer, "backing", None)
                if nxt is not None:
                    base_pull = float(layer.stats.backing_bytes_read)
                layer = nxt
            consistency = [
                ("block_export_fsync_ops_total", labels,
                 float(driver.stats.fsync_ops)),
                ("block_export_image_dirty", labels,
                 1.0 if info.get("dirty") else 0.0),
                ("block_export_image_recovered", labels,
                 1.0 if info.get("recovered") else 0.0),
                ("block_export_cache_hit_bytes_total", labels, hit),
                ("block_export_cache_miss_bytes_total", labels, miss),
                ("block_export_backing_bytes_read_total", labels,
                 base_pull),
            ]
        with live.stats_lock:
            s = live.stats
            out = consistency + [
                ("block_export_connections_total", labels,
                 float(s.connections)),
                ("block_export_read_ops_total", labels, float(s.read_ops)),
                ("block_export_bytes_read_total", labels,
                 float(s.bytes_read)),
                ("block_export_write_ops_total", labels,
                 float(s.write_ops)),
                ("block_export_bytes_written_total", labels,
                 float(s.bytes_written)),
                ("block_export_manifest_requests_total", labels,
                 float(s.manifest_ops)),
                ("block_export_errors_total", labels, float(s.errors)),
                ("block_export_wire_bytes_sent_total", labels,
                 float(s.wire_bytes_sent)),
                ("block_export_wire_bytes_received_total", labels,
                 float(s.wire_bytes_received)),
                ("block_export_bytes_copied_total", labels,
                 float(s.bytes_copied)),
                ("block_export_inflight_hwm", labels,
                 float(s.inflight_hwm)),
                ("block_export_wire_compressed_bytes_total", labels,
                 float(s.wire_compressed_bytes)),
                ("block_export_wire_compressed_bytes_raw_total", labels,
                 float(s.wire_compressed_bytes_raw)),
            ]
            hists = dict(s.latency)
        out.extend(latency_samples(
            "block_export_op_latency", labels, hists))
        return out

    registry = registry if registry is not None else get_registry()
    return registry.register_collector(collect)


class BlockServer:
    """Serves registered images until closed."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 parallel_reads: bool = True,
                 fault_injector: FaultInjector | None = None,
                 drain_timeout: float = 5.0,
                 max_protocol: int = wire.MAX_VERSION,
                 max_inflight_per_conn: int = 32,
                 telemetry_port: int | None = None,
                 threaded: bool | None = None,
                 workers: int = 8,
                 compression: "bool | int" = True,
                 compress_min_size: int = wire.DEFAULT_COMPRESS_MIN,
                 registry=None,
                 ) -> None:
        """``telemetry_port`` opts in to the embedded HTTP telemetry
        endpoint (``/metrics``, ``/healthz``, ``/traces``; DESIGN.md
        §10) on that port — 0 picks an ephemeral port, None (default)
        starts no endpoint.  The endpoint lives and dies with the
        server: :meth:`close` shuts its thread down.

        ``registry`` scopes this server's metric families (export
        collectors, the telemetry endpoint's own scrape counters) to a
        private :class:`~repro.metrics.registry.MetricsRegistry`
        instead of the process-wide one.  Real deployments run one
        server per process and never need it; fleets-in-one-process
        (tests, the quickstart ``--fleet`` demo) need it so two nodes
        exporting the same image name don't collide into duplicate
        samples on each other's ``/metrics``.

        ``threaded`` picks the serving engine: ``False`` (default) is
        the single-threaded event loop with a fixed ``workers``-sized
        dispatch pool (DESIGN.md §11); ``True`` keeps the old
        thread-per-connection engine for A/B comparison.  ``None``
        consults the ``REPRO_SERVER_ENGINE`` environment variable
        (``"threaded"`` or ``"eventloop"``) so the whole test matrix
        can be re-run against either engine without code changes.

        ``compression`` is the server's *willingness* to compress v4
        payloads (True, or a zlib level 1-9); the client opts in per
        connection, so the default changes nothing for clients that
        never ask.  ``False`` refuses every compression request
        (connections still negotiate v4, just uncompressed)."""
        if max_protocol not in (wire.VERSION_1, wire.VERSION_2,
                                wire.VERSION_3, wire.VERSION_4,
                                wire.VERSION_5):
            raise ValueError(
                f"unsupported max_protocol {max_protocol}")
        if compression is not False and compression is not True \
                and not 1 <= int(compression) <= 9:
            raise ValueError(f"compression must be bool or 1..9, "
                             f"got {compression!r}")
        if threaded is None:
            threaded = (os.environ.get("REPRO_SERVER_ENGINE", "")
                        .strip().lower() == "threaded")
        self._exports: dict[str, _Export] = {}
        self._parallel_reads = parallel_reads
        self._fault = fault_injector
        self._drain_timeout = drain_timeout
        self._max_protocol = max_protocol
        self._compression = bool(compression)
        self._compress_level = (wire.DEFAULT_COMPRESS_LEVEL
                                if compression is True or
                                compression is False
                                else int(compression))
        self._compress_min = compress_min_size
        self._max_inflight_per_conn = max(1, max_inflight_per_conn)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        # The event loop is built for boot storms; a deep backlog keeps
        # a burst of hundreds of SYNs from seeing RSTs before the
        # acceptor gets to them (the kernel clamps to somaxconn).
        self._sock.listen(1024)
        self.host, self.port = self._sock.getsockname()
        self._closing = False
        # Guards _conns/_workers/_closing; never held while blocking.
        self._state_lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._workers: set[threading.Thread] = set()
        self.registry = registry if registry is not None \
            else get_registry()
        self.telemetry = None
        if telemetry_port is not None:
            from repro.metrics.telemetry_server import TelemetryServer
            self.telemetry = TelemetryServer(
                host=host, port=telemetry_port, health=self.health,
                registry=self.registry)
        self._engine = None
        self._accept_thread = None
        if threaded:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, daemon=True,
                name=f"blockserver-{self.port}-accept")
            self._accept_thread.start()
        else:
            from repro.remote.eventloop import EventLoopEngine
            self._engine = EventLoopEngine(self, self._sock,
                                           workers=workers)

    @property
    def engine(self) -> str:
        """``"eventloop"`` or ``"threaded"`` — which datapath serves."""
        return "threaded" if self._engine is None else "eventloop"

    # -- exports -----------------------------------------------------------

    def add_export(self, name: str, driver: BlockDriver,
                   *, writable: bool = False,
                   manifest=None) -> None:
        """Register an open driver under an export name.

        The server takes ownership for serving purposes only; the
        caller still closes the driver after the server shuts down.
        Whether reads of this export run in parallel is decided here,
        once, from ``driver.supports_concurrent_reads`` — a driver that
        is unsafe for concurrent reads (read-write QCOW2, CoR caches,
        remote connections) is served fully serialized.  A chain with
        range tracking enabled (``enable_range_tracking``, the Table 1
        unique-reads measurement) is likewise serialized: RangeSet
        mutation is not thread-safe.  Enable tracking *before*
        registering the export; the decision is not revisited.

        ``manifest`` attaches a
        :class:`~repro.imagefmt.manifest.ClusterManifest` to serve to
        v5 MANIFEST requests (a warmer that just populated the image
        has it in hand); without one the first MANIFEST request builds
        it by scanning the image.  Either way a write to the export
        drops the cached manifest — it is rebuilt from the image on
        the next request, never served stale.
        """
        parallel = (self._parallel_reads
                    and driver.supports_concurrent_reads
                    and not _chain_range_tracked(driver))
        export = _Export(name, driver, writable, parallel,
                         manifest=manifest)
        # Registration mutates the export dict while the telemetry
        # thread may be scraping health(); both sides go through
        # _state_lock so a scrape never sees the dict mid-mutation.
        with self._state_lock:
            if name in self._exports:
                raise ValueError(f"export {name!r} already registered")
            self._exports[name] = export
        export.collector = _register_export_collector(
            name, export, self.registry)

    def add_export_path(self, name: str, path: str, *,
                        writable: bool = False,
                        verify: bool = True) -> BlockDriver:
        """Open an image file and export it, owning the driver.

        This is the crash-safe way to (re)export images after a node
        restart: the open runs dirty-bit recovery automatically
        (DESIGN.md §9), and with ``verify=True`` a qcow2 image is
        additionally ``check()``-ed — an export that would serve
        corrupt metadata is refused with
        :class:`~repro.errors.CorruptImageError` instead of quietly
        going live.  Unlike :meth:`add_export`, the server closes the
        driver on :meth:`close`.  Returns the opened driver.
        """
        from repro.errors import CorruptImageError
        from repro.imagefmt.chain import open_chain
        from repro.imagefmt.qcow2 import Qcow2Image

        driver = open_chain(path, read_only=not writable)
        try:
            if verify and isinstance(driver, Qcow2Image):
                report = driver.check()
                errors = report.errors
                if driver.last_recovery is not None:
                    # A read-only open recovers in memory but cannot
                    # clear the on-disk dirty bit; the recovered state
                    # is safe to serve, so don't refuse over the bit.
                    errors = [e for e in errors
                              if "marked dirty" not in e]
                if errors:
                    raise CorruptImageError(
                        f"refusing to export {path}: "
                        f"{'; '.join(errors[:3])}")
            self.add_export(name, driver, writable=writable)
        except BaseException:
            driver.close()
            raise
        self._exports[name].owned = True
        return driver

    def set_manifest(self, name: str, manifest) -> None:
        """Attach (or replace) an export's cluster-hash manifest."""
        export = self._exports[name]
        with export.manifest_lock:
            export.manifest = manifest
            export.manifest_blob = None

    def export_stats(self, name: str) -> ExportStats:
        return self._exports[name].stats

    def url(self, name: str) -> str:
        return f"nbd://{self.host}:{self.port}/{name}"

    def health(self) -> dict:
        """Liveness/health snapshot, the ``/healthz`` payload.

        Per export: open/dirty/recovered state (from the driver's
        ``image_info()``), the current in-flight request depth, error
        count and the last error surfaced to a client.  Overall
        ``status`` is ``"ok"`` unless an export is closed, dirty, or
        has erred since start — then ``"degraded"`` (the telemetry
        endpoint answers 200 for ``"ok"`` and 503 for ``"degraded"``,
        so a load balancer can act on status alone).
        """
        # Snapshot under the state lock: add_export mutates the dict
        # from arbitrary threads while the telemetry thread scrapes
        # (iterating live would die with "dictionary changed size
        # during iteration").  The snapshot is a point-in-time view; an
        # export added mid-scrape shows up next scrape.
        with self._state_lock:
            closing = self._closing
            snapshot = list(self._exports.items())
        exports: dict[str, dict] = {}
        degraded = closing
        for name, export in snapshot:
            entry: dict = {
                "writable": export.writable,
                "parallel_reads": export.parallel_reads,
                "open": not export.driver.closed,
            }
            if export.driver.closed:
                degraded = True
            else:
                try:
                    info = export.driver.image_info()
                    entry["format"] = info.get("format")
                    entry["virtual_size"] = info.get("virtual_size")
                    entry["dirty"] = bool(info.get("dirty", False))
                    entry["recovered"] = bool(
                        info.get("recovered", False))
                    entry["fsync_ops"] = export.driver.stats.fsync_ops
                    # Warm-peer discovery: a node whose export carries
                    # a manifest can serve v5 peer fills without the
                    # lazy build scan.
                    entry["manifest"] = export.manifest is not None
                    if entry["dirty"] and not export.writable:
                        # A read-only open of a dirty image serves the
                        # in-memory recovered state (DESIGN.md §9) —
                        # worth flagging, not healthy to stay in
                        # forever.
                        degraded = True
                except Exception:
                    # The driver closed (or otherwise failed) between
                    # the `closed` check and the info call — a scrape
                    # must report the degradation, never propagate it
                    # to the telemetry thread.
                    entry["open"] = False
                    degraded = True
            with export.stats_lock:
                entry["inflight"] = export.inflight
                entry["connections"] = export.stats.connections
                entry["errors"] = export.stats.errors
                entry["last_error"] = export.last_error
            if entry["errors"]:
                degraded = True
            exports[name] = entry
        # Datapath backlog + prefetch effectiveness at the top level so
        # fleet_top can show them without a full metrics parse: the
        # eventloop engine reports its dispatch-queue depth, the
        # threaded engine's equivalent is the summed per-export
        # in-flight count.
        if self._engine is not None:
            queue_depth = self._engine.queue_depth
        else:
            queue_depth = sum(e["inflight"] for e in exports.values())
        registry = self.registry
        return {
            "status": "degraded" if degraded else "ok",
            "closing": closing,
            "engine": self.engine,
            # Where this server's block port answers — how a peer-fill
            # client turns a fleet health view into a dialable
            # ``nbd://host:port/export`` URL (see cluster/peerfill.py).
            "block_address": [self.host, self.port],
            "max_protocol": self._max_protocol,
            "compression": self._compression,
            "queue_depth": queue_depth,
            "prefetch": {
                "hit_bytes": registry.counter(
                    "prefetch_hit_bytes_total").value,
                "wasted_bytes": registry.counter(
                    "prefetch_wasted_bytes_total").value,
            },
            "exports": exports,
        }

    def set_fault_injector(self, injector: FaultInjector | None) -> None:
        """Attach (or detach) a fault injector for subsequent requests."""
        self._fault = injector

    # -- serving -----------------------------------------------------------

    def _accept_loop(self) -> None:
        n = 0
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # socket closed by close()
            with self._state_lock:
                if self._closing:
                    conn.close()
                    return
                self._workers = {t for t in self._workers if t.is_alive()}
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn, n),
                    daemon=True,
                    name=f"blockserver-{self.port}-conn{n}")
                self._conns.add(conn)
                self._workers.add(thread)
            thread.start()
            n += 1

    def _serve_connection(self, conn: socket.socket,
                          conn_id: int) -> None:
        try:
            version, name, compress_req = wire.recv_handshake_request_ex(
                conn, max_version=self._max_protocol)
            compress = (compress_req and version >= wire.VERSION_4
                        and self._compression)
            export = self._exports.get(name)
            if export is None:
                if version >= wire.VERSION_2:
                    wire.send_handshake_response_v2(
                        conn, error=True, version=version)
                else:
                    wire.send_handshake_response(conn, error=True)
                return
            with export.stats_lock:
                export.stats.connections += 1
            if version >= wire.VERSION_2:
                wire.send_handshake_response_v2(
                    conn, size=export.driver.size, version=version,
                    compress=compress)
                self._request_loop_v2(conn, export, version, conn_id,
                                      compress)
            else:
                wire.send_handshake_response(conn,
                                             size=export.driver.size)
                self._request_loop(conn, export)
        except (wire.ProtocolError, OSError):
            pass  # client went away or spoke garbage: drop it
        finally:
            with self._state_lock:
                self._conns.discard(conn)
            conn.close()

    def _request_loop(self, conn: socket.socket,
                      export: _Export) -> None:
        while True:
            req = wire.recv_request(conn)
            self._count_received(export, wire.REQUEST_HEADER_SIZE, req)
            # recv_request assembled any write payload via a
            # join-of-chunks — one user-space copy of the payload.
            self._count_copied(export, len(req.payload))
            if req.req_type == wire.REQ_DISCONNECT:
                return
            if req.req_type == wire.REQ_MANIFEST:
                # Manifest requests are a v5 capability; this lock-step
                # loop only ever serves v1.  A per-request error keeps
                # the stream intact (same contract as the v2+ loops).
                body = b"manifest requires protocol v5"
                self._count_sent(export, wire.RESPONSE_HEADER_SIZE,
                                 len(body))
                self._count_copied(export, len(body))
                wire.send_response(conn, error=body.decode("ascii"))
                continue
            # Snapshot the injector once: set_fault_injector(None) may
            # run concurrently, and the action chosen above must pair
            # with *that* injector's delay (not whatever self._fault
            # points at by the time we sleep).
            fault = self._fault
            if fault is not None:
                action = fault.next_action()
                if action == ACTION_DROP:
                    return  # close without responding: client sees EOF
                if action == ACTION_DELAY:
                    time.sleep(fault.delay_seconds)
                elif action == ACTION_ERROR:
                    # Count before sending: once the client has read
                    # the frame the counters must already cover it.
                    self._count_sent(export,
                                     wire.RESPONSE_HEADER_SIZE,
                                     len(b"injected fault"))
                    self._count_copied(export, len(b"injected fault"))
                    wire.send_response(conn, error="injected fault")
                    continue
            self._enter_inflight(export)
            try:
                try:
                    payload = self._dispatch(export, req)
                except Exception as exc:  # surfaced to the client
                    export.record_error(exc)
                    body = str(exc).encode("utf-8")
                    self._count_sent(export, wire.RESPONSE_HEADER_SIZE,
                                     len(body))
                    self._count_copied(export, len(body))
                    wire.send_response(conn, error=str(exc))
                    continue
                self._count_sent(export, wire.RESPONSE_HEADER_SIZE,
                                 len(payload))
                # send_response concatenates header + payload into one
                # buffer before sendall — the second copy the event
                # loop's sendmsg avoids.
                self._count_copied(export, len(payload))
                wire.send_response(conn, payload=payload)
            finally:
                self._exit_inflight(export)

    def _request_loop_v2(self, conn: socket.socket, export: _Export,
                         version: int, conn_id: int,
                         compress: bool = False) -> None:
        """Tagged loop: read requests, serve each in its own worker.

        Workers dispatch through the same export RWLock as separate
        connections do, so reads on one socket overlap; a send lock
        keeps their response frames from interleaving on the wire.  A
        semaphore bounds the per-connection worker fan-out — the
        transport-level backpressure matching the client's window.
        v3 differs only in the request framing (a trace-context field
        ahead of the payload); v4 additionally allows compressed
        payloads in either direction when ``compress`` was granted in
        the handshake; v5 adds the MANIFEST request type (answered
        with a per-request error on connections that negotiated
        lower); responses are framing-identical throughout.
        """
        recv = (wire.recv_request_v3 if version >= wire.VERSION_3
                else wire.recv_request_v2)
        header = (wire.REQUEST3_HEADER_SIZE
                  if version >= wire.VERSION_3
                  else wire.REQUEST2_HEADER_SIZE)
        send_lock = threading.Lock()
        limiter = threading.BoundedSemaphore(self._max_inflight_per_conn)
        workers: list[threading.Thread] = []
        prefix = threading.current_thread().name
        try:
            while True:
                if version >= wire.VERSION_4:
                    tag, req, wire_len = wire.recv_request_v4(conn)
                    self._count_received(export, header, req,
                                         payload_wire_len=wire_len)
                    if wire_len != len(req.payload):  # arrived deflated
                        with export.stats_lock:
                            export.stats.wire_compressed_bytes += \
                                wire_len
                            export.stats.wire_compressed_bytes_raw += \
                                len(req.payload)
                else:
                    tag, req = recv(conn)
                    self._count_received(export, header, req)
                # recv_request_v2/v3/v4 assembled any write payload
                # with a join — one user-space copy.
                self._count_copied(export, len(req.payload))
                if req.req_type == wire.REQ_DISCONNECT:
                    return
                if req.req_type == wire.REQ_MANIFEST \
                        and version < wire.VERSION_5:
                    # Negotiated below v5: answer with a per-request
                    # error, never a torn stream — old peers stay
                    # usable for everything else.
                    self._send_response_v2(
                        conn, export, send_lock, tag,
                        error="manifest requires protocol v5")
                    continue
                # Snapshot the injector once, here in the reader loop:
                # the worker must see the same injector the action came
                # from, or a concurrent set_fault_injector(None) turns
                # its delay lookup into an AttributeError and the
                # request dies unanswered.
                fault = self._fault
                action = (fault.next_action()
                          if fault is not None else None)
                delay = (fault.delay_seconds
                         if action == ACTION_DELAY else 0.0)
                if action == ACTION_DROP:
                    return  # close without responding: client sees EOF
                limiter.acquire()
                if len(workers) > 2 * self._max_inflight_per_conn:
                    workers = [t for t in workers if t.is_alive()]
                thread = threading.Thread(
                    target=self._serve_request_v2,
                    args=(conn, export, tag, req, send_lock, limiter,
                          action, delay, conn_id, compress),
                    daemon=True,
                    name=f"{prefix}-req{tag}")
                workers.append(thread)
                thread.start()
        finally:
            # Let in-flight workers send their responses before the
            # connection is torn down (close() relies on this drain).
            deadline = time.monotonic() + self._drain_timeout
            for t in workers:
                t.join(timeout=max(0.0, deadline - time.monotonic()))

    def _serve_request_v2(self, conn: socket.socket, export: _Export,
                          tag: int, req: wire.Request,
                          send_lock: threading.Lock,
                          limiter: threading.BoundedSemaphore,
                          action: str | None, delay: float,
                          conn_id: int,
                          compress: bool = False) -> None:
        self._enter_inflight(export)
        try:
            if action == ACTION_DELAY:
                # Sleeping here (not in the reader loop) lets injected
                # latency overlap across the window, which is the
                # whole point of the pipelined protocol.  The delay
                # value was captured by the reader loop together with
                # the action — self._fault may have been swapped or
                # detached since.
                time.sleep(delay)
            elif action == ACTION_ERROR:
                self._send_response_v2(conn, export, send_lock, tag,
                                       error="injected fault")
                return
            span = end = None
            try:
                payload, span, end = self._serve_traced(
                    export, req, conn_id)
            except Exception as exc:  # surfaced to the client
                export.record_error(exc)
                self._send_response_v2(conn, export, send_lock, tag,
                                       error=str(exc))
                return
            self._send_response_v2(conn, export, send_lock, tag,
                                   payload=payload, compress=compress)
            if span is not None:
                # Attr building and record emission deliberately land
                # after the send: they overlap the client's next
                # request instead of adding to this one's round trip.
                self._fill_span_attrs(span, export, req, conn_id)
                TRACER.emit_closed(span, end)
        except OSError:
            pass  # client went away mid-response; reader loop notices
        finally:
            self._exit_inflight(export)
            limiter.release()

    def _serve_traced(
            self, export: _Export, req: wire.Request,
            conn_id: int) -> tuple[bytes, object | None, float | None]:
        """Dispatch one request, inside a propagated child span when
        the frame carried trace context (v3) and tracing is on here.

        The span re-roots this worker thread in the *caller's* trace:
        the driver's own ``block.read`` events underneath attach to it,
        so a merged client+server report shows the served bytes under
        the client span that issued the request (DESIGN.md §10).

        Returns ``(payload, span, end)``; the caller emits the span
        record via ``TRACER.emit_closed`` after the response is on the
        wire.  On a dispatch error the record is emitted here (errors
        are the cold path, and the caller never sees the span).
        """
        ctx = req.trace_ctx
        if ctx is None or not TRACER.enabled:
            return self._dispatch(export, req), None, None
        # Attrs are filled in by _fill_span_attrs after the response is
        # sent — only the ids and start time must exist before dispatch
        # (child events parent on them); everything else is deferrable.
        span = TRACER.begin_propagated(
            _OP_SPAN_NAMES.get(req.req_type, "export.other"),
            ctx[0], ctx[1], {})
        try:
            payload = self._dispatch(export, req)
        except BaseException:
            end = TRACER.close_propagated(span)
            self._fill_span_attrs(span, export, req, conn_id)
            TRACER.emit_closed(span, end)
            raise
        return payload, span, TRACER.close_propagated(span)

    @staticmethod
    def _fill_span_attrs(span, export: _Export, req: wire.Request,
                         conn_id: int) -> None:
        span.attrs.update(
            export=export.name, conn=conn_id, offset=req.offset,
            length=(len(req.payload) if req.req_type == wire.REQ_WRITE
                    else req.length))

    def _send_response_v2(self, conn: socket.socket, export: _Export,
                          send_lock: threading.Lock, tag: int, *,
                          payload: bytes = b"",
                          error: str | None = None,
                          compress: bool = False) -> None:
        compressed = False
        if compress and error is None and payload:
            raw_len = len(payload)
            payload, compressed = wire.compress_payload(
                payload, self._compress_level, self._compress_min)
            if compressed:
                with export.stats_lock:
                    export.stats.wire_compressed_bytes += len(payload)
                    export.stats.wire_compressed_bytes_raw += raw_len
        body = (error.encode("utf-8") if error is not None else payload)
        self._count_sent(export, wire.RESPONSE2_HEADER_SIZE, len(body))
        # send_response_v2 concatenates header + body before sendall.
        self._count_copied(export, len(body))
        with send_lock:
            wire.send_response_v2(conn, tag, payload=payload,
                                  error=error, compressed=compressed)

    def _count_received(self, export: _Export, header: int,
                        req: wire.Request,
                        payload_wire_len: int | None = None) -> None:
        with export.stats_lock:
            export.stats.wire_bytes_received += header + (
                len(req.payload) if payload_wire_len is None
                else payload_wire_len)

    def _count_sent(self, export: _Export, header: int,
                    payload_len: int) -> None:
        with export.stats_lock:
            export.stats.wire_bytes_sent += header + payload_len

    def _count_copied(self, export: _Export, nbytes: int) -> None:
        """Account payload bytes memcpy'd between user-space buffers.

        Only *payload* copies count (header packing is O(16 bytes) and
        unavoidable); the event-loop engine's recv_into/sendmsg
        datapath accounts zero here, which is the measurable claim
        behind its "zero-copy framing" (DESIGN.md §11)."""
        if nbytes:
            with export.stats_lock:
                export.stats.bytes_copied += nbytes

    @staticmethod
    def _enter_inflight(export: _Export) -> None:
        """Start of one request's service time (delay, dispatch, and
        response send all included — the high-water mark measures how
        many requests a connection's window keeps concurrently in
        service, which is what pipelining is supposed to raise)."""
        with export.stats_lock:
            export.inflight += 1
            if export.inflight > export.stats.inflight_hwm:
                export.stats.inflight_hwm = export.inflight

    @staticmethod
    def _exit_inflight(export: _Export) -> None:
        with export.stats_lock:
            export.inflight -= 1

    def _dispatch(self, export: _Export, req: wire.Request) -> bytes:
        started = time.monotonic()
        try:
            return self._dispatch_inner(export, req)
        finally:
            kind = _OP_KINDS.get(req.req_type, "other")
            export.stats.latency[kind].observe(
                time.monotonic() - started)

    def _dispatch_inner(self, export: _Export,
                        req: wire.Request) -> bytes:
        if req.req_type == wire.REQ_READ:
            ctx = (export.lock.read_locked() if export.parallel_reads
                   else export.lock.write_locked())
            with ctx:
                data = export.driver.read(req.offset, req.length)
            with export.stats_lock:
                export.stats.read_ops += 1
                export.stats.bytes_read += len(data)
            return data
        if req.req_type == wire.REQ_WRITE:
            if not export.writable:
                raise PermissionError("export is read-only")
            with export.lock.write_locked():
                export.driver.write(req.offset, req.payload)
            with export.stats_lock:
                export.stats.write_ops += 1
                export.stats.bytes_written += len(req.payload)
            with export.manifest_lock:
                # Any cached manifest no longer describes the image;
                # the next MANIFEST request rebuilds from the bytes.
                export.manifest = None
                export.manifest_blob = None
            return b""
        if req.req_type == wire.REQ_FLUSH:
            with export.lock.write_locked():
                export.driver.flush()
            return b""
        if req.req_type == wire.REQ_MANIFEST:
            blob = self._manifest_blob(export)
            with export.stats_lock:
                export.stats.manifest_ops += 1
            return blob
        raise wire.ProtocolError(
            f"unknown request type {req.req_type}")

    def _manifest_blob(self, export: _Export) -> bytes:
        """The export's serialized cluster manifest, built on demand.

        The scan (a full read of the image's allocated clusters) runs
        under the export's exclusive lock — reading a CoR cache may
        mutate it — and under ``manifest_lock`` so concurrent MANIFEST
        requests build once.
        """
        with export.manifest_lock:
            if export.manifest_blob is not None:
                return export.manifest_blob
            manifest = export.manifest
            if manifest is None:
                from repro.imagefmt.manifest import build_manifest
                with export.lock.write_locked():
                    manifest = build_manifest(export.driver,
                                              vmi_id=export.name)
                export.manifest = manifest
            export.manifest_blob = manifest.to_bytes()
            return export.manifest_blob

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Graceful shutdown: stop accepting, drain, join, force-close.

        In-flight requests finish and send their responses (connections
        are only half-closed at first); anything still alive after
        ``drain_timeout`` has its socket torn down.  After close()
        returns, no serving thread of this server is left running.
        """
        with self._state_lock:
            if self._closing:
                return
            self._closing = True
            conns = list(self._conns)
            workers = list(self._workers)
        if self.telemetry is not None:
            self.telemetry.close()
        registry = self.registry
        for export in self._exports.values():
            if export.collector is not None:
                registry.unregister_collector(export.collector)
                export.collector = None
        if self._engine is not None:
            # Event-loop engine: the loop itself runs the drain (stop
            # reading, flush queued responses, wait out in-flight
            # dispatches) and joins its worker pool.
            self._engine.close()
        else:
            self._close_threaded(conns, workers)
        # Drivers the server opened itself (add_export_path) are closed
        # last, after every serving thread is gone — their close() is a
        # flush, and flushing under a live dispatcher would race.
        for export in self._exports.values():
            if export.owned:
                export.driver.close()

    def _close_threaded(self, conns: list[socket.socket],
                        workers: list[threading.Thread]) -> None:
        # A blocked accept() is not interrupted by closing the listen
        # socket from another thread on Linux; wake it with a throwaway
        # connection, which the loop sees, closes, and exits on.
        try:
            with socket.create_connection((self.host, self.port),
                                          timeout=1.0):
                pass
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=self._drain_timeout)
        # Drain phase: stop reading further requests, let in-flight
        # dispatches send their responses.
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RD)
            except OSError:
                pass
        deadline = time.monotonic() + self._drain_timeout
        for t in workers:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        # Cancel phase: tear down whatever outlived the drain window.
        with self._state_lock:
            leftovers = list(self._conns)
        for conn in leftovers:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for t in workers:
            t.join(timeout=1.0)

    def __enter__(self) -> "BlockServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
