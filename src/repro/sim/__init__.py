"""Discrete-event testbed standing in for the paper's DAS-4 cluster.

The evaluation hardware (65 nodes, 1 GbE + QDR InfiniBand, NFS storage
node with two 7200-RPM disks in RAID-0) is simulated with a compact
discrete-event core:

* :mod:`repro.sim.engine` — event loop, processes, timeouts.
* :mod:`repro.sim.resources` — FIFO resources for queueing stations.
* :mod:`repro.sim.network` — processor-sharing (fair-share fluid) links;
  the 1 GbE saturation of Figure 2 is this model at work.
* :mod:`repro.sim.disk` — rotational disk with seek + rotation +
  transfer and FIFO queueing; the many-VMI disk bottleneck of Figure 3.
* :mod:`repro.sim.nfs` — NFS client/server with rwsize chunking and the
  storage node's page cache.
* :mod:`repro.sim.node` — compute/storage node composition.
* :mod:`repro.sim.blockio` — in-memory image chains with the *same*
  cluster/quota/CoR semantics as :mod:`repro.imagefmt` (shared code).
* :mod:`repro.sim.cluster_sim` — testbed assembly and boot orchestration.
* :mod:`repro.sim.calibration` — every physical constant, with
  provenance.
"""

from repro.sim.engine import Environment, Process, Timeout
from repro.sim.resources import Resource

__all__ = ["Environment", "Process", "Timeout", "Resource"]
