"""In-memory image chains for the simulator.

``SimImage`` replicates the *allocation semantics* of the file-backed
driver — cluster-granular mapping, copy-on-read population, quota
accounting, CoW fills — without holding data: it tracks which guest
ranges are allocated and converts guest operations into
:class:`IORequest` plans that the testbed then executes against
simulated devices and links.

The quota/CoR decisions go through the *same*
:mod:`repro.imagefmt.cache_policy` objects as the real driver, and the
initial metadata footprint is computed with the same geometry, so the
scalability experiments run the behaviourally identical cache logic the
single-node experiments measure on real files (tests assert the two
agree byte-for-byte on metadata sizes and traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.errors import OutOfBoundsError, QuotaExceededError
from repro.imagefmt.cache_policy import CacheRuntime, QuotaPolicy
from repro.imagefmt.driver import DriverStats, RangeSet
from repro.imagefmt.header import CacheExtension, QCowHeader
from repro.imagefmt.refcount import RefcountGeometry
from repro.imagefmt.tables import AddressSplit
from repro.metrics.registry import get_registry
from repro.metrics.tracing import TRACER
from repro.units import align_down, align_up, div_round_up

LocationKind = Literal[
    "nfs",            # a file on the storage node, accessed over NFS
    "compute-disk",   # the compute node's local disk
    "compute-mem",    # the compute node's memory
    "storage-mem",    # the storage node's memory (tmpfs), over the network
]


@dataclass(frozen=True)
class Location:
    """Where an image physically lives."""

    kind: LocationKind
    node_id: str
    file_id: str


@dataclass(frozen=True)
class IORequest:
    """One physical I/O the testbed must perform."""

    location: Location
    kind: Literal["read", "write"]
    nbytes: int
    stream: str
    """Locality key for the disk-head model (one per file/stream)."""

    offset: int
    """Position within the stream for sequential-access detection, and
    the page-cache key for NFS reads."""


def initial_metadata_bytes(size: int, cluster_bits: int,
                           quota: int = 0) -> int:
    """Physical size of a freshly created image: header + refcount table
    + L1 table.  Mirrors ``Qcow2Image.create`` exactly (asserted by
    tests against real files)."""
    cluster_size = 1 << cluster_bits
    split = AddressSplit(cluster_bits)
    l1_entries = max(1, split.required_l1_entries(size))
    l1_clusters = div_round_up(l1_entries * 8, cluster_size)

    header = QCowHeader(size=size, cluster_bits=cluster_bits,
                        backing_file="b", backing_format="qcow2",
                        l1_size=l1_entries)
    if quota:
        header.cache_ext = CacheExtension(quota=quota, current_size=0)
    header_clusters = div_round_up(header.encoded_size(), cluster_size)

    geo = RefcountGeometry(cluster_bits)
    expect_clusters = div_round_up(
        max(quota, 16 * cluster_size), cluster_size)
    rt_clusters = geo.table_clusters_for(expect_clusters * 2)
    base = header_clusters + rt_clusters + l1_clusters
    # The first flush allocates refcount blocks covering every cluster,
    # including the blocks themselves — same fixpoint the allocator
    # converges to.
    blocks = 0
    while True:
        needed = div_round_up(base + blocks, geo.block_entries)
        if needed <= blocks:
            break
        blocks = needed
    return (base + blocks) * cluster_size


def refblock_overhead(nbytes: int, cluster_bits: int) -> int:
    """Amortized refcount-block bytes for ``nbytes`` of new clusters.

    Every refcount block (one cluster of 2-byte entries) covers
    ``cluster_size / 2`` clusters, i.e. 2 bytes of refcounts per
    cluster of data — 1/256 of the data volume at 512 B clusters.
    """
    geo = RefcountGeometry(cluster_bits)
    new_clusters = div_round_up(nbytes, geo.cluster_size)
    return div_round_up(new_clusters, geo.block_entries) \
        * geo.cluster_size


class SimImage:
    """One logical image in a backing chain, without file contents."""

    def __init__(
        self,
        name: str,
        size: int,
        location: Location,
        *,
        cluster_bits: int = 16,
        backing: "SimImage | None" = None,
        cache_quota: int = 0,
        preallocated: bool = False,
    ) -> None:
        if cache_quota and backing is None:
            raise ValueError("a cache image requires a backing image")
        self.name = name
        self.size = size
        self.location = location
        self.split = AddressSplit(cluster_bits)
        self.backing = backing
        self.preallocated = preallocated
        self.cache_runtime = CacheRuntime(QuotaPolicy(cache_quota))
        self.allocated = RangeSet()
        self._l2_present = RangeSet()
        self.physical_bytes = initial_metadata_bytes(
            size, cluster_bits, cache_quota)
        self.stats = DriverStats()
        # Trace-attribution role, mirroring BlockDriver.trace_role.
        # The default classification matches how deployments build
        # chains: preallocated base on NFS, quota'd caches, CoW tops.
        self.trace_role: str | None = (
            "base" if preallocated
            else "cache" if cache_quota else "cow")
        # Monotone physical cursor: cache/CoW files are laid out in
        # allocation order, so replaying reads in population order is
        # physically sequential on disk.  Hits advance this cursor.
        self._phys_cursor = 0

    # -- properties --------------------------------------------------------

    @property
    def is_cache(self) -> bool:
        return self.cache_runtime.is_cache

    @property
    def cluster_size(self) -> int:
        return self.split.cluster_size

    @property
    def cor_enabled(self) -> bool:
        return self.is_cache and self.cache_runtime.cor.enabled

    def chain_depth(self) -> int:
        depth, node = 1, self.backing
        while node is not None:
            depth += 1
            node = node.backing
        return depth

    def clone_to(self, location: Location,
                 name: str | None = None) -> "SimImage":
        """An independent physical copy of this image at ``location``.

        Used when a cache file is *copied* (e.g. shipped to the storage
        node's memory while the original stays on the compute node's
        disk, Algorithm 1): both copies share the logical content as of
        now but evolve separately afterwards.
        """
        out = SimImage(
            name or f"{self.name}@{location.kind}",
            self.size,
            location,
            cluster_bits=self.split.cluster_bits,
            backing=self.backing,
            cache_quota=self.cache_runtime.quota_policy.quota,
            preallocated=self.preallocated,
        )
        copied = RangeSet()
        for start, end in self.allocated.intervals():
            copied.add(start, end - start)
        out.allocated = copied
        l2 = RangeSet()
        for start, end in self._l2_present.intervals():
            l2.add(start, end - start)
        out._l2_present = l2
        out.physical_bytes = self.physical_bytes
        out.cache_runtime.cor.enabled = self.cache_runtime.cor.enabled
        return out

    # -- guest operations ---------------------------------------------------

    def read(self, offset: int, length: int,
             plan: list[IORequest]) -> None:
        """Plan a guest read; mutates allocation state (CoR)."""
        self._check_bounds(offset, length)
        if length == 0:
            return
        self.stats.record_read(offset, length)
        if TRACER.enabled:
            TRACER.event("block.read", layer=self.trace_role or "sim",
                         path=self.name, offset=offset, length=length)
        if self.preallocated:
            plan.append(IORequest(self.location, "read", length,
                                  stream=self.location.file_id,
                                  offset=offset))
            return
        gaps = self.allocated.gaps(offset, length)
        hit_bytes = length - sum(ln for _, ln in gaps)
        if hit_bytes > 0:
            if self.is_cache:
                self.stats.cache_hit_bytes += hit_bytes
            plan.append(IORequest(self.location, "read", hit_bytes,
                                  stream=self.location.file_id,
                                  offset=self._phys_cursor))
            self._phys_cursor += hit_bytes
        if self.is_cache:
            self.stats.cache_miss_bytes += sum(ln for _, ln in gaps)
        for gap_off, gap_len in gaps:
            self._read_cold(gap_off, gap_len, plan)

    def _read_cold(self, offset: int, length: int,
                   plan: list[IORequest]) -> None:
        if self.backing is None:
            return  # reads of unallocated space without backing: zeros
        if self.cor_enabled:
            # Fetch whole covering clusters and populate (CoR).  The
            # cluster alignment is the Figure 9 read amplification.
            start = align_down(offset, self.cluster_size)
            end = min(align_up(offset + length, self.cluster_size),
                      align_up(self.size, self.cluster_size))
            span = end - start
            try:
                self._charge_quota(start, span)
            except QuotaExceededError:
                # The real driver fetches the covering clusters first
                # and only then hits the space error on the populating
                # write — the fetch of this one request is therefore
                # still cluster-aligned (twin-equivalence demands it).
                self.cache_runtime.cor.record_space_error()
                self.stats.quota_stops += 1
                get_registry().counter(
                    "cache_quota_stops_total", image=self.name).inc()
                if TRACER.enabled:
                    TRACER.event(
                        "cache.quota_stop", path=self.name,
                        attempted_bytes=span,
                        quota=self.cache_runtime.quota_policy.quota,
                        current_size=self.physical_bytes,
                        space_errors=self.cache_runtime.cor.space_errors)
                self._fetch_from_backing(start, span, plan)
                return
            self._fetch_from_backing(start, span, plan)
            self.allocated.add(start, span)
            self.physical_bytes += span
            self._count_new_l2(start, span)
            self.stats.cor_write_ops += 1
            self.stats.cor_bytes_written += span
            plan.append(IORequest(self.location, "write", span,
                                  stream=self.location.file_id,
                                  offset=self._phys_cursor))
            self._phys_cursor += span
            # Every populating write also updates metadata (L2 entry,
            # current-size header field) at the front of the file — a
            # head seek away from the data region.  On memory this is
            # free; on a disk it is the synchronous-write penalty that
            # makes Figure 8's cold-on-disk curve so slow and motivates
            # staging cold caches in memory (Figure 7).
            plan.append(IORequest(self.location, "write",
                                  self.cluster_size,
                                  stream=f"{self.location.file_id}.meta",
                                  offset=0))
        else:
            self._fetch_from_backing(offset, length, plan)

    def _fetch_from_backing(self, offset: int, length: int,
                            plan: list[IORequest]) -> None:
        assert self.backing is not None
        avail = max(0, min(length, self.backing.size - offset))
        if avail == 0:
            return
        self.stats.backing_read_ops += 1
        self.stats.backing_bytes_read += avail
        self.backing.read(offset, avail, plan)

    def write(self, offset: int, length: int,
              plan: list[IORequest]) -> None:
        """Plan a guest write (CoW allocation with partial-cluster fill)."""
        self._check_bounds(offset, length)
        if length == 0:
            return
        gaps = self.allocated.gaps(offset, length)
        fill_ranges: list[tuple[int, int]] = []
        new_alloc = 0
        for gap_off, gap_len in gaps:
            start = align_down(gap_off, self.cluster_size)
            end = align_up(gap_off + gap_len, self.cluster_size)
            # Partially written head/tail clusters are filled from the
            # backing chain, exactly like the real driver's
            # _backing_cluster path (one full-cluster fetch per
            # partially covered cluster).
            head_partial = gap_off > start
            tail_partial = gap_off + gap_len < end
            if head_partial:
                fill_ranges.append((start, self.cluster_size))
            if tail_partial and (end - start > self.cluster_size
                                 or not head_partial):
                fill_ranges.append((end - self.cluster_size,
                                    self.cluster_size))
            new_alloc += end - start
        if self.is_cache:
            self._charge_quota(offset, new_alloc)
        for gap_off, gap_len in gaps:
            start = align_down(gap_off, self.cluster_size)
            end = align_up(gap_off + gap_len, self.cluster_size)
            self.allocated.add(start, end - start)
        self.physical_bytes += new_alloc
        self._count_new_l2(offset, length)
        if self.backing is not None:
            for fill_off, fill_len in fill_ranges:
                fetch_len = min(fill_len, self.size - fill_off)
                self.stats.rmw_fill_ops += 1
                self.stats.rmw_fill_bytes += fetch_len
                self._fetch_from_backing(fill_off, fetch_len, plan)
        self.stats.record_write(offset, length)
        plan.append(IORequest(self.location, "write",
                              max(length, new_alloc),
                              stream=self.location.file_id,
                              offset=self._phys_cursor))
        self._phys_cursor += max(length, new_alloc)

    # -- internals -----------------------------------------------------------

    def _charge_quota(self, offset: int, upcoming_bytes: int) -> None:
        l2_bytes = self._new_l2_bytes(offset, upcoming_bytes)
        self.cache_runtime.quota_policy.check(
            self.physical_bytes, upcoming_bytes + l2_bytes,
            self.split.cluster_bits)

    def _new_l2_bytes(self, offset: int, length: int) -> int:
        span = self.split.bytes_covered_per_l2()
        start = align_down(offset, span)
        end = align_up(offset + length, span)
        missing = self._l2_present.gaps(start, end - start)
        return sum(div_round_up(ln, span) for _, ln in missing) \
            * self.cluster_size

    def _count_new_l2(self, offset: int, length: int) -> None:
        added = self._new_l2_bytes(offset, length)
        if added:
            span = self.split.bytes_covered_per_l2()
            self._l2_present.add(align_down(offset, span),
                                 align_up(offset + length, span)
                                 - align_down(offset, span))
            self.physical_bytes += added

    def _check_bounds(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise OutOfBoundsError(
                f"{self.name}: access [{offset}, {offset + length}) "
                f"outside virtual size {self.size}")


def sim_cache_chain(
    base: SimImage,
    *,
    cache_location: Location,
    cow_location: Location,
    quota: int,
    cache_cluster_bits: int = 9,
    cow_cluster_bits: int = 16,
    vm_name: str = "vm",
    existing_cache: SimImage | None = None,
) -> tuple[SimImage, SimImage]:
    """Build (cow, cache) the way §4.4 chains them.

    Pass ``existing_cache`` to attach a new CoW overlay to a warm cache
    (the per-VM step once the cache exists).
    """
    if existing_cache is not None:
        cache = existing_cache
    else:
        cache = SimImage(
            f"{vm_name}.cache", base.size, cache_location,
            cluster_bits=cache_cluster_bits, backing=base,
            cache_quota=quota,
        )
    cow = SimImage(
        f"{vm_name}.cow", base.size, cow_location,
        cluster_bits=cow_cluster_bits, backing=cache,
    )
    return cow, cache
