"""Physical constants of the simulated DAS-4 testbed, with provenance.

Every number here is either quoted from the paper (§5: "dual-quad-core
Intel E5620 CPUs ... 24GB of memory and two Western Digital SATA
3.0-Gbps/7200-RPM/1-TB in software RAID-0 ... commodity 1Gb/s Ethernet
and a premium Quad Data Rate (QDR) InfiniBand providing a theoretical
peak of 32Gb/s"), or standard for that hardware generation, or fitted
once against a figure's anchor point (noted per constant).  Benchmarks
match *shapes*, not wall-clock digits; still, the anchors keep the
simulated axes in the same numeric range as the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GiB, KiB, MiB, MSEC, USEC


@dataclass(frozen=True)
class NetworkProfile:
    """One interconnect option of the testbed."""

    name: str
    bandwidth: float      # effective bytes/s at the bottleneck NIC
    latency: float        # one-way seconds

    @property
    def rtt(self) -> float:
        return 2 * self.latency


# 1 Gb/s Ethernet: 125 MB/s raw; NFS/TCP/IP overheads leave ~105 MiB/s
# effective.  One-way latency ~50 µs (commodity switch, 2013 era).
GBE_1 = NetworkProfile(
    name="1GbE",
    bandwidth=105 * MiB,
    latency=50 * USEC,
)

# QDR InfiniBand: 32 Gb/s signalled, 4 GB/s raw; IPoIB + NFS leave
# ~1.5 GB/s effective for this workload.  One-way latency ~2 µs.
IB_32 = NetworkProfile(
    name="32GbIB",
    bandwidth=1500 * MiB,
    latency=2 * USEC,
)

NETWORKS = {"1gbe": GBE_1, "ib": IB_32}


@dataclass(frozen=True)
class DiskProfile:
    """A disk (array) at a node."""

    name: str
    seek_time: float          # average seek + rotational latency, random
    sequential_gap: float     # per-request overhead when streaming
    bandwidth: float          # streaming bytes/s per spindle
    spindles: int             # concurrent request slots (RAID-0 width)
    readahead: int            # bytes: window treated as sequential


# Two WD 7200-RPM SATA disks in software RAID-0 (paper §5).  7200 RPM →
# 4.17 ms average rotational latency + ~4 ms average seek ≈ 8 ms random
# access; fitted to 5 ms because boot-time request streams retain some
# locality even under interleaving (anchor: Figure 3's ~800 s at 64
# VMIs together with Figure 2's ~35 s single boot).
STORAGE_RAID0 = DiskProfile(
    name="storage-raid0",
    seek_time=7.0 * MSEC,
    sequential_gap=0.3 * MSEC,
    bandwidth=110 * MiB,
    spindles=2,
    readahead=512 * KiB,
)

# A compute node's single local SATA disk.
COMPUTE_DISK = DiskProfile(
    name="compute-sata",
    seek_time=8.0 * MSEC,
    sequential_gap=0.25 * MSEC,
    bandwidth=90 * MiB,
    spindles=1,
    readahead=512 * KiB,
)


@dataclass(frozen=True)
class MemoryProfile:
    """RAM / tmpfs storage at a node."""

    name: str
    bandwidth: float
    latency: float
    capacity: int


# DDR3-era storage-node memory serving tmpfs: effectively unlimited
# IOPS for this workload; bandwidth matters only for bulk copies.
NODE_MEMORY = MemoryProfile(
    name="ram",
    bandwidth=6 * GiB,
    latency=1 * USEC,
    capacity=24 * GiB,    # paper §5: 24 GB per node
)

# Page cache available on the storage node (24 GB minus OS/daemons).
STORAGE_PAGE_CACHE_BYTES = 20 * GiB

# NFS parameters (paper §5: rwsize tuned to 64 KiB to match boot reads).
NFS_RWSIZE = 64 * KiB
# Server-side CPU per NFS request (protocol handling, context switches).
NFS_REQUEST_CPU = 40 * USEC
# Concurrent NFS server threads (Linux default nfsd count, 2013 era).
NFS_SERVER_THREADS = 8

# KVM/QEMU start-up overhead before the guest runs (process spawn,
# image open, device realization) — part of every measured boot.
VMM_STARTUP_OVERHEAD = 0.5
