"""Testbed assembly and VM-boot orchestration.

``Testbed`` wires the simulated DAS-4 together: one storage node behind
a fair-share NIC (1 GbE or 32 Gb IB), N compute nodes, and the NFS
service.  ``boot_vms`` replays boot traces through SimImage chains,
executing each image layer's I/O plan against the right device —
exactly the measurement loop of the paper's §5 experiments ("the time
from invoking KVM ... until the VM connects back").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bootmodel.trace import BootTrace
from repro.errors import SimulationError
from repro.metrics.tracing import TRACER
from repro.sim import calibration as cal
from repro.sim.blockio import IORequest, Location, SimImage
from repro.sim.engine import Environment
from repro.sim.network import FairShareLink
from repro.sim.nfs import NFSService
from repro.sim.node import ComputeNode, StorageNode


@dataclass
class BootRecord:
    """Measured boot of one VM."""

    vm_id: str
    node_id: str
    start: float
    end: float

    @property
    def boot_time(self) -> float:
        return self.end - self.start


@dataclass
class ScenarioResult:
    """Aggregate outcome of one simultaneous-boot scenario."""

    records: list[BootRecord] = field(default_factory=list)
    storage_nfs_bytes: int = 0
    storage_disk_bytes: int = 0
    storage_mem_read_bytes: int = 0
    network_bytes_down: int = 0
    network_bytes_up: int = 0

    @property
    def mean_boot_time(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.boot_time for r in self.records) / len(self.records)

    @property
    def max_boot_time(self) -> float:
        return max((r.boot_time for r in self.records), default=0.0)

    @property
    def makespan(self) -> float:
        """Time until the last VM finished booting."""
        return max((r.end for r in self.records), default=0.0)


class Testbed:
    """The simulated cluster: storage node + NIC + N compute nodes."""

    __test__ = False  # pytest: not a test class despite the import

    def __init__(
        self,
        *,
        n_compute: int = 64,
        network: str | cal.NetworkProfile = "1gbe",
        env: Environment | None = None,
        page_cache_bytes: int = cal.STORAGE_PAGE_CACHE_BYTES,
        vmm_overhead: float = cal.VMM_STARTUP_OVERHEAD,
    ) -> None:
        if n_compute < 1:
            raise ValueError("need at least one compute node")
        self.env = env if env is not None else Environment()
        if isinstance(network, str):
            try:
                network = cal.NETWORKS[network.lower()]
            except KeyError:
                raise ValueError(
                    f"unknown network {network!r}; options: "
                    f"{sorted(cal.NETWORKS)}") from None
        self.network_profile = network
        self.vmm_overhead = vmm_overhead
        self.storage = StorageNode(self.env,
                                   page_cache_bytes=page_cache_bytes)
        self.computes = [
            ComputeNode(self.env, f"node{i:02d}")
            for i in range(n_compute)
        ]
        # The storage node's NIC: the shared bottleneck in both
        # directions (data down to compute nodes, cache copy-back up).
        self.down = FairShareLink(self.env, network.bandwidth,
                                  network.latency, "storage-nic.down")
        self.up = FairShareLink(self.env, network.bandwidth,
                                network.latency, "storage-nic.up")
        self.nfs = NFSService(self.env, self.storage, self.down)

    # -- image locations -------------------------------------------------

    def nfs_location(self, file_id: str) -> Location:
        return Location("nfs", self.storage.name, file_id)

    def storage_mem_location(self, file_id: str) -> Location:
        return Location("storage-mem", self.storage.name, file_id)

    def compute_disk_location(self, node: ComputeNode,
                              file_id: str) -> Location:
        return Location("compute-disk", node.node_id, file_id)

    def compute_mem_location(self, node: ComputeNode,
                             file_id: str) -> Location:
        return Location("compute-mem", node.node_id, file_id)

    def node_by_id(self, node_id: str) -> ComputeNode:
        for node in self.computes:
            if node.node_id == node_id:
                return node
        raise KeyError(node_id)

    def make_base(self, vmi_id: str, size: int) -> SimImage:
        """A base VMI: a raw file on the storage node's NFS export."""
        return SimImage(vmi_id, size, self.nfs_location(vmi_id),
                        preallocated=True)

    # -- I/O execution ------------------------------------------------------

    def execute(self, req: IORequest, node: ComputeNode):
        """Process generator: perform one planned physical I/O."""
        kind = req.location.kind
        if kind == "nfs":
            if req.kind != "read":
                raise SimulationError(
                    "guest writes must never reach the NFS base image "
                    "(immutability violated)")
            yield from self.nfs.read(req.location.file_id, req.offset,
                                     req.nbytes)
        elif kind == "compute-disk":
            self._check_node(req, node)
            if req.kind == "read":
                yield from node.disk.read(req.nbytes, stream=req.stream,
                                          offset=req.offset)
            else:
                yield from node.disk.write(req.nbytes, stream=req.stream,
                                           offset=req.offset)
        elif kind == "compute-mem":
            self._check_node(req, node)
            if req.kind == "read":
                yield from node.memory.read(req.nbytes)
            else:
                yield from node.memory.write(req.nbytes)
        elif kind == "storage-mem":
            if req.kind == "read":
                # Request RTT, tmpfs read, data over the shared NIC.
                yield self.env.timeout(self.network_profile.latency)
                yield from self.storage.memory.read(req.nbytes)
                yield from self.down.transfer(req.nbytes)
            else:
                yield from self.up.transfer(req.nbytes)
                yield from self.storage.memory.write(req.nbytes)
        else:  # pragma: no cover - Location is a closed union
            raise SimulationError(f"unknown location kind {kind!r}")

    @staticmethod
    def _check_node(req: IORequest, node: ComputeNode) -> None:
        if req.location.node_id != node.node_id:
            raise SimulationError(
                f"I/O for {req.location.node_id} executed on "
                f"{node.node_id}: a VM can only touch its own node")

    # -- deployment-level transfers ----------------------------------------

    def flush_cache_to_local_disk(self, node: ComputeNode,
                                  cache: SimImage):
        """Process generator: write a memory-staged cache to local disk
        (the deferred write of §5.1, done after VM shutdown — 'the
        transfer to the disk takes less than one second')."""
        yield from node.disk.write(cache.physical_bytes,
                                   stream=cache.location.file_id,
                                   offset=0)
        cache.location = self.compute_disk_location(
            node, cache.location.file_id)

    def copy_cache_to_storage_memory(self, cache: SimImage):
        """Process generator: ship a cache image back to the storage
        node's tmpfs (the Figure 13 arrangement)."""
        yield from self.up.transfer(cache.physical_bytes)
        yield from self.storage.memory.write(cache.physical_bytes)
        cache.location = self.storage_mem_location(
            cache.location.file_id)


@dataclass
class BootJob:
    """One VM to boot: where, from what chain, with which trace.

    ``epilogue``, when set, is a zero-argument callable returning a
    process generator that runs *inside* the measured boot window —
    used for work the paper charges to the boot time, like the cold
    cache's copy-back to the storage node in Figure 14 ("we have added
    the time of cache transfers to the booting time with the cold
    cache").
    """

    vm_id: str
    node: ComputeNode
    chain: SimImage
    trace: BootTrace
    epilogue: object | None = None
    prefetch: bool = False
    """Idealized informed prefetching (§7.3): with perfect disclosures
    the whole read stream runs concurrently with the boot's CPU work,
    so boot ≈ max(CPU time, I/O stream time).  The paper found this
    "showed no substantial benefit" because the VM only waits ~17 % of
    its boot on reads — this flag exists to reproduce that bound."""

    prefetch_plan: object | None = None
    """Plan-driven prefetch twin (DESIGN.md §12): a
    :class:`~repro.bootmodel.prefetch.PrefetchPlan` whose extents a
    background stream reads through the chain ahead of the demand
    stream.  Unlike ``prefetch`` (which *replaces* the demand reads
    with a disclosed stream), the demand loop still runs — extents the
    plan stream got to first are cache hits, exactly like the real
    :class:`~repro.cluster.prefetch.Prefetcher`."""


def boot_vms(testbed: Testbed, jobs: list[BootJob],
             *, stagger: float = 0.0,
             think_jitter: float = 0.15,
             trace_parent: tuple[str, str] | None = None
             ) -> ScenarioResult:
    """Boot all jobs simultaneously; return per-VM and aggregate stats.

    ``stagger`` optionally offsets successive VM starts (0 = the paper's
    simultaneous-start experiments).  ``think_jitter`` perturbs each
    VM's think times by a deterministic per-VM factor drawn from
    ``±jitter``: identical traces replayed on 64 hosts never run in
    perfect lockstep on real hardware (scheduler noise, cache state),
    and exact phase alignment is a simulation artifact that distorts
    fair-share contention.

    When tracing is enabled, every boot records a ``vm.boot`` span with
    ``boot.phase`` children (vmm / replay / epilogue) carrying
    *virtual* timestamps (``clock="sim"``).  Boots interleave on one
    thread, so spans are recorded with explicit causality rather than
    context-manager nesting; ``trace_parent`` is the ``(trace_id,
    span_id)`` of an enclosing span (e.g. a deployment wave's,
    pre-allocated via :meth:`~repro.metrics.tracing.Tracer.allocate_ids`).
    """
    import random

    env = testbed.env
    records: list[BootRecord] = []
    # Counter snapshots: a ScenarioResult reports this wave's traffic,
    # not the testbed's lifetime totals (waves run back to back on one
    # testbed in warm/cold experiments).
    nfs0 = testbed.nfs.stats.bytes_served
    disk0 = testbed.storage.disk.stats.bytes_read
    mem0 = testbed.storage.memory.stats.bytes_read
    down0 = testbed.down.stats.bytes_moved
    up0 = testbed.up.stats.bytes_moved

    def run_op(job: BootJob, op) -> "list[IORequest]":
        offset = min(op.offset, max(job.chain.size - 512, 0))
        length = min(op.length, job.chain.size - offset)
        if length <= 0:
            return []
        plan: list[IORequest] = []
        if op.kind == "read":
            job.node.stats.demand_read_bytes += length
            job.chain.read(offset, length, plan)
        else:
            job.chain.write(offset, length, plan)
        return plan

    def io_stream(job: BootJob):
        # Prefetch mode: the disclosed read stream runs back to back,
        # decoupled from the guest's CPU phases.
        for op in job.trace:
            for req in run_op(job, op):
                yield from testbed.execute(req, job.node)

    def plan_stream(job: BootJob):
        # Plan-driven twin: read the mined extents through the chain
        # in boot order, back to back.  Whatever this stream touches
        # first is a warm cluster by the time the demand loop asks.
        for ext in job.prefetch_plan.extents:
            offset = min(ext.offset, max(job.chain.size - 512, 0))
            length = min(ext.length, job.chain.size - offset)
            if length <= 0:
                continue
            plan: list[IORequest] = []
            job.chain.read(offset, length, plan)
            for req in plan:
                yield from testbed.execute(req, job.node)

    def one_boot(job: BootJob, delay: float):
        jrng = random.Random(f"jitter-{job.vm_id}")
        if delay > 0:
            yield env.timeout(delay)
        start = env.now
        yield env.timeout(testbed.vmm_overhead)
        t_vmm = env.now
        if job.prefetch:
            io_proc = env.process(io_stream(job))
            for op in job.trace:
                if op.think_time > 0:
                    factor = 1.0 + think_jitter * (2 * jrng.random() - 1)
                    yield env.timeout(op.think_time * factor)
            yield io_proc
        else:
            if job.prefetch_plan is not None:
                env.process(plan_stream(job))
            for op in job.trace:
                if op.think_time > 0:
                    factor = 1.0 + think_jitter * (2 * jrng.random() - 1)
                    yield env.timeout(op.think_time * factor)
                for req in run_op(job, op):
                    yield from testbed.execute(req, job.node)
        t_replay = env.now
        if job.epilogue is not None:
            yield from job.epilogue()
        records.append(BootRecord(job.vm_id, job.node.node_id,
                                  start, env.now))
        job.node.stats.vms_booted += 1
        if TRACER.enabled:
            tid, sid = TRACER.record_span(
                "vm.boot", start, env.now,
                trace_id=trace_parent[0] if trace_parent else None,
                parent_id=trace_parent[1] if trace_parent else None,
                vm_id=job.vm_id, node=job.node.node_id)
            TRACER.record_span("boot.phase", start, t_vmm,
                               trace_id=tid, parent_id=sid,
                               vm_id=job.vm_id, phase="vmm")
            TRACER.record_span("boot.phase", t_vmm, t_replay,
                               trace_id=tid, parent_id=sid,
                               vm_id=job.vm_id, phase="replay")
            if job.epilogue is not None:
                TRACER.record_span("boot.phase", t_replay, env.now,
                                   trace_id=tid, parent_id=sid,
                                   vm_id=job.vm_id, phase="epilogue")

    procs = [env.process(one_boot(job, i * stagger))
             for i, job in enumerate(jobs)]
    env.run(until=env.all_of(procs))

    return ScenarioResult(
        records=sorted(records, key=lambda r: r.vm_id),
        storage_nfs_bytes=testbed.nfs.stats.bytes_served - nfs0,
        storage_disk_bytes=testbed.storage.disk.stats.bytes_read - disk0,
        storage_mem_read_bytes=(
            testbed.storage.memory.stats.bytes_read - mem0),
        network_bytes_down=testbed.down.stats.bytes_moved - down0,
        network_bytes_up=testbed.up.stats.bytes_moved - up0,
    )
