"""Storage-device models: rotational disks and memory stores.

The rotational model is what makes the many-VMI experiments behave like
the paper's: each request pays a seek unless it continues the disk
head's current stream, so one VM booting alone gets readahead-like
locality, while 64 interleaved boot streams from 64 different image
files degrade to a full seek per request — "the read requests coming
from different VMs are mostly random in nature and rotational disks do
not handle this well" (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.calibration import DiskProfile, MemoryProfile
from repro.sim.engine import Environment
from repro.sim.resources import Resource


@dataclass
class DeviceStats:
    read_ops: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    bytes_written: int = 0
    seeks: int = 0
    sequential_hits: int = 0
    busy_time: float = 0.0


class RotationalDisk:
    """A seek + rotate + transfer disk (array) with a FIFO queue.

    ``spindles`` requests are serviced concurrently (RAID-0), the rest
    queue — the "disk queueing delay at the storage node" of §2.2.
    """

    def __init__(self, env: Environment, profile: DiskProfile,
                 name: str = "") -> None:
        self.env = env
        self.profile = profile
        self.name = name or profile.name
        self.queue = Resource(env, capacity=profile.spindles,
                              name=f"{self.name}.queue")
        self.stats = DeviceStats()
        # Disk-head position: (stream key, next byte offset).  A request
        # continuing the current stream within the readahead window is
        # sequential; anything else seeks.
        self._head: tuple[object, int] | None = None

    def service_time(self, nbytes: int, stream: object,
                     offset: int) -> float:
        """Pure service time (no queueing) for one request; updates the
        head-position model."""
        sequential = False
        if self._head is not None:
            key, pos = self._head
            if key == stream and pos <= offset <= \
                    pos + self.profile.readahead:
                sequential = True
        self._head = (stream, offset + nbytes)
        if sequential:
            self.stats.sequential_hits += 1
            return self.profile.sequential_gap \
                + nbytes / self.profile.bandwidth
        self.stats.seeks += 1
        return self.profile.seek_time + nbytes / self.profile.bandwidth

    def read(self, nbytes: int, *, stream: object = None,
             offset: int = 0):
        """Process generator: queue for a spindle, then transfer."""
        req = self.queue.request()
        yield req
        try:
            dt = self.service_time(nbytes, stream, offset)
            self.stats.read_ops += 1
            self.stats.bytes_read += nbytes
            self.stats.busy_time += dt
            yield self.env.timeout(dt)
        finally:
            self.queue.release(req)

    def write(self, nbytes: int, *, stream: object = None,
              offset: int = 0):
        req = self.queue.request()
        yield req
        try:
            dt = self.service_time(nbytes, stream, offset)
            self.stats.write_ops += 1
            self.stats.bytes_written += nbytes
            self.stats.busy_time += dt
            yield self.env.timeout(dt)
        finally:
            self.queue.release(req)


class MemoryStore:
    """RAM/tmpfs: negligible latency, ample bandwidth, no queue worth
    modelling at boot-workload request rates."""

    def __init__(self, env: Environment, profile: MemoryProfile,
                 name: str = "") -> None:
        self.env = env
        self.profile = profile
        self.name = name or profile.name
        self.stats = DeviceStats()
        self.used_bytes = 0

    def service_time(self, nbytes: int) -> float:
        return self.profile.latency + nbytes / self.profile.bandwidth

    def read(self, nbytes: int):
        dt = self.service_time(nbytes)
        self.stats.read_ops += 1
        self.stats.bytes_read += nbytes
        self.stats.busy_time += dt
        yield self.env.timeout(dt)

    def write(self, nbytes: int):
        dt = self.service_time(nbytes)
        self.stats.write_ops += 1
        self.stats.bytes_written += nbytes
        self.stats.busy_time += dt
        self.used_bytes += nbytes
        yield self.env.timeout(dt)

    def free(self, nbytes: int) -> None:
        self.used_bytes = max(0, self.used_bytes - nbytes)

    @property
    def available(self) -> int:
        return max(0, self.profile.capacity - self.used_bytes)
