"""A compact discrete-event simulation core (SimPy-style, generators).

Processes are Python generators that ``yield`` events; the environment
resumes them when the event fires.  This is all the machinery the
testbed needs: timeouts, generic one-shot events, process composition
(a process is itself an event that fires when the generator returns),
and an ``all_of`` barrier.

Event life cycle: *pending* → *triggered* (value known, queued) →
*processed* (popped from the queue, callbacks ran).  Waiters attach to
anything not yet processed; attaching to a processed event goes through
a zero-delay proxy so the waiter still resumes via the queue — exactly
one resumption path, fully deterministic (queue ties break by insertion
order, never hash order).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimDeadlockError


class Event:
    """A one-shot occurrence that processes can wait on."""

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered",
                 "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False

    # -- state ----------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._triggered and self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise RuntimeError("event has not triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.env._push(self, 0.0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = exc
        self._ok = False
        self.env._push(self, 0.0)
        return self

    # -- waiting ------------------------------------------------------------

    def _add_waiter(self, callback: Callable[["Event"], None]) -> None:
        """Attach a callback that runs when this event is processed."""
        if not self._processed:
            self.callbacks.append(callback)
            return
        proxy = Event(self.env)
        proxy._triggered = True
        proxy._value = self._value
        proxy._ok = self._ok
        proxy.callbacks.append(callback)
        self.env._push(proxy, 0.0)


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        self._ok = True
        env._push(self, delay)


class Process(Event):
    """A running generator; also an event that fires on its return."""

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, env: "Environment",
                 gen: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        self._gen = gen
        self._waiting_on: Event | None = None
        kick = Event(env)
        kick._triggered = True
        kick.callbacks.append(self._resume)
        env._push(kick, 0.0)

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        try:
            if trigger._ok:
                target = self._gen.send(trigger._value)
            else:
                target = self._gen.throw(trigger._value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if not self._triggered:
                self.fail(exc)
                return
            raise
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {target!r}; processes must yield Events")
        self._waiting_on = target
        target._add_waiter(self._resume)

    def interrupt(self, cause: Any = None) -> None:
        """Throw SimInterrupt into the process at its current yield."""
        from repro.errors import SimInterrupt

        if self._triggered:
            return
        if self._waiting_on is not None:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        kick = Event(self.env)
        kick._triggered = True
        kick._value = SimInterrupt(cause)
        kick._ok = False
        kick.callbacks.append(self._resume)
        self.env._push(kick, 0.0)


class Condition(Event):
    """Barrier over several events (used via :func:`Environment.all_of`)."""

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment",
                 events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for ev in self._events:
            ev._add_waiter(self._on_fire)

    def _on_fire(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e._value for e in self._events])


class Environment:
    """The simulation clock and event queue."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0

    # -- scheduling ------------------------------------------------------

    def _push(self, event: Event, delay: float) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))

    # -- public factory methods -------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        return Process(self, gen)

    def all_of(self, events: Iterable[Event]) -> Condition:
        return Condition(self, events)

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        when, _seq, event = heapq.heappop(self._queue)
        assert when >= self.now, "time went backwards"
        self.now = when
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event
        fires.  Returns the event's value in the latter case."""
        if isinstance(until, Event):
            sentinel = until
            while not sentinel._processed:
                if not self._queue:
                    raise SimDeadlockError(
                        "event queue drained before the awaited event "
                        "fired (processes deadlocked?)")
                self.step()
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value
        deadline = float("inf") if until is None else float(until)
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        if until is not None and deadline != float("inf"):
            self.now = max(self.now, deadline)
        return None
