"""In-process scrape adapter: simulated nodes as fleet targets.

The aggregator's target contract is ``.name`` plus
``.scrape(timeout) -> (exposition_text, health_dict)``;
:class:`SimScrapeTarget` implements it for simulated nodes by
rendering the node's counters through
:func:`repro.metrics.exposition.render_exposition` — the *same* text
format real nodes serve over HTTP, parsed back by the same strict
parser.  The aggregator, its derived signals, and the SLO rules run
unchanged over a 1k-node simulated fleet; only the target list and the
clock (``clock=lambda: cloud.env.now`` for sim-time staleness) differ.

Metric families are chosen so the aggregator's preference tuples
resolve them next to their real counterparts:

* ``sim_node_demand_read_bytes_total`` — guest-visible read demand per
  compute node (the offload denominator);
* ``sim_storage_bytes_served_total`` — bytes the central NFS service
  actually served (the offload numerator), published by the storage
  target; fleet storage offload = ``1 - served/demand``, the Fig 2/11
  quantity;
* ``sim_cache_hit_bytes_total`` / ``sim_cache_miss_bytes_total`` —
  byte-level cache effectiveness: the storage node's page cache, plus
  each compute node's cache-image reads (chains read through the
  shared pool images, so their driver stats are the node's cache
  traffic).

Fault injection mirrors real failure modes: :meth:`SimScrapeTarget.
fail` makes scrapes raise (a killed node), :meth:`SimScrapeTarget.
degrade` flips the health document to ``degraded`` (a sick-but-alive
node) — both drive the same pending→firing→resolved alert transitions
a real fleet produces.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.metrics.exposition import render_exposition
from repro.metrics.registry import Sample

__all__ = [
    "SimScrapeTarget",
    "cloud_targets",
    "compute_target",
    "storage_target",
    "testbed_targets",
]


class SimScrapeTarget:
    """One simulated node on the aggregator's scrape plane."""

    def __init__(self, name: str,
                 sampler: Callable[[], "list[Sample]"],
                 health: Callable[[], dict] | None = None) -> None:
        self.name = name
        self.sampler = sampler
        self._health = health
        self._failed = False
        self._degraded = False
        self.scrape_count = 0

    # -- fault injection -------------------------------------------------

    def fail(self) -> None:
        """Subsequent scrapes raise — the node is gone."""
        self._failed = True

    def recover(self) -> None:
        self._failed = False
        self._degraded = False

    def degrade(self, flag: bool = True) -> None:
        """Scrapes still succeed but health reports degraded."""
        self._degraded = flag

    # -- the target contract ---------------------------------------------

    def scrape(self, timeout: float) -> tuple[str, dict | None]:
        if self._failed:
            raise ConnectionError(f"sim node {self.name} is down")
        self.scrape_count += 1
        samples = self.sampler()
        doc = self._health() if self._health is not None else {}
        doc = dict(doc)
        doc.setdefault("status", "ok")
        if self._degraded:
            doc["status"] = "degraded"
        return render_exposition(samples), doc

    def __repr__(self) -> str:
        state = ("down" if self._failed
                 else "degraded" if self._degraded else "ok")
        return f"<SimScrapeTarget {self.name} {state}>"


def compute_target(node: Any, pool: Any = None) -> SimScrapeTarget:
    """Scrape target for one simulated compute node.

    ``node`` is a :class:`repro.sim.node.ComputeNode`; ``pool`` its
    :class:`repro.cluster.cache_manager.CachePool` when the cluster
    layer is in play (standalone testbeds have no pools).
    """

    def sampler() -> "list[Sample]":
        samples: "list[Sample]" = [
            ("sim_node_demand_read_bytes_total", {},
             float(node.stats.demand_read_bytes)),
            ("sim_node_vms_booted_total", {},
             float(node.stats.vms_booted)),
        ]
        if pool is not None:
            hit = miss = 0.0
            for vmi_id in pool.vmi_ids():
                cache = pool.peek(vmi_id)
                if cache is not None:
                    hit += cache.stats.cache_hit_bytes
                    miss += cache.stats.cache_miss_bytes
            samples += [
                ("sim_cache_hit_bytes_total", {}, hit),
                ("sim_cache_miss_bytes_total", {}, miss),
                ("sim_cache_pool_used_bytes", {},
                 float(pool.used_bytes)),
                ("sim_cache_pool_capacity_bytes", {},
                 float(pool.capacity_bytes)),
                ("sim_cache_pool_entries", {}, float(len(pool))),
            ]
        return samples

    def health() -> dict:
        return {"status": "ok", "queue_depth": 0,
                "vms_booted": node.stats.vms_booted}

    return SimScrapeTarget(node.node_id, sampler, health)


def storage_target(testbed: Any,
                   name: str = "storage") -> SimScrapeTarget:
    """Scrape target for the simulated storage node + its NIC."""

    def sampler() -> "list[Sample]":
        cache = testbed.storage.page_cache.stats
        return [
            ("sim_storage_bytes_served_total", {},
             float(testbed.nfs.stats.bytes_served)),
            ("sim_storage_disk_bytes_read_total", {},
             float(testbed.storage.disk.stats.bytes_read)),
            ("sim_cache_hit_bytes_total", {}, float(cache.hit_bytes)),
            ("sim_cache_miss_bytes_total", {},
             float(cache.miss_bytes)),
            ("sim_network_down_bytes_total", {},
             float(testbed.down.stats.bytes_moved)),
            ("sim_network_up_bytes_total", {},
             float(testbed.up.stats.bytes_moved)),
        ]

    def health() -> dict:
        return {"status": "ok", "queue_depth": 0}

    return SimScrapeTarget(name, sampler, health)


def testbed_targets(testbed: Any) -> "list[SimScrapeTarget]":
    """Storage + every compute node of a bare testbed (no pools)."""
    return [storage_target(testbed)] + [
        compute_target(node) for node in testbed.computes]


def cloud_targets(cloud: Any) -> "list[SimScrapeTarget]":
    """Every node of a :class:`repro.cluster.middleware.Cloud`,
    compute nodes wired to their cache pools."""
    return [storage_target(cloud.testbed)] + [
        compute_target(node,
                       cloud.registry.node_pool(node.node_id))
        for node in cloud.testbed.computes]
