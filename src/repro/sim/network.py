"""Fair-share (processor-sharing) network links.

A link carries N concurrent transfers at ``bandwidth / N`` each — the
fluid-flow approximation of TCP fair sharing on a single bottleneck.
This is the model behind Figure 2's shape: one VM boot over 1 GbE is
latency-bound, but 16+ simultaneous boots saturate the storage node's
NIC and boot time grows linearly with the node count.

Implementation: piecewise-constant rates.  Progress is settled lazily —
whenever the flow set changes (or a completion timer fires), every
active flow is charged ``elapsed × bandwidth / n_flows`` and the next
completion is (re)scheduled.  Events are O(flow-set changes), not
O(bytes) or O(chunks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Environment, Event


@dataclass
class LinkStats:
    bytes_moved: int = 0
    transfers: int = 0
    peak_flows: int = 0
    busy_time: float = 0.0


class _Flow:
    __slots__ = ("remaining", "done")

    def __init__(self, nbytes: float, done: Event) -> None:
        self.remaining = nbytes
        self.done = done


class FairShareLink:
    """One shared-bandwidth, fixed-latency pipe."""

    _EPS = 1e-6  # bytes: minimum float-drift tolerance for completion

    def _eps_bytes(self) -> float:
        """Completion tolerance in bytes.

        Clock arithmetic at time *t* cannot resolve intervals below
        ~ulp(t), so residuals up to ``bandwidth × ulp(t)`` bytes are
        float noise, not payload.  Without this time-relative floor a
        fast link late in a simulation reschedules a sub-ulp timer
        forever (elapsed evaluates to 0 and no progress is ever made).
        """
        time_noise = abs(self.env.now) * 2.0 ** -40
        return max(self._EPS, self.bandwidth * time_noise)

    def __init__(self, env: Environment, bandwidth: float,
                 latency: float, name: str = "") -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.env = env
        self.bandwidth = float(bandwidth)  # bytes/second
        self.latency = float(latency)      # one-way seconds
        self.name = name
        self.stats = LinkStats()
        self._flows: list[_Flow] = []
        self._last_update = 0.0
        self._wake_generation = 0

    # -- public API -----------------------------------------------------

    def transfer(self, nbytes: int):
        """Process generator: move ``nbytes`` through the link.

        Applies the one-way latency once, then competes for bandwidth
        with every other active transfer until the payload is through.
        """
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        self.stats.transfers += 1
        if self.latency > 0:
            yield self.env.timeout(self.latency)
        if nbytes == 0:
            return 0
        self._settle()
        flow = _Flow(float(nbytes), self.env.event())
        self._flows.append(flow)
        self.stats.peak_flows = max(self.stats.peak_flows,
                                    len(self._flows))
        self._reschedule()
        yield flow.done
        self.stats.bytes_moved += nbytes
        return nbytes

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def current_rate(self) -> float:
        """Per-flow bandwidth right now (the fair share)."""
        n = len(self._flows)
        return self.bandwidth if n == 0 else self.bandwidth / n

    # -- fluid model ------------------------------------------------------

    def _settle(self) -> None:
        """Charge elapsed time to all flows; fire finished ones."""
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if not self._flows or elapsed <= 0:
            return
        self.stats.busy_time += elapsed
        rate = self.bandwidth / len(self._flows)
        progress = elapsed * rate
        eps = self._eps_bytes()
        still: list[_Flow] = []
        for flow in self._flows:
            flow.remaining -= progress
            if flow.remaining <= eps:
                flow.done.succeed()
            else:
                still.append(flow)
        self._flows = still

    def _reschedule(self) -> None:
        """Arm a wake-up for the earliest completion among active flows."""
        self._wake_generation += 1
        if not self._flows:
            return
        generation = self._wake_generation
        n = len(self._flows)
        shortest = min(f.remaining for f in self._flows)
        dt = shortest * n / self.bandwidth
        timer = self.env.timeout(dt)

        def _on_fire(_ev: Event, gen: int = generation) -> None:
            # Stale timers (flow set changed since arming) are ignored;
            # the change that invalidated them armed a fresh one.
            if gen != self._wake_generation:
                return
            self._settle()
            self._reschedule()

        timer.callbacks.append(_on_fire)


class DuplexLink:
    """A pair of independent directions (e.g. a node's NIC)."""

    def __init__(self, env: Environment, bandwidth: float,
                 latency: float, name: str = "") -> None:
        self.up = FairShareLink(env, bandwidth, latency, f"{name}.up")
        self.down = FairShareLink(env, bandwidth, latency, f"{name}.down")
        self.name = name

    def rtt(self) -> float:
        return self.up.latency + self.down.latency
