"""The NFS service between compute nodes and the storage node.

Models what the paper's setup uses (§5): an off-the-shelf NFS server
with rwsize tuned to 64 KiB.  A read costs one request round-trip, per-
chunk server CPU on a bounded nfsd thread pool, the storage node's
page-cache/disk path, and the data transfer back through the storage
node's NIC — the fair-share link where the 1 GbE saturation of
Figures 2/11 happens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import calibration as cal
from repro.sim.engine import Environment
from repro.sim.network import FairShareLink
from repro.sim.node import StorageNode
from repro.sim.resources import Resource
from repro.units import div_round_up


@dataclass
class NFSStats:
    read_requests: int = 0
    bytes_served: int = 0


class NFSService:
    """Server side of the NFS mount, attached to one storage node."""

    def __init__(
        self,
        env: Environment,
        storage: StorageNode,
        down_link: FairShareLink,
        *,
        rwsize: int = cal.NFS_RWSIZE,
        request_cpu: float = cal.NFS_REQUEST_CPU,
        threads: int = cal.NFS_SERVER_THREADS,
        request_latency: float | None = None,
    ) -> None:
        if rwsize <= 0:
            raise ValueError("rwsize must be positive")
        self.env = env
        self.storage = storage
        self.down_link = down_link
        self.rwsize = rwsize
        self.request_cpu = request_cpu
        self.cpu = Resource(env, capacity=threads, name="nfsd")
        # The request (client → server) direction carries tiny RPCs; we
        # charge its latency but not bandwidth.
        self.request_latency = (down_link.latency
                                if request_latency is None
                                else request_latency)
        self.stats = NFSStats()

    def read(self, file_id: str, offset: int, length: int):
        """Process generator: one guest read served over NFS.

        The client splits the read at ``rwsize`` (the paper tuned this
        from 1 MiB down to 64 KiB to match small boot reads); chunks are
        pipelined, so latency is charged once and CPU per chunk.
        """
        if length <= 0:
            return
        self.stats.read_requests += 1
        n_chunks = div_round_up(length, self.rwsize)
        yield self.env.timeout(self.request_latency)
        yield from self.cpu.hold(n_chunks * self.request_cpu)
        yield from self.storage.read_file(file_id, offset, length)
        yield from self.down_link.transfer(length)
        self.stats.bytes_served += length
