"""Compute and storage node composition.

A storage node is an NFS file server: RAID-0 disk array, RAM, and —
crucially for the single-VMI experiments — a page cache.  When 64 VMs
boot from one VMI (Figure 2), only the *first* read of each range hits
the disk; everyone else is served from the page cache, which is why the
storage disk is no bottleneck there, while 64 distinct VMIs (Figure 3)
each pay their own cold random reads and queue up behind two spindles.

Concurrent identical misses are merged (the kernel's page-lock
behaviour): when 64 simultaneous boots of the same VMI request the same
range, one disk I/O happens and 63 waiters piggyback.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.imagefmt.driver import RangeSet
from repro.sim import calibration as cal
from repro.sim.disk import MemoryStore, RotationalDisk
from repro.sim.engine import Environment, Event


@dataclass
class PageCacheStats:
    hit_bytes: int = 0
    miss_bytes: int = 0
    merged_fetches: int = 0
    evicted_files: int = 0


class PageCache:
    """Range-granular page cache with file-level LRU eviction."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._files: OrderedDict[str, RangeSet] = OrderedDict()
        self.used = 0
        self.stats = PageCacheStats()

    def lookup(self, file_id: str, offset: int,
               length: int) -> tuple[int, list[tuple[int, int]]]:
        """Return (cached_bytes, miss_ranges) and refresh LRU order."""
        ranges = self._files.get(file_id)
        if ranges is None:
            self.stats.miss_bytes += length
            return 0, [(offset, length)]
        self._files.move_to_end(file_id)
        gaps = ranges.gaps(offset, length)
        missed = sum(ln for _, ln in gaps)
        self.stats.hit_bytes += length - missed
        self.stats.miss_bytes += missed
        return length - missed, gaps

    def insert(self, file_id: str, offset: int, length: int) -> None:
        ranges = self._files.get(file_id)
        if ranges is None:
            ranges = self._files[file_id] = RangeSet()
        self._files.move_to_end(file_id)
        self.used += ranges.add(offset, length)
        while self.used > self.capacity and len(self._files) > 1:
            victim, vranges = self._files.popitem(last=False)
            self.used -= vranges.total()
            self.stats.evicted_files += 1

    def cached_bytes(self, file_id: str) -> int:
        ranges = self._files.get(file_id)
        return 0 if ranges is None else ranges.total()


class StorageNode:
    """The NFS server machine: disks, memory, page cache."""

    def __init__(
        self,
        env: Environment,
        *,
        disk_profile: cal.DiskProfile = cal.STORAGE_RAID0,
        memory_profile: cal.MemoryProfile = cal.NODE_MEMORY,
        page_cache_bytes: int = cal.STORAGE_PAGE_CACHE_BYTES,
        name: str = "storage",
    ) -> None:
        self.env = env
        self.name = name
        self.disk = RotationalDisk(env, disk_profile, f"{name}.disk")
        self.memory = MemoryStore(env, memory_profile, f"{name}.mem")
        self.page_cache = PageCache(page_cache_bytes)
        self._pending: dict[tuple[str, int, int], Event] = {}

    def read_file(self, file_id: str, offset: int, length: int):
        """Process generator: read through page cache and disk.

        Misses go to the disk (stream-keyed by file for the head
        model); identical concurrent misses are merged.
        """
        cached, gaps = self.page_cache.lookup(file_id, offset, length)
        for gap_off, gap_len in gaps:
            key = (file_id, gap_off, gap_len)
            pending = self._pending.get(key)
            if pending is not None:
                self.page_cache.stats.merged_fetches += 1
                yield pending
                continue
            fetch_done = self.env.event()
            self._pending[key] = fetch_done
            try:
                yield from self.disk.read(gap_len, stream=file_id,
                                          offset=gap_off)
                self.page_cache.insert(file_id, gap_off, gap_len)
            finally:
                del self._pending[key]
                fetch_done.succeed()
        if cached:
            yield from self.memory.read(cached)


@dataclass
class ComputeNodeStats:
    vms_booted: int = 0
    cache_files_held: int = 0
    demand_read_bytes: int = 0
    """Guest-visible read bytes demanded by VMs on this node — the
    denominator of the storage-offload fraction (Figs 2/11): offload =
    1 - storage_bytes_served / demand_read_bytes across the fleet."""


class ComputeNode:
    """One KVM host."""

    def __init__(
        self,
        env: Environment,
        node_id: str,
        *,
        disk_profile: cal.DiskProfile = cal.COMPUTE_DISK,
        memory_profile: cal.MemoryProfile = cal.NODE_MEMORY,
    ) -> None:
        self.env = env
        self.node_id = node_id
        self.disk = RotationalDisk(env, disk_profile, f"{node_id}.disk")
        self.memory = MemoryStore(env, memory_profile, f"{node_id}.mem")
        self.stats = ComputeNodeStats()

    def __repr__(self) -> str:
        return f"<ComputeNode {self.node_id}>"
