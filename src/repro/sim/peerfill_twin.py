"""Fleet-twin of peer-to-peer cache fill: Figure 11 at cluster scale.

The paper's Figure 11 shows the central storage node's share of
deployment traffic collapsing as caches absorb demand.  Peer fill
(:mod:`repro.cluster.peerfill`) pushes the same curve further: once
*one* node is warm, later nodes fill from each other instead of from
central storage.  This module reproduces that effect with the
discrete-event machinery at a scale the real three-server tests can't
reach — 64+ nodes, every transfer flowing through fair-share links.

The model is deliberately at the *cluster* grain, not the block grain:
each node needs one working set; a fill is a bulk transfer either over
the storage node's shared NIC (everyone queues on one link — the
Figure 2 saturation) or over a warm peer's NIC (bounded fan-out per
peer, cluster bandwidth that *grows* with every completed boot).
Digest-verification failures divert their clusters to storage, exactly
like the real fallback ladder.

The sim publishes the same metric families the aggregator already
derives Fig 11's ``storage_offload_fraction`` from
(``sim_node_demand_read_bytes_total`` per node,
``sim_storage_bytes_served_total`` for the storage target), plus
``sim_peerfill_bytes_total{source=...}`` mirroring the real
``peerfill_bytes_total`` counters — so one
:class:`~repro.metrics.fleet.FleetAggregator` poll over
:func:`peerfill_targets` yields the figure's y-axis with and without
peer fill, no special-case signal code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim import calibration as cal
from repro.sim.engine import Environment
from repro.sim.fleet_twin import SimScrapeTarget
from repro.sim.network import FairShareLink
from repro.units import KiB, MiB

__all__ = ["PeerFillFleetSim", "PeerFillNodeStats", "peerfill_targets"]


@dataclass
class PeerFillNodeStats:
    """One simulated node's fill, by source."""

    node_id: str
    demand_read_bytes: int = 0
    peer_bytes: int = 0
    storage_bytes: int = 0
    verify_failures: int = 0
    fill_start: float = 0.0
    fill_end: float = 0.0
    peer: str | None = None  # who served the peer rung, if anyone

    @property
    def fill_seconds(self) -> float:
        return self.fill_end - self.fill_start


class _WarmPeer:
    """A node that finished filling and can now serve others."""

    __slots__ = ("node_id", "link", "active")

    def __init__(self, node_id: str, link: FairShareLink) -> None:
        self.node_id = node_id
        self.link = link
        self.active = 0


class PeerFillFleetSim:
    """N nodes filling one VMI's working set, storage vs peers.

    ``peer_fill=False`` is the baseline: every node's working set
    crosses the storage NIC (one shared fair-share link — the herd
    serializes).  ``peer_fill=True`` lets each node fill from the
    least-loaded warm peer (at most ``max_peer_fanout`` concurrent
    fills per peer), so only nodes that boot while *no* peer is warm —
    plus every digest-verification casualty
    (``verify_failure_rate``) — touch central storage.

    ``stagger`` spaces boot starts; 0 means the paper's simultaneous
    start, where peer fill degrades to the baseline (nobody is warm
    while everybody fills) — the honest edge of the technique.
    """

    def __init__(
        self,
        *,
        n_nodes: int = 64,
        working_set_bytes: int = 128 * MiB,
        cluster_size: int = 64 * KiB,
        peer_fill: bool = True,
        network: "str | cal.NetworkProfile" = "1gbe",
        max_peer_fanout: int = 4,
        verify_failure_rate: float = 0.0,
        stagger: float = 0.5,
        env: Environment | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if not 0.0 <= verify_failure_rate <= 1.0:
            raise ValueError(
                f"verify_failure_rate must be in [0, 1], "
                f"got {verify_failure_rate}")
        if max_peer_fanout < 1:
            raise ValueError("max_peer_fanout must be >= 1")
        if isinstance(network, str):
            network = cal.NETWORKS[network.lower()]
        self.env = env if env is not None else Environment()
        self.n_nodes = n_nodes
        self.working_set_bytes = working_set_bytes
        self.cluster_size = cluster_size
        self.peer_fill = peer_fill
        self.network = network
        self.max_peer_fanout = max_peer_fanout
        self.verify_failure_rate = verify_failure_rate
        self.stagger = stagger
        self.storage_nic = FairShareLink(
            self.env, network.bandwidth, network.latency,
            "storage-nic.down")
        self.storage_served_bytes = 0
        self.nodes = [PeerFillNodeStats(f"node{i:02d}")
                      for i in range(n_nodes)]
        self._warm: list[_WarmPeer] = []

    # -- the fill processes ----------------------------------------------

    def _pick_peer(self) -> _WarmPeer | None:
        eligible = [w for w in self._warm
                    if w.active < self.max_peer_fanout]
        if not eligible:
            return None
        return min(eligible, key=lambda w: w.active)

    def _fill(self, stats: PeerFillNodeStats, delay: float):
        env = self.env
        if delay > 0:
            yield env.timeout(delay)
        stats.fill_start = env.now
        need = self.working_set_bytes
        stats.demand_read_bytes = need
        peer = self._pick_peer() if self.peer_fill else None
        if peer is not None:
            # Verification casualties fall back cluster by cluster;
            # model them as a deterministic byte fraction.
            bad_clusters = int(
                (need // self.cluster_size) * self.verify_failure_rate)
            bad = bad_clusters * self.cluster_size
            good = need - bad
            stats.peer = peer.node_id
            stats.verify_failures = bad_clusters
            peer.active += 1
            try:
                yield from peer.link.transfer(good)
            finally:
                peer.active -= 1
            stats.peer_bytes = good
            if bad:
                yield from self.storage_nic.transfer(bad)
                stats.storage_bytes = bad
                self.storage_served_bytes += bad
        else:
            yield from self.storage_nic.transfer(need)
            stats.storage_bytes = need
            self.storage_served_bytes += need
        stats.fill_end = env.now
        # Warm now: this node's NIC joins the serving pool, so fill
        # bandwidth grows with every completed boot.
        self._warm.append(_WarmPeer(
            stats.node_id,
            FairShareLink(env, self.network.bandwidth,
                          self.network.latency,
                          f"{stats.node_id}-nic.up")))

    def run(self) -> "PeerFillFleetSim":
        env = self.env
        procs = [env.process(self._fill(stats, i * self.stagger))
                 for i, stats in enumerate(self.nodes)]
        env.run(until=env.all_of(procs))
        return self

    # -- results ----------------------------------------------------------

    @property
    def makespan(self) -> float:
        return max((s.fill_end for s in self.nodes), default=0.0)

    @property
    def peer_bytes_total(self) -> int:
        return sum(s.peer_bytes for s in self.nodes)

    @property
    def demand_bytes_total(self) -> int:
        return sum(s.demand_read_bytes for s in self.nodes)

    @property
    def storage_offload_fraction(self) -> float | None:
        """The Fig 11 quantity, computed sim-side (the aggregator
        derives the same number from the published families)."""
        demand = self.demand_bytes_total
        if not demand:
            return None
        return 1.0 - self.storage_served_bytes / demand

    def summary(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "peer_fill": self.peer_fill,
            "working_set_bytes": self.working_set_bytes,
            "stagger": self.stagger,
            "verify_failure_rate": self.verify_failure_rate,
            "storage_served_bytes": self.storage_served_bytes,
            "peer_bytes_total": self.peer_bytes_total,
            "demand_bytes_total": self.demand_bytes_total,
            "storage_offload_fraction": self.storage_offload_fraction,
            "verify_failures": sum(s.verify_failures
                                   for s in self.nodes),
            "makespan": self.makespan,
            "mean_fill_seconds": (
                sum(s.fill_seconds for s in self.nodes) / self.n_nodes),
        }


def peerfill_targets(sim: PeerFillFleetSim) -> "list[SimScrapeTarget]":
    """Scrape targets for a peer-fill sim: storage + every node.

    The families line up with the aggregator's preference tuples, so
    ``compute_signals`` derives ``storage_offload_fraction`` for the
    sim exactly as it would for a real fleet; the per-source
    ``sim_peerfill_bytes_total`` mirrors the real client's
    ``peerfill_bytes_total``.
    """

    def storage_sampler():
        return [("sim_storage_bytes_served_total", {},
                 float(sim.storage_served_bytes))]

    targets = [SimScrapeTarget(
        "storage", storage_sampler,
        lambda: {"status": "ok", "queue_depth": 0})]

    def node_target(stats: PeerFillNodeStats) -> SimScrapeTarget:
        def sampler():
            return [
                ("sim_node_demand_read_bytes_total", {},
                 float(stats.demand_read_bytes)),
                ("sim_peerfill_bytes_total", {"source": "peer"},
                 float(stats.peer_bytes)),
                ("sim_peerfill_bytes_total", {"source": "storage"},
                 float(stats.storage_bytes)),
                ("sim_peerfill_verify_failures_total", {},
                 float(stats.verify_failures)),
            ]

        def health():
            return {"status": "ok",
                    "peer": stats.peer,
                    "fill_seconds": stats.fill_seconds}

        return SimScrapeTarget(stats.node_id, sampler, health)

    targets.extend(node_target(stats) for stats in sim.nodes)
    return targets
