"""Queueing resources for the simulated testbed.

:class:`Resource` is a capacity-limited FIFO station — the disk queue of
the storage node ("disk queueing delay at the storage node", §2.2) is a
``Resource(capacity=spindles)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator

from repro.sim.engine import Environment, Event


class Request(Event):
    """A pending or granted claim on a resource slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource


@dataclass
class ResourceStats:
    """Occupancy/wait accounting for one resource."""

    total_requests: int = 0
    total_wait_time: float = 0.0
    busy_time: float = 0.0
    max_queue_len: int = 0
    _request_times: dict[int, float] = field(default_factory=dict)

    @property
    def mean_wait(self) -> float:
        if self.total_requests == 0:
            return 0.0
        return self.total_wait_time / self.total_requests


class Resource:
    """A FIFO resource with integral capacity.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ... hold the slot ...
        finally:
            resource.release(req)

    or the context-manager-style helper ``yield from resource.hold(dt)``.
    """

    def __init__(self, env: Environment, capacity: int = 1,
                 name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: int = 0
        self._waiting: deque[Request] = deque()
        self.stats = ResourceStats()

    # -- core protocol -----------------------------------------------------

    def request(self) -> Request:
        req = Request(self)
        self.stats.total_requests += 1
        self.stats._request_times[id(req)] = self.env.now
        if self.users < self.capacity:
            self.users += 1
            self._granted(req)
        else:
            self._waiting.append(req)
            self.stats.max_queue_len = max(
                self.stats.max_queue_len, len(self._waiting))
        return req

    def release(self, req: Request) -> None:
        if not req.triggered:
            # Released while still queued: withdraw it.
            try:
                self._waiting.remove(req)
            except ValueError:
                pass
            return
        self.users -= 1
        if self._waiting:
            nxt = self._waiting.popleft()
            self.users += 1
            self._granted(nxt)

    def _granted(self, req: Request) -> None:
        t0 = self.stats._request_times.pop(id(req), self.env.now)
        self.stats.total_wait_time += self.env.now - t0
        req.succeed()

    # -- convenience --------------------------------------------------------

    def hold(self, duration: float) -> Generator[Event, None, None]:
        """Acquire, hold for ``duration`` simulated seconds, release."""
        req = self.request()
        yield req
        try:
            self.stats.busy_time += duration
            yield self.env.timeout(duration)
        finally:
            self.release(req)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def __repr__(self) -> str:
        return (f"<Resource {self.name!r} {self.users}/{self.capacity} "
                f"queue={len(self._waiting)}>")
