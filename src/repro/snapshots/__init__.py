"""Memory-snapshot caches: the paper's §8 future-work extension.

"Another interesting line of work is to apply our caching scheme to
memory snapshots of already booted virtual machines, starting from
which instead of the VM image could improve the VM starting time even
further."

A memory snapshot is, from the storage system's point of view, just
another big mostly-idle image: resuming a VM reads a *resume working
set* (the resident pages the guest touches before it is responsive —
a few hundred MB of a multi-GB snapshot) and lazily pages the rest.
That is exactly the shape the VMI cache exploits, so this package
reuses the whole stack — cache chains, quota/CoR policy, the cluster
testbed — with resume profiles instead of boot profiles.
"""

from repro.snapshots.resume_model import (
    CENTOS_SNAPSHOT,
    ResumeProfile,
    generate_resume_trace,
)
from repro.snapshots.experiment import run_snapshot_resume

__all__ = [
    "ResumeProfile",
    "CENTOS_SNAPSHOT",
    "generate_resume_trace",
    "run_snapshot_resume",
]
