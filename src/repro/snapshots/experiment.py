"""The snapshot-resume experiment: boot vs resume vs cached resume.

Deploys N VMs three ways on the same simulated testbed:

1. **cold boot** from the CentOS VMI (the paper's baseline);
2. **snapshot resume** over plain on-demand transfers (the snapshot
   RAM image on NFS, a CoW overlay for dirtied pages);
3. **snapshot resume with warm caches** — the §8 proposal: the resume
   working set lives in per-node cache images, chained exactly like
   VMI caches.

Expected shape: resume beats boot (no boot CPU), and caching removes
the transfer cost that otherwise dominates the resume, "improv[ing]
the VM starting time even further".
"""

from __future__ import annotations

from repro.bootmodel.profiles import CENTOS_63
from repro.experiments.common import centos_trace
from repro.metrics.collectors import ExperimentLog
from repro.sim.blockio import SimImage, sim_cache_chain
from repro.sim.cluster_sim import BootJob, Testbed, boot_vms
from repro.snapshots.resume_model import (
    CENTOS_SNAPSHOT,
    ResumeProfile,
    generate_resume_trace,
)
from repro.units import MB


def run_snapshot_resume(
    node_axis: list[int] | None = None,
    network: str = "1gbe",
    profile: ResumeProfile = CENTOS_SNAPSHOT,
) -> ExperimentLog:
    """Mean start-up time vs node count for the three strategies."""
    node_axis = node_axis or [1, 8, 32]
    log = ExperimentLog(
        "ext-snapshot",
        f"VM start-up: boot vs snapshot resume, {network}")
    s_boot = log.new_series("Cold boot (QCOW2)")
    s_resume = log.new_series("Snapshot resume")
    s_cached = log.new_series("Snapshot resume - warm cache")
    resume_trace = generate_resume_trace(profile, seed=2)
    boot_trace = centos_trace()

    for n in node_axis:
        s_boot.add(n, _wave(network, n, boot_trace,
                            CENTOS_63.vmi_size, cached=False))
        s_resume.add(n, _wave(network, n, resume_trace,
                              profile.memory_size, cached=False))
        s_cached.add(n, _wave(network, n, resume_trace,
                              profile.memory_size, cached=True,
                              quota=int(profile.resume_working_set
                                        * 1.2)))
    log.record_scalar("resume_working_set_mb",
                      profile.resume_working_set / MB)
    return log


def _wave(network: str, n: int, trace, image_size: int, *,
          cached: bool, quota: int = 0) -> float:
    tb = Testbed(n_compute=n, network=network)
    base = tb.make_base("state.img", image_size)
    jobs = []
    for i in range(n):
        node = tb.computes[i]
        if cached:
            chain, cache = sim_cache_chain(
                base,
                cache_location=tb.compute_disk_location(
                    node, f"vm{i}.statecache"),
                cow_location=tb.compute_mem_location(
                    node, f"vm{i}.cow"),
                quota=quota, vm_name=f"vm{i}")
            for op in trace.reads():
                length = min(op.length, cache.size - op.offset)
                if length > 0:
                    cache.read(op.offset, length, [])
        else:
            chain = SimImage(
                f"vm{i}.cow", base.size,
                tb.compute_mem_location(node, f"vm{i}.cow"),
                backing=base)
        jobs.append(BootJob(f"vm{i:02d}", node, chain, trace))
    return boot_vms(tb, jobs).mean_boot_time
