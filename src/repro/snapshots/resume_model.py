"""Resume profiles: what a VM reads while waking from a snapshot.

Compared with a boot (see :mod:`repro.bootmodel.profiles`):

* the "image" is the saved RAM, sized by the VM's memory, not its disk;
* the working set is the *resident set* at snapshot time — bigger in
  absolute terms than a boot's reads but a similar small fraction of
  the whole;
* there is almost no CPU work: the guest was already booted, so the
  wake-up is I/O-dominated (this is why snapshot resume beats booting
  at all, and why caching its working set helps so much more);
* reads are larger and more sequential — restore streams page runs,
  it does not chase bootloader/initrd/config files around a disk.

The resume trace generator is the boot generator with a profile shaped
this way; both produce :class:`~repro.bootmodel.trace.BootTrace`, so
every downstream consumer (real chains, the simulator, caches) works
unchanged — the code reuse the paper anticipates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import OSProfile
from repro.bootmodel.trace import BootTrace
from repro.units import GiB, KiB, MB


@dataclass(frozen=True)
class ResumeProfile:
    """Wake-up behaviour of one saved VM."""

    name: str
    memory_size: int
    """Size of the saved RAM image."""

    resume_working_set: int
    """Pages that must be present before the VM is responsive."""

    resume_cpu_time: float
    """Device re-plumbing, clock fixups — seconds of CPU, not I/O."""

    mean_read_size: int = 128 * KiB
    sequential_fraction: float = 0.7

    def as_os_profile(self) -> OSProfile:
        """Bridge into the boot-model machinery."""
        return OSProfile(
            name=f"{self.name}-resume",
            vmi_size=self.memory_size,
            read_working_set=self.resume_working_set,
            warm_cache_size=int(self.resume_working_set * 1.08),
            single_boot_time=self.resume_cpu_time / (1 - 0.17),
            read_wait_fraction=0.17,
            mean_read_size=self.mean_read_size,
            sequential_fraction=self.sequential_fraction,
            reread_fraction=0.02,   # pages are restored once
            write_fraction=0.0,     # dirty pages go to the CoW overlay
        )


# A CentOS 6.3 service VM with 2 GiB of RAM; ~280 MB resident after
# boot + service start (order-of-magnitude typical for 2013 guests).
CENTOS_SNAPSHOT = ResumeProfile(
    name="centos-6.3",
    memory_size=2 * GiB,
    resume_working_set=280 * MB,
    resume_cpu_time=2.5,
)


def generate_resume_trace(profile: ResumeProfile,
                          seed: int = 0) -> BootTrace:
    """A deterministic resume trace (reads against the RAM image)."""
    return generate_boot_trace(profile.as_os_profile(), seed=seed)
