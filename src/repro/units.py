"""Byte-size and time unit helpers used throughout the package.

All sizes in the package are plain ``int`` byte counts and all simulated
times are ``float`` seconds; these helpers exist so that calibration
constants and test fixtures can be written legibly (``64 * KiB``,
``parse_size("200M")``) and reported the way the paper reports them
(``format_size(85_200_000) == "85.2 MB"``).

The paper mixes decimal ("MB") and binary ("64KB cluster") conventions as
QEMU itself does: cluster sizes and rwsize are powers of two (binary),
while working-set sizes in Tables 1 and 2 are decimal megabytes.  We keep
both explicit here rather than guessing at call sites.
"""

from __future__ import annotations

import re

# Binary (IEC) units — used for cluster sizes, table sizes, rwsize.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# Decimal (SI) units — used when quoting the paper's MB figures.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

SECTOR_SIZE = 512

# Time units (seconds).
USEC = 1e-6
MSEC = 1e-3

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[kKmMgGtT]?)(?P<i>i?)[bB]?\s*$"
)

_BINARY = {"": 1, "k": KiB, "m": MiB, "g": GiB, "t": TiB}
_DECIMAL = {"": 1, "k": KB, "m": MB, "g": GB, "t": 1000 * GB}


def parse_size(text: str | int, *, decimal: bool = False) -> int:
    """Parse a human size string into bytes.

    ``"64K"``/``"64KiB"`` → 65536; with ``decimal=True``, ``"85.2M"`` →
    85 200 000.  Integers pass through unchanged.  qemu-img convention:
    bare suffixes are binary.
    """
    if isinstance(text, int):
        return text
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"cannot parse size: {text!r}")
    num = float(m.group("num"))
    unit = m.group("unit").lower()
    table = _DECIMAL if (decimal and not m.group("i")) else _BINARY
    result = num * table[unit]
    if result != int(result):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(result)


def format_size(nbytes: int, *, decimal: bool = True) -> str:
    """Format bytes the way the paper's tables do (decimal MB by default)."""
    if nbytes < 0:
        return "-" + format_size(-nbytes, decimal=decimal)
    base = 1000 if decimal else 1024
    units = ["B", "KB", "MB", "GB", "TB"] if decimal else [
        "B", "KiB", "MiB", "GiB", "TiB"]
    value = float(nbytes)
    for unit in units:
        if value < base or unit == units[-1]:
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= base
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Format a duration: ``"8.3 ms"``, ``"35.2 s"``, ``"14:55 min"``."""
    if seconds < 0:
        return "-" + format_time(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120:
        return f"{seconds:.1f} s"
    minutes, rem = divmod(seconds, 60)
    return f"{int(minutes)}:{rem:04.1f} min"


def is_power_of_two(n: int) -> bool:
    """True for 1, 2, 4, 8, ... — used to validate cluster sizes."""
    return n > 0 and (n & (n - 1)) == 0


def align_down(value: int, alignment: int) -> int:
    """Largest multiple of ``alignment`` that is ≤ ``value``."""
    return (value // alignment) * alignment


def align_up(value: int, alignment: int) -> int:
    """Smallest multiple of ``alignment`` that is ≥ ``value``."""
    return -(-value // alignment) * alignment


def div_round_up(a: int, b: int) -> int:
    """Ceiling division for non-negative integers."""
    return -(-a // b)
