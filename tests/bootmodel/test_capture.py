"""Tests for trace capture and blkparse import."""

import pytest

from repro.bootmodel.capture import CapturingDriver, parse_blkparse
from repro.bootmodel.vm import replay_through_chain
from repro.imagefmt.chain import create_cow_chain
from repro.units import KiB, MiB

from tests.conftest import pattern


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestCapturingDriver:
    def make(self, tmp_path, small_base):
        inner = create_cow_chain(small_base, str(tmp_path / "c.qcow2"))
        clock = FakeClock()
        cap = CapturingDriver(inner, clock=clock, os_name="test-os")
        return cap, clock

    def test_passthrough_data(self, tmp_path, small_base):
        cap, clock = self.make(tmp_path, small_base)
        with cap:
            assert cap.read(0, 1000) == pattern(0, 1000)
            cap.write(0, b"XYZ")
            assert cap.read(0, 3) == b"XYZ"

    def test_records_ops_with_think_time(self, tmp_path, small_base):
        cap, clock = self.make(tmp_path, small_base)
        with cap:
            cap.read(0, 512)
            clock.advance(1.5)
            cap.read(4096, 1024)
            clock.advance(0.25)
            cap.write(8192, b"\0" * 512)
            trace = cap.trace()
        assert trace.os_name == "test-os"
        assert len(trace) == 3
        assert trace.ops[0] == trace.ops[0].__class__(
            "read", 0, 512, 0.0)
        assert trace.ops[1].think_time == pytest.approx(1.5)
        assert trace.ops[2].kind == "write"
        assert trace.ops[2].think_time == pytest.approx(0.25)

    def test_captured_trace_replays(self, tmp_path, small_base):
        """The §3.2 lazy-cache path: record a boot, then use the trace
        to warm a cache for the next VM."""
        cap, clock = self.make(tmp_path, small_base)
        with cap:
            for i in range(5):
                cap.read(i * 64 * KiB, 16 * KiB)
                clock.advance(0.1)
            trace = cap.trace()
        with create_cow_chain(small_base,
                              str(tmp_path / "c2.qcow2")) as chain:
            result = replay_through_chain(trace, chain)
        assert result.guest_bytes_read == 5 * 16 * KiB
        assert result.unique_base_bytes == trace.unique_read_bytes()

    def test_backing_exposed(self, tmp_path, small_base):
        cap, _ = self.make(tmp_path, small_base)
        with cap:
            assert cap.backing is not None
            assert cap.chain_depth() == 2


BLKPARSE_SAMPLE = """\
  8,0    3        1     0.000000000  1234  Q   R 2048 + 64 [qemu-kvm]
  8,0    3        2     0.000100000  1234  C   R 2048 + 64 [qemu-kvm]
  8,0    1        3     0.500000000  1234  Q  RA 4096 + 8 [qemu-kvm]
  8,0    1        4     1.250000000  1234  Q   W 9000 + 16 [qemu-kvm]
garbage line that should be ignored
  8,0    2        5     1.500000000  1234  Q   R 999999999 + 8 [qemu]
"""


class TestBlkparseImport:
    def test_basic_parse(self):
        trace = parse_blkparse(BLKPARSE_SAMPLE.splitlines(),
                               vmi_size=64 * MiB)
        # Q events only, the out-of-range read clipped away entirely.
        assert len(trace) == 3
        r0, r1, w = trace.ops
        assert (r0.kind, r0.offset, r0.length) == \
            ("read", 2048 * 512, 64 * 512)
        assert r0.think_time == 0.0
        assert r1.think_time == pytest.approx(0.5)
        assert r1.length == 8 * 512  # RA (readahead) still a read
        assert w.kind == "write"
        assert w.think_time == pytest.approx(0.75)

    def test_completion_events_selectable(self):
        trace = parse_blkparse(BLKPARSE_SAMPLE.splitlines(),
                               vmi_size=64 * MiB, actions=("C",))
        assert len(trace) == 1

    def test_clipping_at_vmi_size(self):
        line = "8,0 0 1 0.0 1 Q R 100 + 1000 [x]"
        trace = parse_blkparse([line], vmi_size=100 * 512 + 4096)
        assert trace.ops[0].length == 4096

    def test_empty_input(self):
        trace = parse_blkparse([], vmi_size=1 << 20)
        assert len(trace) == 0

    def test_roundtrip_through_json(self):
        trace = parse_blkparse(BLKPARSE_SAMPLE.splitlines(),
                               vmi_size=64 * MiB)
        from repro.bootmodel.trace import BootTrace

        assert BootTrace.from_json(trace.to_json()).ops == trace.ops
