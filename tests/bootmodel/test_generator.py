"""Tests for the boot-trace generator: the synthesized traces must match
the profile's published observables."""

import pytest

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import CENTOS_63, OS_PROFILES, tiny_profile
from repro.units import KiB, MiB


@pytest.fixture(scope="module")
def centos_trace():
    return generate_boot_trace(CENTOS_63, seed=1)


class TestWorkingSetTargets:
    @pytest.mark.parametrize("name", sorted(OS_PROFILES))
    def test_unique_reads_match_table1(self, name):
        p = OS_PROFILES[name]
        tr = generate_boot_trace(p, seed=0)
        ws = tr.unique_read_bytes()
        # Within 1 % of the published Table 1 working set.
        assert abs(ws - p.read_working_set) < 0.01 * p.read_working_set

    def test_override(self):
        tr = generate_boot_trace(CENTOS_63, seed=0,
                                 working_set_override=4 * MiB)
        assert abs(tr.unique_read_bytes() - 4 * MiB) < 64 * KiB

    def test_bad_overrides(self):
        with pytest.raises(ValueError):
            generate_boot_trace(CENTOS_63, working_set_override=0)
        with pytest.raises(ValueError):
            generate_boot_trace(
                CENTOS_63, working_set_override=CENTOS_63.vmi_size + 1)


class TestTraceShape:
    def test_rereads_present(self, centos_trace):
        """Total reads exceed unique reads (re-read fraction)."""
        total = centos_trace.total_read_bytes()
        unique = centos_trace.unique_read_bytes()
        assert total > unique * 1.05
        assert total < unique * 1.5

    def test_think_time_matches_cpu_budget(self, centos_trace):
        assert centos_trace.total_think_time() == \
            pytest.approx(CENTOS_63.cpu_time, rel=1e-6)

    def test_ops_within_image(self, centos_trace):
        assert centos_trace.max_offset() <= CENTOS_63.vmi_size

    def test_sector_alignment(self, centos_trace):
        for op in centos_trace.ops:
            assert op.offset % 512 == 0
            assert op.length % 512 == 0
            assert op.length > 0

    def test_reads_are_small(self, centos_trace):
        """'Small-sized read requests during boot time' (§5): the median
        read is well under the 64 KiB rwsize."""
        sizes = sorted(op.length for op in centos_trace.reads())
        median = sizes[len(sizes) // 2]
        assert median <= 64 * KiB

    def test_writes_fraction(self, centos_trace):
        n_writes = sum(1 for op in centos_trace.ops if op.kind == "write")
        assert 0 < n_writes < 0.1 * len(centos_trace)

    def test_front_bias(self, centos_trace):
        """Boot data clusters toward the front of the image."""
        reads = list(centos_trace.reads())
        first_half = sum(1 for op in reads
                         if op.offset < CENTOS_63.vmi_size // 2)
        assert first_half > len(reads) * 0.6


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_boot_trace(CENTOS_63, seed=7)
        b = generate_boot_trace(CENTOS_63, seed=7)
        assert a.ops == b.ops

    def test_different_seed_different_trace(self):
        a = generate_boot_trace(CENTOS_63, seed=7)
        b = generate_boot_trace(CENTOS_63, seed=8)
        assert a.ops != b.ops

    def test_different_profiles_different_traces(self):
        p1 = tiny_profile("a")
        p2 = tiny_profile("b")
        a = generate_boot_trace(p1, seed=0)
        b = generate_boot_trace(p2, seed=0)
        assert a.ops != b.ops


class TestTinyProfiles:
    def test_tiny_is_fast_and_consistent(self):
        p = tiny_profile()
        tr = generate_boot_trace(p, seed=0)
        assert abs(tr.unique_read_bytes() - p.read_working_set) \
            < 0.05 * p.read_working_set
        assert len(tr) < 500
