"""Plan mining: traces and JSONL sinks in, versioned prefetch plans out.

First-touch semantics (re-reads add nothing, contiguity coalesces),
phase accounting, clipping, multi-run merging, and the PlanStore's
versioned persistence (DESIGN.md §12).
"""

import json

import pytest

from repro.bootmodel import (
    BootTrace,
    PlanExtent,
    PlanStore,
    PrefetchPlan,
    TraceOp,
    default_plan,
    generate_boot_trace,
    merge_plans,
    plan_from_jsonl,
    plan_from_trace,
)
from repro.bootmodel.profiles import tiny_profile
from repro.units import KiB, MiB


def trace_of(reads, *, size=MiB, name="img"):
    """Build a trace from (offset, length, think_time) read tuples."""
    ops = [TraceOp("read", off, ln, think) for off, ln, think in reads]
    return BootTrace(name, size, ops)


class TestMining:
    def test_first_touch_in_boot_order(self):
        trace = trace_of([
            (8 * KiB, 1 * KiB, 0.0),   # second extent by offset,
            (0, 1 * KiB, 0.0),         # first by boot order
            (8 * KiB, 512, 0.0),       # re-read: adds nothing
        ], size=64 * KiB)
        plan = plan_from_trace(trace, align=4 * KiB)
        assert [(e.offset, e.length) for e in plan] == [
            (8 * KiB, 4 * KiB), (0, 4 * KiB)]

    def test_contiguous_touches_coalesce(self):
        trace = trace_of([
            (0, 4 * KiB, 0.0),
            (4 * KiB, 4 * KiB, 0.0),
            (8 * KiB, 100, 0.0),
        ], size=64 * KiB)
        plan = plan_from_trace(trace, align=4 * KiB)
        assert [(e.offset, e.length) for e in plan] == [(0, 12 * KiB)]

    def test_unaligned_touch_rounds_out(self):
        trace = trace_of([(5 * KiB, 100, 0.0)], size=64 * KiB)
        plan = plan_from_trace(trace, align=4 * KiB)
        assert [(e.offset, e.length) for e in plan] == [
            (4 * KiB, 4 * KiB)]

    def test_phase_is_cumulative_think_time(self):
        trace = trace_of([
            (0, 4 * KiB, 0.5),
            (16 * KiB, 4 * KiB, 0.25),
        ], size=64 * KiB)
        plan = plan_from_trace(trace, align=4 * KiB)
        assert [e.phase for e in plan] == [0.5, 0.75]

    def test_writes_do_not_contribute(self):
        trace = BootTrace("img", 64 * KiB, [
            TraceOp("write", 0, 4 * KiB, 0.0),
            TraceOp("read", 8 * KiB, 4 * KiB, 0.0),
        ])
        plan = plan_from_trace(trace, align=4 * KiB)
        assert [(e.offset, e.length) for e in plan] == [
            (8 * KiB, 4 * KiB)]

    def test_plan_covers_unique_reads(self):
        profile = tiny_profile("t", vmi_size=8 * MiB,
                               working_set=1 * MiB, boot_time=1.0)
        trace = generate_boot_trace(profile, seed=0)
        plan = plan_from_trace(trace, align=512)
        assert plan.total_bytes() >= trace.unique_read_bytes()
        assert plan.image == "t"
        assert plan.source == "trace"

    def test_clipped(self):
        plan = PrefetchPlan("img", 512, extents=[
            PlanExtent(0, 4 * KiB), PlanExtent(30 * KiB, 4 * KiB),
            PlanExtent(64 * KiB, 4 * KiB)])
        small = plan.clipped(32 * KiB)
        assert [(e.offset, e.length) for e in small] == [
            (0, 4 * KiB), (30 * KiB, 2 * KiB)]
        # The original is untouched.
        assert len(plan) == 3

    def test_bad_extents_rejected(self):
        with pytest.raises(ValueError):
            PlanExtent(-1, 4 * KiB)
        with pytest.raises(ValueError):
            PlanExtent(0, 0)
        with pytest.raises(ValueError):
            PlanExtent(0, 4 * KiB, phase=-0.5)
        with pytest.raises(ValueError, match="cluster_size"):
            plan_from_trace(trace_of([(0, 100, 0.0)]), align=0)


class TestJsonlMining:
    def write_events(self, path, events):
        with open(path, "w", encoding="utf-8") as f:
            for rec in events:
                f.write(json.dumps(rec) + "\n")

    def test_mines_base_layer_reads(self, tmp_path):
        path = str(tmp_path / "boot.jsonl")
        self.write_events(path, [
            {"type": "event", "name": "block.read", "ts": 10.0,
             "attrs": {"layer": "base", "offset": 0,
                       "length": 4 * KiB}},
            {"type": "event", "name": "block.read", "ts": 10.5,
             "attrs": {"layer": "cache", "offset": 64 * KiB,
                       "length": 4 * KiB}},  # wrong layer: skipped
            {"type": "span", "name": "vm.boot", "ts": 10.6},
            {"type": "event", "name": "block.write", "ts": 10.7,
             "attrs": {"layer": "base", "offset": 0, "length": 512}},
            {"type": "event", "name": "block.read", "ts": 11.0,
             "attrs": {"layer": "base", "offset": 8 * KiB,
                       "length": 512}},
        ])
        plan = plan_from_jsonl(path, align=4 * KiB, image="img")
        assert plan.source == "jsonl"
        assert [(e.offset, e.length) for e in plan] == [
            (0, 4 * KiB), (8 * KiB, 4 * KiB)]
        # Phases are relative to the first matching read.
        assert [e.phase for e in plan] == [0.0, 1.0]

    def test_layer_override(self, tmp_path):
        path = str(tmp_path / "boot.jsonl")
        self.write_events(path, [
            {"type": "event", "name": "block.read", "ts": 0.0,
             "attrs": {"layer": "prefetch", "offset": 4 * KiB,
                       "length": 4 * KiB}},
        ])
        assert len(plan_from_jsonl(path, align=512, image="i")) == 0
        plan = plan_from_jsonl(path, align=512, image="i",
                               layer="prefetch")
        assert len(plan) == 1


class TestMerge:
    def test_first_plan_order_wins_later_plans_widen(self):
        a = plan_from_trace(trace_of([
            (16 * KiB, 4 * KiB, 0.0), (0, 4 * KiB, 0.0)],
            size=64 * KiB), align=4 * KiB)
        b = plan_from_trace(trace_of([
            (0, 4 * KiB, 0.0), (32 * KiB, 4 * KiB, 0.0)],
            size=64 * KiB), align=4 * KiB)
        merged = merge_plans([a, b])
        assert merged.source == "merged"
        assert merged.runs == 2
        assert [(e.offset, e.length) for e in merged] == [
            (16 * KiB, 4 * KiB), (0, 4 * KiB), (32 * KiB, 4 * KiB)]

    def test_single_plan_passthrough(self):
        a = plan_from_trace(trace_of([(0, 512, 0.0)]), align=512)
        assert merge_plans([a]) is a

    def test_mismatches_rejected(self):
        a = plan_from_trace(trace_of([(0, 512, 0.0)], name="x"),
                            align=512)
        b = plan_from_trace(trace_of([(0, 512, 0.0)], name="y"),
                            align=512)
        with pytest.raises(ValueError, match="different images"):
            merge_plans([a, b])
        c = plan_from_trace(trace_of([(0, 512, 0.0)], name="x"),
                            align=4 * KiB)
        with pytest.raises(ValueError, match="cluster size"):
            merge_plans([a, c])
        with pytest.raises(ValueError, match="nothing"):
            merge_plans([])


class TestPersistence:
    def test_json_roundtrip(self):
        plan = PrefetchPlan("centos-6.3", 512, "merged", 3, [
            PlanExtent(0, 4 * KiB, 0.0),
            PlanExtent(64 * KiB, 8 * KiB, 1.25)])
        back = PrefetchPlan.from_json(plan.to_json())
        assert back == plan

    def test_future_version_refused(self):
        doc = json.loads(PrefetchPlan("i", 512).to_json())
        doc["version"] = 99
        with pytest.raises(ValueError, match="newer"):
            PrefetchPlan.from_json(json.dumps(doc))

    def test_store_roundtrip_and_sanitized_names(self, tmp_path):
        store = PlanStore(str(tmp_path / "plans"))
        plan = plan_from_trace(
            trace_of([(0, 4 * KiB, 0.0)], name="nbd://host:1/os v2"),
            align=512)
        path = store.save(plan)
        assert "/" not in path[len(str(tmp_path)) + 7:]
        assert store.load("nbd://host:1/os v2") == plan
        assert store.load("unknown") is None
        assert store.images() == ["nbd___host_1_os_v2"]

    def test_default_plan_is_deterministic(self):
        profile = tiny_profile("t", vmi_size=8 * MiB,
                               working_set=1 * MiB, boot_time=1.0)
        a = default_plan(profile, align=512)
        b = default_plan(profile, align=512)
        assert a == b
        assert a.source == "profile"
        assert a.total_bytes() > 0
