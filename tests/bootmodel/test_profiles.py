"""Tests for OS boot profiles (paper Tables 1 & 2 calibration)."""

import pytest

from repro.bootmodel.profiles import (
    CENTOS_63,
    DEBIAN_607,
    OS_PROFILES,
    WINDOWS_2012,
    tiny_profile,
)
from repro.units import MB


class TestPaperNumbers:
    def test_table1_working_sets(self):
        assert CENTOS_63.read_working_set == 85_200_000
        assert DEBIAN_607.read_working_set == 24_900_000
        assert WINDOWS_2012.read_working_set == 195_800_000

    def test_table2_cache_sizes(self):
        assert CENTOS_63.warm_cache_size == 93 * MB
        assert DEBIAN_607.warm_cache_size == 40 * MB
        assert WINDOWS_2012.warm_cache_size == 201 * MB

    def test_warm_cache_exceeds_working_set(self):
        """Table 2 numbers are 'slightly bigger' than Table 1 (metadata)."""
        for p in OS_PROFILES.values():
            assert p.warm_cache_size > p.read_working_set

    def test_working_set_fits_250mb_cache_entry(self):
        """§2.3: 'a VMI cache entry would need to have in the order of
        250 MB (providing some margin)'."""
        for p in OS_PROFILES.values():
            assert p.warm_cache_size < 250 * MB

    def test_read_wait_fraction(self):
        assert CENTOS_63.read_wait_fraction == pytest.approx(0.17)


class TestDerived:
    def test_cpu_plus_wait_is_boot_time(self):
        for p in OS_PROFILES.values():
            assert p.cpu_time + p.read_wait_time == \
                pytest.approx(p.single_boot_time)

    def test_read_count_positive(self):
        for p in OS_PROFILES.values():
            assert p.approx_read_count > 100

    def test_working_set_is_tiny_fraction_of_vmi(self):
        """§1: VMs 'read only a small fraction ... of the total VMI'."""
        for p in OS_PROFILES.values():
            assert p.read_working_set < 0.06 * p.vmi_size

    def test_registry(self):
        assert set(OS_PROFILES) == {
            "centos-6.3", "debian-6.0.7", "windows-server-2012"}


class TestTinyProfile:
    def test_shape(self):
        p = tiny_profile()
        assert p.read_working_set < p.warm_cache_size < p.vmi_size
        assert 0 < p.read_wait_fraction < 1

    def test_custom(self):
        p = tiny_profile(working_set=2048, vmi_size=65536, boot_time=1.0)
        assert p.read_working_set == 2048
        assert p.single_boot_time == 1.0
