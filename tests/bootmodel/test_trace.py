"""Tests for BootTrace records and statistics."""

import pytest

from repro.bootmodel.trace import BootTrace, TraceOp


def make_trace():
    return BootTrace("test-os", 1 << 20, [
        TraceOp("read", 0, 4096, 0.1),
        TraceOp("read", 2048, 4096, 0.2),   # overlaps the first
        TraceOp("write", 65536, 512, 0.0),
        TraceOp("read", 100_000, 1000, 0.3),
    ])


class TestTraceOp:
    def test_valid(self):
        op = TraceOp("read", 0, 512, 0.0)
        assert op.kind == "read"

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            TraceOp("erase", 0, 512, 0.0)

    def test_negative_fields(self):
        with pytest.raises(ValueError):
            TraceOp("read", -1, 512, 0.0)
        with pytest.raises(ValueError):
            TraceOp("read", 0, -1, 0.0)
        with pytest.raises(ValueError):
            TraceOp("read", 0, 512, -0.1)

    def test_frozen(self):
        op = TraceOp("read", 0, 512, 0.0)
        with pytest.raises(Exception):
            op.offset = 5


class TestStatistics:
    def test_totals(self):
        tr = make_trace()
        assert tr.total_read_bytes() == 4096 + 4096 + 1000
        assert tr.total_write_bytes() == 512
        assert tr.read_count() == 3
        assert len(tr) == 4

    def test_unique_read_bytes_counts_overlap_once(self):
        tr = make_trace()
        # [0,4096) ∪ [2048,6144) ∪ [100000,101000) = 6144 + 1000
        assert tr.unique_read_bytes() == 6144 + 1000

    def test_think_time(self):
        assert make_trace().total_think_time() == pytest.approx(0.6)

    def test_max_offset(self):
        assert make_trace().max_offset() == 101_000

    def test_empty(self):
        tr = BootTrace("empty", 1024)
        assert tr.total_read_bytes() == 0
        assert tr.unique_read_bytes() == 0
        assert tr.max_offset() == 0


class TestSerialization:
    def test_json_roundtrip(self):
        tr = make_trace()
        out = BootTrace.from_json(tr.to_json())
        assert out.os_name == tr.os_name
        assert out.vmi_size == tr.vmi_size
        assert out.ops == tr.ops

    def test_file_roundtrip(self, tmp_path):
        tr = make_trace()
        p = str(tmp_path / "trace.json")
        tr.save(p)
        assert BootTrace.load(p).ops == tr.ops


class TestCoarsen:
    def test_preserves_totals(self):
        tr = make_trace()
        c = tr.coarsen(2)
        assert c.total_read_bytes() == tr.total_read_bytes()
        assert c.total_write_bytes() == tr.total_write_bytes()
        assert c.total_think_time() == pytest.approx(tr.total_think_time())

    def test_reduces_read_count(self):
        tr = make_trace()
        assert tr.coarsen(2).read_count() == 2
        assert tr.coarsen(3).read_count() == 1

    def test_factor_one_is_identity(self):
        tr = make_trace()
        assert tr.coarsen(1) is tr

    def test_writes_pass_through(self):
        c = make_trace().coarsen(10)
        assert sum(1 for op in c.ops if op.kind == "write") == 1
