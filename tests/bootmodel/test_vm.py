"""Tests for the boot replayer over real image chains."""

import os

import pytest

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.bootmodel.trace import BootTrace, TraceOp
from repro.bootmodel.vm import (
    make_sparse_base,
    measure_boot_time_uncontended,
    replay_through_chain,
    warm_cache_by_boot,
)
from repro.imagefmt.chain import create_cache_chain, create_cow_chain
from repro.units import KiB, MiB


@pytest.fixture
def profile():
    return tiny_profile(vmi_size=8 * MiB, working_set=MiB, boot_time=2.0)


@pytest.fixture
def trace(profile):
    return generate_boot_trace(profile, seed=3)


@pytest.fixture
def base(tmp_path, profile):
    return make_sparse_base(str(tmp_path / "base.raw"), profile.vmi_size)


class TestReplayPlainQcow2:
    def test_traffic_equals_reads_plus_cow_fills(self, tmp_path, trace,
                                                 base):
        with create_cow_chain(base, str(tmp_path / "cow.qcow2")) as cow:
            res = replay_through_chain(trace, cow)
        assert res.guest_bytes_read == trace.total_read_bytes()
        # Plain QCOW2 fetches at most the read bytes + write-fill bytes.
        assert res.base_bytes_read >= res.unique_base_bytes
        assert res.unique_base_bytes >= trace.unique_read_bytes()

    def test_unique_close_to_trace_working_set(self, tmp_path, trace,
                                               base):
        with create_cow_chain(base, str(tmp_path / "cow.qcow2")) as cow:
            res = replay_through_chain(trace, cow)
        # Write CoW fills add less than ~20 % on the tiny profile.
        assert res.unique_base_bytes < trace.unique_read_bytes() * 1.25

    def test_no_cache_fields(self, tmp_path, trace, base):
        with create_cow_chain(base, str(tmp_path / "cow.qcow2")) as cow:
            res = replay_through_chain(trace, cow)
        assert res.cache_file_size is None
        assert res.cor_bytes_written == 0


class TestReplayWithCache:
    def test_cold_then_warm(self, tmp_path, trace, base, profile):
        cache_p = str(tmp_path / "cache.qcow2")
        quota = 2 * profile.read_working_set
        cold = None
        with create_cache_chain(base, cache_p,
                                str(tmp_path / "cow1.qcow2"),
                                quota=quota) as cow:
            cold = replay_through_chain(trace, cow)
        assert cold.base_bytes_read > 0
        assert cold.cor_bytes_written > 0
        assert not cold.cor_disabled

        with create_cache_chain(base, cache_p,
                                str(tmp_path / "cow2.qcow2"),
                                quota=quota) as cow:
            warm = replay_through_chain(trace, cow)
        # Warm boot: (almost) nothing from the base.
        assert warm.base_bytes_read < cold.base_bytes_read * 0.02
        assert warm.cache_hit_bytes > 0

    def test_quota_exhaustion_reported(self, tmp_path, trace, base):
        with create_cache_chain(base, str(tmp_path / "cache.qcow2"),
                                str(tmp_path / "cow.qcow2"),
                                quota=64 * KiB) as cow:
            res = replay_through_chain(trace, cow)
        assert res.cor_disabled
        assert res.cache_file_size <= 64 * KiB

    def test_layers_recorded(self, tmp_path, trace, base):
        with create_cache_chain(base, str(tmp_path / "cache.qcow2"),
                                str(tmp_path / "cow.qcow2"),
                                quota=4 * MiB) as cow:
            res = replay_through_chain(trace, cow)
        assert len(res.layers) == 3


class TestPacedReplay:
    def test_paced_replay_respects_think_clock(self, tmp_path, base):
        import time

        tr = BootTrace("t", 8 * MiB, [
            TraceOp("read", 0, 4 * KiB, 0.05),
            TraceOp("read", 64 * KiB, 4 * KiB, 0.05),
        ])
        with create_cow_chain(base, str(tmp_path / "cow.qcow2")) as cow:
            t0 = time.perf_counter()
            res = replay_through_chain(tr, cow, time_scale=1.0)
            paced = time.perf_counter() - t0
        assert paced >= 0.1
        assert res.ops_replayed == 2

    def test_default_replay_never_sleeps(self, tmp_path, base):
        import time

        tr = BootTrace("t", 8 * MiB, [
            TraceOp("read", 0, 4 * KiB, 10.0),
        ])
        with create_cow_chain(base, str(tmp_path / "cow.qcow2")) as cow:
            t0 = time.perf_counter()
            replay_through_chain(tr, cow)
            unpaced = time.perf_counter() - t0
        assert unpaced < 1.0

    def test_negative_scale_rejected(self, tmp_path, trace, base):
        with create_cow_chain(base, str(tmp_path / "cow.qcow2")) as cow:
            with pytest.raises(ValueError, match="time_scale"):
                replay_through_chain(trace, cow, time_scale=-0.5)


class TestWarmCacheByBoot:
    def test_creates_warm_cache(self, tmp_path, trace, base, profile):
        cache_p = str(tmp_path / "cache.qcow2")
        res = warm_cache_by_boot(trace, base, cache_p,
                                 quota=2 * profile.read_working_set)
        assert os.path.exists(cache_p)
        assert res.cache_file_size == os.path.getsize(cache_p)
        # Scratch CoW removed.
        assert not os.path.exists(cache_p + ".warmup-cow")

    def test_cache_size_close_to_working_set(self, tmp_path, trace,
                                             base, profile):
        """Table 2 relationship: cache file ≈ working set + metadata."""
        res = warm_cache_by_boot(trace, base,
                                 str(tmp_path / "cache.qcow2"),
                                 quota=2 * profile.read_working_set)
        assert res.unique_base_bytes <= res.cache_file_size \
            <= res.unique_base_bytes * 1.15

    def test_scratch_removed_on_error(self, tmp_path, base):
        bad = BootTrace("bad", 8 * MiB,
                        [TraceOp("read", 0, 10**12, 0.0)])
        cache_p = str(tmp_path / "cache.qcow2")
        # Oversized op gets clipped, not raised — so craft a real error:
        # unreadable base path.
        with pytest.raises(Exception):
            warm_cache_by_boot(bad, str(tmp_path / "missing.raw"),
                               cache_p, quota=MiB)
        assert not os.path.exists(cache_p + ".warmup-cow")


class TestAnalyticBootTime:
    def test_formula(self):
        tr = BootTrace("t", 1 << 20, [
            TraceOp("read", 0, 100_000, 1.0),
            TraceOp("read", 0, 100_000, 0.5),
            TraceOp("write", 0, 512, 0.25),
        ])
        t = measure_boot_time_uncontended(
            tr, read_latency=0.01, read_bandwidth=1_000_000)
        assert t == pytest.approx(1.75 + 2 * (0.01 + 0.1))

    def test_zero_reads(self):
        tr = BootTrace("t", 1024, [TraceOp("write", 0, 512, 2.0)])
        assert measure_boot_time_uncontended(tr, 0.01, 1e6) == \
            pytest.approx(2.0)
