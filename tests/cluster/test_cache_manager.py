"""Tests for cache pools and LRU eviction (§3.4)."""

import pytest

from repro.cluster.cache_manager import CachePool, CacheRegistry
from repro.sim.blockio import Location, SimImage
from repro.units import MiB


def fake_cache(name: str, phys: int) -> SimImage:
    base = SimImage(f"{name}.base", 64 * MiB,
                    Location("nfs", "storage", f"{name}.base"),
                    preallocated=True)
    img = SimImage(name, 64 * MiB,
                   Location("compute-disk", "node00", name),
                   cluster_bits=9, backing=base, cache_quota=32 * MiB)
    img.physical_bytes = phys
    return img


class TestCachePool:
    def test_get_miss_then_hit(self):
        pool = CachePool("p", 10 * MiB)
        assert pool.get("centos") is None
        c = fake_cache("centos.cache", MiB)
        pool.put("centos", c)
        assert pool.get("centos") is c
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_lru_eviction_order(self):
        pool = CachePool("p", 3 * MiB)
        a, b, c = (fake_cache(n, MiB) for n in ("a", "b", "c"))
        pool.put("a", a)
        pool.put("b", b)
        pool.put("c", c)
        assert len(pool) == 3
        d = fake_cache("d", MiB)
        evicted = pool.put("d", d)
        assert evicted == [a]           # least recently used
        assert "a" not in pool

    def test_get_refreshes_recency(self):
        pool = CachePool("p", 2 * MiB)
        a, b = fake_cache("a", MiB), fake_cache("b", MiB)
        pool.put("a", a)
        pool.put("b", b)
        pool.get("a")                    # a becomes most recent
        evicted = pool.put("c", fake_cache("c", MiB))
        assert evicted == [b]

    def test_peek_does_not_refresh(self):
        pool = CachePool("p", 2 * MiB)
        pool.put("a", fake_cache("a", MiB))
        pool.put("b", fake_cache("b", MiB))
        pool.peek("a")                   # no recency change
        evicted = pool.put("c", fake_cache("c", MiB))
        assert [e.name for e in evicted] == ["a"]
        # peek must not touch hit/miss stats either
        assert pool.stats.hits == 0

    def test_oversized_rejected(self):
        pool = CachePool("p", MiB)
        evicted = pool.put("big", fake_cache("big", 2 * MiB))
        assert evicted == []
        assert "big" not in pool
        assert pool.stats.rejected_too_big == 1

    def test_multi_eviction_for_big_entry(self):
        pool = CachePool("p", 3 * MiB)
        for n in ("a", "b", "c"):
            pool.put(n, fake_cache(n, MiB))
        evicted = pool.put("big", fake_cache("big", 3 * MiB))
        assert len(evicted) == 3
        assert pool.vmi_ids() == ["big"]

    def test_replace_same_vmi(self):
        pool = CachePool("p", 4 * MiB)
        pool.put("a", fake_cache("a1", MiB))
        pool.put("a", fake_cache("a2", 2 * MiB))
        assert len(pool) == 1
        assert pool.used_bytes == 2 * MiB
        assert pool.get("a").name == "a2"

    def test_replace_returns_old_image(self):
        # Regression: the replaced image used to vanish — never
        # returned, never counted — leaking its simulated memory
        # (the docstring says the caller owns evicted-image cleanup).
        pool = CachePool("p", 4 * MiB)
        old = fake_cache("a1", MiB)
        pool.put("a", old)
        evicted = pool.put("a", fake_cache("a2", 2 * MiB))
        assert old in evicted
        assert pool.stats.replacements == 1
        # A replacement is not an LRU eviction.
        assert pool.stats.evictions == 0

    def test_rejection_drops_stale_entry(self):
        # Regression: rejecting an over-capacity refresh used to leave
        # the *old* entry for the same vmi_id in place, so later gets
        # served the outdated cache as a hit.
        pool = CachePool("p", MiB)
        stale = fake_cache("a-old", MiB)
        pool.put("a", stale)
        evicted = pool.put("a", fake_cache("a-new", 2 * MiB))
        assert evicted == [stale]
        assert "a" not in pool
        assert pool.used_bytes == 0
        assert pool.stats.rejected_too_big == 1
        assert pool.get("a") is None

    def test_rejection_without_existing_entry(self):
        pool = CachePool("p", MiB)
        assert pool.put("big", fake_cache("big", 2 * MiB)) == []
        assert pool.stats.rejected_too_big == 1
        assert pool.used_bytes == 0

    def test_remove(self):
        pool = CachePool("p", 4 * MiB)
        c = fake_cache("a", MiB)
        pool.put("a", c)
        assert pool.remove("a") is c
        assert pool.used_bytes == 0
        assert pool.remove("a") is None

    def test_accounting(self):
        pool = CachePool("p", 10 * MiB)
        pool.put("a", fake_cache("a", 3 * MiB))
        assert pool.used_bytes == 3 * MiB
        assert pool.free_bytes == 7 * MiB

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            CachePool("p", -1)

    def test_hit_rate(self):
        pool = CachePool("p", 10 * MiB)
        pool.put("a", fake_cache("a", MiB))
        pool.get("a")
        pool.get("a")
        pool.get("b")
        assert pool.stats.hit_rate == pytest.approx(2 / 3)


class TestCacheRegistry:
    def test_nodes_with_cache(self):
        reg = CacheRegistry(["n0", "n1", "n2"],
                            node_capacity_bytes=10 * MiB,
                            storage_capacity_bytes=10 * MiB)
        reg.node_pool("n0").put("centos", fake_cache("c0", MiB))
        reg.node_pool("n2").put("centos", fake_cache("c2", MiB))
        reg.node_pool("n1").put("debian", fake_cache("d1", MiB))
        assert sorted(reg.nodes_with_cache("centos")) == ["n0", "n2"]
        assert reg.nodes_with_cache("windows") == []

    def test_total_cached_vmis(self):
        reg = CacheRegistry(["n0", "n1"],
                            node_capacity_bytes=10 * MiB,
                            storage_capacity_bytes=10 * MiB)
        reg.node_pool("n0").put("centos", fake_cache("c", MiB))
        reg.storage_pool.put("centos", fake_cache("cs", MiB))
        reg.storage_pool.put("debian", fake_cache("d", MiB))
        assert reg.total_cached_vmis() == 2


class TestInvalidation:
    def test_invalidate_drops_everywhere(self):
        reg = CacheRegistry(["n0", "n1"],
                            node_capacity_bytes=10 * MiB,
                            storage_capacity_bytes=10 * MiB)
        reg.node_pool("n0").put("centos", fake_cache("c0", MiB))
        reg.node_pool("n1").put("centos", fake_cache("c1", MiB))
        reg.storage_pool.put("centos", fake_cache("cs", MiB))
        reg.node_pool("n0").put("debian", fake_cache("d0", MiB))
        assert reg.invalidate_vmi("centos") == 3
        assert reg.nodes_with_cache("centos") == []
        assert "centos" not in reg.storage_pool
        # Other VMIs untouched.
        assert reg.nodes_with_cache("debian") == ["n0"]

    def test_invalidate_missing_is_zero(self):
        reg = CacheRegistry(["n0"], node_capacity_bytes=MiB,
                            storage_capacity_bytes=MiB)
        assert reg.invalidate_vmi("ghost") == 0
