"""Integration tests for deployment waves and the Cloud facade."""

import pytest

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.cluster import Cloud
from repro.cluster.deployment import Deployment, VMRequest
from repro.cluster.cache_manager import CacheRegistry
from repro.sim.cluster_sim import Testbed
from repro.units import MiB

PROFILE = tiny_profile(vmi_size=64 * MiB, working_set=4 * MiB,
                       boot_time=2.0)
TRACE = generate_boot_trace(PROFILE, seed=11)
QUOTA = 16 * MiB


def make_cloud(mode, n=4, network="1gbe", **kw):
    cloud = Cloud(n_compute=n, network=network, cache_mode=mode,
                  cache_quota=QUOTA, **kw)
    cloud.register_vmi("tiny", PROFILE.vmi_size, TRACE)
    return cloud


class TestWaveBasics:
    def test_every_vm_boots(self):
        cloud = make_cloud("none")
        res = cloud.start_vms([("tiny", 4)])
        assert len(res.scenario.records) == 4
        assert all(r.boot_time > 0 for r in res.scenario.records)

    def test_unregistered_vmi_rejected(self):
        cloud = make_cloud("none")
        with pytest.raises(KeyError):
            cloud.start_vms([("nope", 1)])

    def test_duplicate_vmi_rejected(self):
        cloud = make_cloud("none")
        with pytest.raises(ValueError):
            cloud.register_vmi("tiny", PROFILE.vmi_size, TRACE)

    def test_invalid_mode(self):
        tb = Testbed(n_compute=1)
        reg = CacheRegistry(["node00"], node_capacity_bytes=MiB,
                            storage_capacity_bytes=MiB)
        with pytest.raises(ValueError):
            Deployment(tb, reg, cache_mode="quantum")

    def test_node_override(self):
        cloud = make_cloud("none")
        res = cloud.start_vms([("tiny", 2)],
                              node_override=["node03", "node03"])
        assert {r.node_id for r in res.scenario.records} == {"node03"}


class TestComputeDiskMode:
    def test_cold_then_warm_cycle(self):
        cloud = make_cloud("compute-disk")
        cold = cloud.start_vms([("tiny", 4)])
        assert set(cold.decisions.values()) == {"cold"}
        # Caches got flushed to the nodes' disks and registered.
        assert len(cloud.warm_nodes("tiny")) == 4
        assert cold.post_boot_seconds > 0  # the deferred disk flush

        cloud.shutdown_all()
        warm = cloud.start_vms([("tiny", 4)])
        assert set(warm.decisions.values()) == {"local-warm"}
        assert warm.mean_boot_time < cold.mean_boot_time
        # Warm boots: nothing but CoW fills from the storage node.
        assert warm.scenario.storage_nfs_bytes < \
            0.1 * cold.scenario.storage_nfs_bytes

    def test_one_cold_creator_per_node(self):
        """Two VMs of one VMI on one node: only one builds the cache."""
        cloud = make_cloud("compute-disk")
        res = cloud.start_vms([("tiny", 2)],
                              node_override=["node00", "node00"])
        decisions = sorted(res.decisions.values())
        assert decisions == ["cold", "no-cache"]


class TestStorageMemMode:
    def test_one_creator_per_vmi_cluster_wide(self):
        cloud = make_cloud("storage-mem")
        cold = cloud.start_vms([("tiny", 4)])
        decisions = sorted(cold.decisions.values())
        assert decisions.count("cold") == 1
        assert decisions.count("no-cache") == 3

    def test_copyback_charged_to_boot(self):
        """Figure 14: the cold creator's boot includes the transfer."""
        cloud = make_cloud("storage-mem")
        cold = cloud.start_vms([("tiny", 4)])
        creator_vm = [vm for vm, d in cold.decisions.items()
                      if d == "cold"][0]
        others = [r.boot_time for r in cold.scenario.records
                  if r.vm_id != creator_vm]
        creator_time = [r.boot_time for r in cold.scenario.records
                        if r.vm_id == creator_vm][0]
        assert creator_time > min(others)

    def test_warm_serves_from_storage_memory(self):
        cloud = make_cloud("storage-mem")
        cloud.start_vms([("tiny", 4)])
        cloud.shutdown_all()
        warm = cloud.start_vms([("tiny", 4)])
        assert set(warm.decisions.values()) == {"storage-warm"}
        assert warm.scenario.storage_mem_read_bytes > 0
        # The storage node's memory actually holds the cache.
        assert cloud.testbed.storage.memory.used_bytes > 0


class TestAlgorithm1Mode:
    def test_cold_populates_both_levels(self):
        cloud = make_cloud("algorithm1")
        cloud.start_vms([("tiny", 4)])
        assert len(cloud.warm_nodes("tiny")) == 4
        assert "tiny" in cloud.registry.storage_pool

    def test_storage_copy_is_independent(self):
        cloud = make_cloud("algorithm1")
        cloud.start_vms([("tiny", 4)])
        local = cloud.registry.node_pool("node00").peek("tiny")
        storage = cloud.registry.storage_pool.peek("tiny")
        assert storage is not None and local is not None
        assert storage is not local
        assert storage.location.kind == "storage-mem"
        assert local.location.kind == "compute-disk"

    def test_new_node_chains_to_storage_cache(self):
        cloud = make_cloud("algorithm1", n=4)
        cloud.start_vms([("tiny", 2)],
                        node_override=["node00", "node01"])
        cloud.shutdown_all()
        # Schedule onto a cold node explicitly.
        res = cloud.start_vms([("tiny", 1)], node_override=["node03"])
        assert list(res.decisions.values()) == ["storage-warm"]
        # And node03 now has a local cache for next time.
        assert "node03" in cloud.warm_nodes("tiny")


class TestSchedulerIntegration:
    def test_affinity_routes_to_warm_nodes(self):
        cloud = make_cloud("compute-disk", n=8)
        cloud.start_vms([("tiny", 2)],
                        node_override=["node00", "node01"])
        cloud.shutdown_all()
        res = cloud.start_vms([("tiny", 2)])
        assert {r.node_id for r in res.scenario.records} == \
            {"node00", "node01"}
        assert set(res.decisions.values()) == {"local-warm"}

    def test_without_affinity_striping_spreads(self):
        cloud = make_cloud("compute-disk", n=8, cache_affinity=False)
        cloud.start_vms([("tiny", 2)],
                        node_override=["node00", "node01"])
        cloud.shutdown_all()
        res = cloud.start_vms([("tiny", 2)])
        # Striping over all 8 nodes: warm nodes are no more likely,
        # and striping actually prefers the emptier cold nodes.
        assert set(res.decisions.values()) <= {"cold", "no-cache"}


class TestMultiVMI:
    def test_independent_caches_per_vmi(self):
        cloud = make_cloud("compute-disk", n=4)
        trace_b = generate_boot_trace(PROFILE, seed=99)
        cloud.register_vmi("other", PROFILE.vmi_size, trace_b)
        cloud.start_vms([("tiny", 2), ("other", 2)])
        warm_tiny = cloud.warm_nodes("tiny")
        warm_other = cloud.warm_nodes("other")
        assert len(warm_tiny) == 2
        assert len(warm_other) == 2
        assert not (set(warm_tiny) & set(warm_other))


class TestStorageDiskCachePromotion:
    def test_algorithm1_promotes_disk_cache_to_tmpfs(self):
        """Algorithm 1: 'if Cache_base is on disk then copy Base_cache
        to tmpfs' — a cache parked on the storage node's NFS export is
        promoted to memory before the wave boots from it."""
        from repro.sim.blockio import SimImage

        cloud = make_cloud("algorithm1", n=2)
        tb = cloud.testbed
        base = cloud.deployment.bases["tiny"]
        # Park a warm cache file on the storage node's *disk*.
        disk_cache = SimImage(
            "tiny.cache", base.size, tb.nfs_location("tiny.cache"),
            cluster_bits=9, backing=base, cache_quota=QUOTA)
        for op in TRACE.reads():
            length = min(op.length, disk_cache.size - op.offset)
            if length > 0:
                disk_cache.read(op.offset, length, [])
        cloud.registry.storage_pool.put("tiny", disk_cache)
        phys_at_promotion = disk_cache.physical_bytes

        res = cloud.start_vms([("tiny", 1)], node_override=["node00"])
        assert list(res.decisions.values()) == ["storage-warm"]
        # The cache moved to tmpfs and the storage disk served the copy.
        # (It may keep growing by a few CoR clusters after promotion.)
        assert disk_cache.location.kind == "storage-mem"
        assert tb.storage.memory.used_bytes >= phys_at_promotion
        assert tb.storage.disk.stats.bytes_read >= phys_at_promotion

    def test_promotion_happens_once_for_many_vms(self):
        from repro.sim.blockio import SimImage

        cloud = make_cloud("algorithm1", n=4)
        tb = cloud.testbed
        base = cloud.deployment.bases["tiny"]
        disk_cache = SimImage(
            "tiny.cache", base.size, tb.nfs_location("tiny.cache"),
            cluster_bits=9, backing=base, cache_quota=QUOTA)
        cloud.registry.storage_pool.put("tiny", disk_cache)
        cloud.start_vms([("tiny", 4)])
        # One promoted copy lives in memory (growing with the wave's
        # CoR fills and metadata updates), not one copy per VM.
        assert disk_cache.location.kind == "storage-mem"
        assert tb.storage.memory.used_bytes <= \
            1.1 * disk_cache.physical_bytes


class TestPrewarmOnRegistration:
    def test_prewarm_leaves_warm_caches(self):
        """§3.2: 'the system can boot a sample VM upon a new VMI
        registration to create the cache'."""
        cloud = Cloud(n_compute=4, network="ib",
                      cache_mode="compute-disk", cache_quota=QUOTA)
        cloud.register_vmi("tiny", PROFILE.vmi_size, TRACE,
                           prewarm=True)
        # Simulated time passed for the sample boot.
        assert cloud.env.now > 0
        assert len(cloud.warm_nodes("tiny")) == 1
        # All slots are free again.
        assert all(s.used_slots == 0 for s in cloud.states.values())
        # The first user wave lands warm (affinity) without a cold VM.
        res = cloud.start_vms([("tiny", 1)])
        assert list(res.decisions.values()) == ["local-warm"]

    def test_prewarm_storage_mem_mode(self):
        cloud = Cloud(n_compute=4, network="ib",
                      cache_mode="storage-mem", cache_quota=QUOTA)
        cloud.register_vmi("tiny", PROFILE.vmi_size, TRACE,
                           prewarm=True)
        assert "tiny" in cloud.registry.storage_pool
        res = cloud.start_vms([("tiny", 4)])
        assert set(res.decisions.values()) == {"storage-warm"}

    def test_prewarm_with_mode_none_rejected(self):
        cloud = Cloud(n_compute=2, cache_mode="none")
        with pytest.raises(ValueError):
            cloud.register_vmi("tiny", PROFILE.vmi_size, TRACE,
                               prewarm=True)
