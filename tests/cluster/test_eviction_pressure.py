"""Integration tests: cache pools under capacity pressure.

Section 3.4: the cache space is finite and an LRU policy evicts whole
VMI caches when a new one needs room — at both the node and the cloud
(storage-memory) level.  These tests drive full deployments with
deliberately tiny pools.
"""

import pytest

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.cluster import Cloud
from repro.units import KiB, MiB

PROFILE = tiny_profile(vmi_size=64 * MiB, working_set=4 * MiB,
                       boot_time=2.0)


def make_cloud(n_vmis=3, **kw):
    cloud = Cloud(n_compute=2, network="ib", cache_mode="algorithm1",
                  cache_quota=16 * MiB, **kw)
    for i in range(n_vmis):
        cloud.register_vmi(f"vmi-{i}", PROFILE.vmi_size,
                           generate_boot_trace(PROFILE, seed=10 + i))
    return cloud


class TestNodePoolPressure:
    def test_lru_eviction_on_node(self):
        # Room for ~1 cache (each ~4.5 MiB warm) per node.
        cloud = make_cloud(node_cache_capacity=6 * MiB)
        for i in range(3):
            cloud.start_vms([(f"vmi-{i}", 1)],
                            node_override=["node00"])
            cloud.shutdown_all()
        pool = cloud.registry.node_pool("node00")
        assert pool.stats.evictions >= 2
        assert len(pool) == 1
        assert "vmi-2" in pool  # most recent survives

    def test_evicted_vmi_boots_cold_again(self):
        cloud = make_cloud(node_cache_capacity=6 * MiB)
        cloud.start_vms([("vmi-0", 1)], node_override=["node00"])
        cloud.shutdown_all()
        cloud.start_vms([("vmi-1", 1)], node_override=["node00"])
        cloud.shutdown_all()
        # vmi-0 was evicted from node00's pool... but Algorithm 1 falls
        # back to the storage-memory cache (branch 2), not a full cold
        # boot — the two-level hierarchy absorbs node-level evictions.
        res = cloud.start_vms([("vmi-0", 1)], node_override=["node00"])
        assert list(res.decisions.values()) == ["storage-warm"]


class TestStoragePoolPressure:
    def test_storage_memory_freed_on_eviction(self):
        cloud = make_cloud(storage_cache_capacity=10 * MiB)
        for i in range(3):
            cloud.start_vms([(f"vmi-{i}", 1)],
                            node_override=[f"node0{i % 2}"])
            cloud.shutdown_all()
        pool = cloud.registry.storage_pool
        assert pool.stats.evictions >= 1
        # Accounting holds: what memory reports as used equals what the
        # pool thinks it holds.
        assert cloud.testbed.storage.memory.used_bytes == \
            pool.used_bytes

    def test_pool_never_exceeds_capacity(self):
        cap = 10 * MiB
        cloud = make_cloud(storage_cache_capacity=cap)
        for i in range(3):
            cloud.start_vms([(f"vmi-{i}", 2)])
            cloud.shutdown_all()
        assert cloud.registry.storage_pool.used_bytes <= cap

    def test_oversized_cache_not_pooled(self):
        cloud = make_cloud(storage_cache_capacity=64 * KiB)
        cloud.start_vms([("vmi-0", 1)])
        cloud.shutdown_all()
        pool = cloud.registry.storage_pool
        assert len(pool) == 0
        assert pool.stats.rejected_too_big >= 1


class TestSlotExhaustion:
    def test_scheduling_error_when_cluster_full(self):
        from repro.errors import SchedulingError

        cloud = make_cloud(n_vmis=1, slots_per_node=1)
        cloud.start_vms([("vmi-0", 2)])  # fills both nodes
        with pytest.raises(SchedulingError):
            cloud.start_vms([("vmi-0", 1)])

    def test_shutdown_releases_slots(self):
        cloud = make_cloud(n_vmis=1, slots_per_node=1)
        cloud.start_vms([("vmi-0", 2)])
        cloud.shutdown_all()
        res = cloud.start_vms([("vmi-0", 2)])  # works again
        assert len(res.scenario.records) == 2
