"""Tests for the Cloud facade's surface not covered elsewhere."""

import pytest

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.cluster import Cloud
from repro.cluster.scheduler import PackingStrategy
from repro.sim.cluster_sim import Testbed
from repro.units import MiB

PROFILE = tiny_profile(vmi_size=32 * MiB, working_set=2 * MiB,
                       boot_time=1.5)
TRACE = generate_boot_trace(PROFILE, seed=21)


class TestCloudConstruction:
    def test_custom_testbed_injected(self):
        tb = Testbed(n_compute=3, network="ib")
        cloud = Cloud(testbed=tb, cache_mode="none")
        assert cloud.testbed is tb
        assert len(cloud.states) == 3
        assert cloud.env is tb.env

    def test_custom_strategy_used(self):
        cloud = Cloud(n_compute=2, cache_mode="none",
                      strategy=PackingStrategy())
        assert cloud.scheduler.strategy.name == "packing"

    def test_warm_nodes_empty_initially(self):
        cloud = Cloud(n_compute=2, cache_mode="compute-disk")
        cloud.register_vmi("t", PROFILE.vmi_size, TRACE)
        assert cloud.warm_nodes("t") == []

    def test_vm_ids_unique_across_waves(self):
        cloud = Cloud(n_compute=2, cache_mode="none")
        cloud.register_vmi("t", PROFILE.vmi_size, TRACE)
        a = cloud.start_vms([("t", 2)])
        cloud.shutdown_all()
        b = cloud.start_vms([("t", 2)])
        ids_a = {r.vm_id for r in a.scenario.records}
        ids_b = {r.vm_id for r in b.scenario.records}
        assert not (ids_a & ids_b)

    def test_simulated_time_accumulates_across_waves(self):
        cloud = Cloud(n_compute=1, network="ib", cache_mode="none")
        cloud.register_vmi("t", PROFILE.vmi_size, TRACE)
        cloud.start_vms([("t", 1)])
        t1 = cloud.env.now
        cloud.shutdown_all()
        cloud.start_vms([("t", 1)])
        assert cloud.env.now > t1


class TestMixedRequests:
    def test_one_wave_many_vmis(self):
        cloud = Cloud(n_compute=4, network="ib",
                      cache_mode="compute-disk", cache_quota=8 * MiB)
        cloud.register_vmi("a", PROFILE.vmi_size, TRACE)
        cloud.register_vmi("b", PROFILE.vmi_size,
                           generate_boot_trace(PROFILE, seed=22))
        res = cloud.start_vms([("a", 2), ("b", 2)])
        assert len(res.scenario.records) == 4
        assert len(res.decisions) == 4

    def test_node_override_length_must_cover_requests(self):
        cloud = Cloud(n_compute=2, cache_mode="none")
        cloud.register_vmi("t", PROFILE.vmi_size, TRACE)
        with pytest.raises(IndexError):
            cloud.start_vms([("t", 3)], node_override=["node00"])
