"""Peer-to-peer cache fill against a real three-node fleet.

One storage ``BlockServer`` (the authoritative base), one warm peer
serving its cache over a second ``BlockServer``, one cold node
filling.  Under test: the happy path (checksum-identical cache
content, zero storage reads), every rung of the fallback ladder
(digest mismatch, dead peer mid-transfer, unreachable peer, pre-v5
peer, no peers at all — the fill must never fail the boot), the
cross-image ContentIndex rung, peer resolution from a fleet health
view, and the verified peer-sourced prefetch stream.
"""

import socket
from dataclasses import dataclass, field

import pytest

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.cluster.peerfill import fill_cache, resolve_peers
from repro.cluster.warmer import (
    checksum_extents,
    warm_cache,
    working_set_extents,
)
from repro.imagefmt.manifest import ContentIndex
from repro.imagefmt.qcow2 import Qcow2Image
from repro.metrics.registry import get_registry
from repro.remote import BlockServer, FaultInjector, RemoteImage
from repro.units import KiB, MiB

from tests.conftest import make_patterned_base, pattern

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

SIZE = 4 * MiB
QUOTA = 16 * MiB
CL = 64 * KiB  # the qcow2 default cluster size == manifest granularity


@dataclass
class Fleet:
    """The three-node arrangement every test starts from."""

    storage: BlockServer
    peer: BlockServer
    peer_cache_path: str
    manifest: object
    extents: list = field(default_factory=list)

    def peer_url(self) -> str:
        return self.peer.url("vmi")

    def storage_url(self) -> str:
        return self.storage.url("vmi")


@pytest.fixture
def fleet(tmp_path):
    """Storage node exporting the base; peer node warmed and serving.

    The peer's cache was warmed *from* the storage node, manifest
    built incrementally during the warm and attached to the peer's
    export — the real deployment sequence.
    """
    from repro.imagefmt.raw import RawImage

    base_path = make_patterned_base(tmp_path / "base.raw", size=SIZE)
    base = RawImage.open(base_path)
    storage = BlockServer()
    storage.add_export("vmi", base)

    peer_cache = str(tmp_path / "peer-cache.qcow2")
    Qcow2Image.create(peer_cache, backing_file=storage.url("vmi"),
                      cache_quota=QUOTA).close()
    with Qcow2Image.open(peer_cache, read_only=False) as cache:
        assert cache.cluster_size == CL
        report = warm_cache(cache, extents=[(0, SIZE)],
                            manifest_vmi_id="vmi")
    manifest = report.manifest
    assert manifest is not None and len(manifest) == SIZE // CL

    peer_img = Qcow2Image.open(peer_cache)
    peer = BlockServer()
    peer.add_export("vmi", peer_img, manifest=manifest)

    f = Fleet(storage=storage, peer=peer,
              peer_cache_path=peer_cache, manifest=manifest,
              extents=[(0, SIZE)])
    yield f
    peer.close()
    storage.close()
    peer_img.close()
    base.close()


def make_cold_cache(tmp_path, fleet, name="cold-cache.qcow2"):
    path = str(tmp_path / name)
    Qcow2Image.create(path, backing_file=fleet.storage_url(),
                      cache_quota=QUOTA).close()
    return Qcow2Image.open(path, read_only=False)


def counter_value(name: str, **labels) -> float:
    return get_registry().counter(name, **labels).value


class TestHappyPath:
    def test_cold_node_boots_from_warm_peer(self, tmp_path, fleet):
        """The tier-1 smoke: a cold node fills its cache entirely from
        the warm peer — checksum-identical content, not one byte read
        from central storage."""
        with make_cold_cache(tmp_path, fleet) as cache:
            storage_reads0 = fleet.storage.export_stats("vmi").read_ops
            report = fill_cache(cache, fleet.manifest,
                                peers=[fleet.peer_url()])
            assert report.clusters_needed == SIZE // CL
            assert report.clusters_from_peer == SIZE // CL
            assert report.clusters_from_storage == 0
            assert report.verify_failures == 0
            assert report.storage_offload_fraction == 1.0
            assert report.peers_used == [fleet.peer_url()]
            # Not a single read landed on the storage node.
            assert fleet.storage.export_stats("vmi").read_ops \
                == storage_reads0
            # Byte-for-byte what a storage warm-up would have built.
            with Qcow2Image.open(fleet.peer_cache_path) as warm:
                assert checksum_extents(cache, fleet.extents) \
                    == checksum_extents(warm, fleet.extents)
            assert cache.read(0, 4 * KiB) == pattern(0, 4 * KiB)

    def test_fill_is_idempotent(self, tmp_path, fleet):
        with make_cold_cache(tmp_path, fleet) as cache:
            fill_cache(cache, fleet.manifest, peers=[fleet.peer_url()])
            again = fill_cache(cache, fleet.manifest,
                               peers=[fleet.peer_url()])
            assert again.clusters_needed == 0
            assert again.bytes_total == 0
            assert again.storage_offload_fraction is None

    def test_fill_counters_flow_to_registry(self, tmp_path, fleet):
        runs0 = counter_value("peerfill_runs_total")
        peer0 = counter_value("peerfill_bytes_total", source="peer")
        with make_cold_cache(tmp_path, fleet) as cache:
            report = fill_cache(cache, fleet.manifest,
                                peers=[fleet.peer_url()])
        assert counter_value("peerfill_runs_total") == runs0 + 1
        assert counter_value("peerfill_bytes_total", source="peer") \
            == peer0 + report.bytes_from_peer

    def test_working_set_fill_from_boot_trace(self, tmp_path, fleet):
        """A trace-derived working set fills only its own clusters —
        the peer-fill face of the Figure 8 warm-up."""
        profile = tiny_profile(vmi_size=SIZE, working_set=MiB,
                               boot_time=1.0)
        trace = generate_boot_trace(profile, seed=7)
        extents = working_set_extents(trace, size=SIZE, align=CL)
        wanted = {i for off, ln in extents
                  for i in range(off // CL, (off + ln - 1) // CL + 1)}
        subset = type(fleet.manifest)(
            vmi_id=fleet.manifest.vmi_id, size=fleet.manifest.size,
            cluster_size=CL,
            digests={i: d for i, d in fleet.manifest.digests.items()
                     if i in wanted})
        with make_cold_cache(tmp_path, fleet) as cache:
            report = fill_cache(cache, subset,
                                peers=[fleet.peer_url()])
            assert report.clusters_from_peer == len(wanted)
            assert report.clusters_from_storage == 0
            for off, ln in extents:
                assert cache.read(off, ln) == pattern(off, ln)


class TestFallbackLadder:
    def test_digest_mismatch_falls_back_to_storage(self, tmp_path,
                                                   fleet):
        """A corrupt peer cluster fails verification: that cluster is
        refetched from storage, the counter fires, and the final cache
        is still byte-perfect."""
        # Corrupt one cluster of the peer's cache *behind* its
        # attached manifest (which now stale-claims the old digest).
        fleet.peer.close()
        with Qcow2Image.open(fleet.peer_cache_path,
                             read_only=False) as img:
            img.write(0, b"\xba\xad" * 1024)
        peer_img = Qcow2Image.open(fleet.peer_cache_path)
        fleet.peer = BlockServer()
        fleet.peer.add_export("vmi", peer_img, manifest=fleet.manifest)

        fails0 = counter_value("peerfill_verify_failures_total")
        with make_cold_cache(tmp_path, fleet) as cache:
            report = fill_cache(cache, fleet.manifest,
                                peers=[fleet.peer_url()])
            assert report.verify_failures == 1
            assert report.clusters_from_storage == 1
            assert report.clusters_from_peer == SIZE // CL - 1
            assert 0.0 < report.storage_offload_fraction < 1.0
            # The poisoned bytes never reached the cold cache: every
            # cluster — including the casualty — matches storage.
            assert cache.read(0, 4 * KiB) == pattern(0, 4 * KiB)
            assert checksum_extents(cache, fleet.extents) \
                == checksum_extents(cache.backing, fleet.extents)
        assert counter_value("peerfill_verify_failures_total") \
            == fails0 + 1
        peer_img.close()

    def test_dead_peer_mid_transfer(self, tmp_path, fleet):
        """The peer dies partway through the fill: whatever verified
        stays, the rest comes from storage, the boot never fails."""
        fi = FaultInjector()
        # Serve the manifest request and the first few reads, then
        # sever the connection mid-window.
        fi.inject(*(["none"] * 6 + ["drop"]))
        fleet.peer.set_fault_injector(fi)
        with make_cold_cache(tmp_path, fleet) as cache:
            report = fill_cache(cache, fleet.manifest,
                                peers=[fleet.peer_url()],
                                batch_bytes=256 * KiB)
            assert report.peer_errors == 1
            assert report.clusters_from_peer > 0
            assert report.clusters_from_storage > 0
            assert (report.clusters_from_peer
                    + report.clusters_from_storage) == SIZE // CL
            assert cache.read(SIZE - CL, CL) \
                == pattern(SIZE - CL, CL)
            assert checksum_extents(cache, fleet.extents) \
                == checksum_extents(cache.backing, fleet.extents)

    def test_unreachable_peer(self, tmp_path, fleet):
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))  # bound but never listening
            dead_url = f"nbd://127.0.0.1:{s.getsockname()[1]}/vmi"
        with make_cold_cache(tmp_path, fleet) as cache:
            report = fill_cache(cache, fleet.manifest,
                                peers=[dead_url],
                                connect_timeout=0.5)
            assert report.peer_errors == 1
            assert report.clusters_from_storage == SIZE // CL
            assert cache.read(0, 4 * KiB) == pattern(0, 4 * KiB)

    def test_dead_then_live_peer(self, tmp_path, fleet):
        """The ladder walks the peer list: a dead first peer just
        means the second one serves."""
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            dead_url = f"nbd://127.0.0.1:{s.getsockname()[1]}/vmi"
        with make_cold_cache(tmp_path, fleet) as cache:
            report = fill_cache(cache, fleet.manifest,
                                peers=[dead_url, fleet.peer_url()],
                                connect_timeout=0.5)
            assert report.peer_errors == 1
            assert report.clusters_from_peer == SIZE // CL
            assert report.clusters_from_storage == 0

    def test_pre_v5_peer_is_skipped(self, tmp_path, fleet):
        """A peer clamped below v5 cannot prove what it holds, so it
        is silently passed over — not an error, just not a source."""
        old_img = Qcow2Image.open(fleet.peer_cache_path)
        old_peer = BlockServer(max_protocol=4)
        old_peer.add_export("vmi", old_img)
        try:
            with make_cold_cache(tmp_path, fleet) as cache:
                report = fill_cache(cache, fleet.manifest,
                                    peers=[old_peer.url("vmi")])
                assert report.peer_errors == 0
                assert report.clusters_from_peer == 0
                assert report.clusters_from_storage == SIZE // CL
        finally:
            old_peer.close()
            old_img.close()

    def test_no_peers_degrades_to_storage_warmup(self, tmp_path,
                                                 fleet):
        with make_cold_cache(tmp_path, fleet) as cache:
            report = fill_cache(cache, fleet.manifest, peers=[])
            assert report.clusters_from_storage == SIZE // CL
            assert report.storage_offload_fraction == 0.0
            assert checksum_extents(cache, fleet.extents) \
                == checksum_extents(cache.backing, fleet.extents)

    def test_quota_exhaustion_reported_not_raised(self, tmp_path,
                                                  fleet):
        path = str(tmp_path / "tiny.qcow2")
        Qcow2Image.create(path, backing_file=fleet.storage_url(),
                          cache_quota=256 * KiB).close()
        with Qcow2Image.open(path, read_only=False) as cache:
            report = fill_cache(cache, fleet.manifest,
                                peers=[fleet.peer_url()])
            assert report.quota_exhausted
            assert cache.cache_runtime.cor.space_errors >= 1


class TestContentIndexRung:
    def test_local_dedup_serves_before_any_network(self, tmp_path,
                                                   fleet):
        """A cache of a *different* VMI with identical content serves
        the whole fill locally — zero peer and storage traffic."""
        index = ContentIndex()
        with Qcow2Image.open(fleet.peer_cache_path) as local:
            other = type(fleet.manifest)(
                vmi_id="other-vmi", size=fleet.manifest.size,
                cluster_size=CL, digests=dict(fleet.manifest.digests))
            index.add_manifest(other, local.read)
            with make_cold_cache(tmp_path, fleet) as cache:
                report = fill_cache(cache, fleet.manifest,
                                    peers=[fleet.peer_url()],
                                    content_index=index)
                assert report.clusters_from_local == SIZE // CL
                assert report.clusters_from_peer == 0
                assert report.clusters_from_storage == 0
                assert report.peers_used == []
                assert cache.read(0, 4 * KiB) == pattern(0, 4 * KiB)
        assert index.hits == SIZE // CL


class TestPeerResolution:
    @dataclass
    class Node:
        name: str
        status: str
        health: dict | None

    def snapshot(self, nodes):
        snap = type("Snap", (), {})()
        snap.nodes = {n.name: n for n in nodes}
        return snap

    def test_resolves_from_real_health_documents(self, fleet):
        """The peer's actual /healthz payload advertises enough to
        dial it: address present, export open, manifest attached."""
        snap = self.snapshot([
            self.Node("peer", "ok", fleet.peer.health()),
            self.Node("storage", "ok", fleet.storage.health()),
            self.Node("dead", "unreachable", None),
        ])
        urls = resolve_peers(snap, "vmi", exclude=("storage",))
        assert urls == [fleet.peer_url()]

    def test_manifest_holders_sort_first(self, fleet):
        bare = {"block_address": ["10.0.0.9", 7777],
                "exports": {"vmi": {"open": True, "manifest": False}}}
        snap = self.snapshot([
            self.Node("bare", "ok", bare),
            self.Node("peer", "ok", fleet.peer.health()),
        ])
        urls = resolve_peers(snap, "vmi")
        assert urls[0] == fleet.peer_url()
        assert urls[1] == "nbd://10.0.0.9:7777/vmi"

    def test_filters_unhealthy_closed_and_foreign(self, fleet):
        health = fleet.peer.health()
        closed = {"block_address": ["10.0.0.1", 1],
                  "exports": {"vmi": {"open": False}}}
        other = {"block_address": ["10.0.0.2", 2],
                 "exports": {"something-else": {"open": True}}}
        snap = self.snapshot([
            self.Node("sick", "degraded", health),
            self.Node("closed", "ok", closed),
            self.Node("other", "ok", other),
            self.Node("noaddr", "ok", {"exports": health["exports"]}),
        ])
        assert resolve_peers(snap, "vmi") == []

    def test_end_to_end_resolution_then_fill(self, tmp_path, fleet):
        """Health view in, warm cache out: resolve then fill."""
        snap = self.snapshot([
            self.Node("peer", "ok", fleet.peer.health())])
        urls = resolve_peers(snap, "vmi")
        with make_cold_cache(tmp_path, fleet) as cache:
            report = fill_cache(cache, fleet.manifest, peers=urls)
            assert report.clusters_from_peer == SIZE // CL


class TestVerifiedPrefetch:
    def test_peer_sourced_prefetch_verifies_clusters(self, tmp_path,
                                                     fleet):
        """The Prefetcher's verify= rung: a corrupt peer cluster is
        silently swapped for trusted backing bytes mid-stream."""
        from repro.bootmodel.prefetch import PlanExtent, PrefetchPlan
        from repro.cluster.prefetch import Prefetcher

        fleet.peer.close()
        with Qcow2Image.open(fleet.peer_cache_path,
                             read_only=False) as img:
            img.write(CL, b"\x66" * 1024)  # poison cluster 1
        peer_img = Qcow2Image.open(fleet.peer_cache_path)
        fleet.peer = BlockServer()
        fleet.peer.add_export("vmi", peer_img, manifest=fleet.manifest)

        plan = PrefetchPlan("vmi", CL, extents=[PlanExtent(0, 4 * CL)])
        with make_cold_cache(tmp_path, fleet) as cache:
            with RemoteImage.connect(fleet.peer_url()) as source:
                pf = Prefetcher(cache, plan, source=source,
                                chunk_bytes=CL,
                                verify=fleet.manifest)
                report = pf.run()
            assert report.verify_failures == 1
            # Cluster 1 came from the trusted backing instead.
            assert cache.read(CL, 4 * KiB) == pattern(CL, 4 * KiB)
            assert cache.read(0, 4 * KiB) == pattern(0, 4 * KiB)
        peer_img.close()

    def test_verify_requires_backing(self, tmp_path, fleet):
        from repro.bootmodel.prefetch import PlanExtent, PrefetchPlan
        from repro.cluster.prefetch import Prefetcher
        from repro.imagefmt.raw import RawImage

        plain = RawImage.create(str(tmp_path / "plain.raw"), SIZE)
        with RemoteImage.connect(fleet.peer_url()) as source:
            with pytest.raises(ValueError, match="trusted backing"):
                Prefetcher(plain,
                           PrefetchPlan("vmi", CL,
                                        extents=[PlanExtent(0, CL)]),
                           source=source, verify=fleet.manifest)
        plain.close()
