"""Tests for Algorithm 1 (paper Section 6)."""

import pytest

from repro.cluster.cache_manager import CacheRegistry
from repro.cluster.placement import plan_chain
from repro.sim.blockio import Location, SimImage
from repro.sim.cluster_sim import Testbed
from repro.units import MiB

QUOTA = 16 * MiB
SIZE = 64 * MiB


@pytest.fixture
def setup():
    tb = Testbed(n_compute=2, network="1gbe")
    reg = CacheRegistry([n.node_id for n in tb.computes],
                        node_capacity_bytes=100 * MiB,
                        storage_capacity_bytes=100 * MiB)
    base = tb.make_base("centos.raw", SIZE)
    return tb, reg, base


def make_cache(tb, base, node=None, kind="compute-disk"):
    if kind == "compute-disk":
        loc = tb.compute_disk_location(node, "c.cache")
    elif kind == "storage-mem":
        loc = tb.storage_mem_location("c.cache")
    else:
        loc = tb.nfs_location("c.cache")
    return SimImage("c.cache", base.size, loc, cluster_bits=9,
                    backing=base, cache_quota=QUOTA)


class TestBranch1LocalWarm:
    def test_local_cache_returned(self, setup):
        tb, reg, base = setup
        node = tb.computes[0]
        local = make_cache(tb, base, node)
        reg.node_pool(node.node_id).put(base.name, local)
        plan = plan_chain(tb, reg, node, base, quota=QUOTA)
        assert plan.decision == "local-warm"
        assert plan.backing_for_cow is local
        assert plan.new_cache is None
        assert plan.pre_boot == [] and plan.post_boot == []

    def test_other_nodes_cache_is_invisible(self, setup):
        tb, reg, base = setup
        other = tb.computes[1]
        reg.node_pool(other.node_id).put(
            base.name, make_cache(tb, base, other))
        plan = plan_chain(tb, reg, tb.computes[0], base, quota=QUOTA)
        assert plan.decision == "cold"


class TestBranch2StorageWarm:
    def test_new_local_cache_chained_to_storage(self, setup):
        tb, reg, base = setup
        storage_cache = make_cache(tb, base, kind="storage-mem")
        reg.storage_pool.put(base.name, storage_cache)
        node = tb.computes[0]
        plan = plan_chain(tb, reg, node, base, quota=QUOTA,
                          vm_name="vmX")
        assert plan.decision == "storage-warm"
        assert plan.new_cache is not None
        assert plan.backing_for_cow is plan.new_cache
        # "Chain NewCache_base to Cache_base"
        assert plan.new_cache.backing is storage_cache
        assert plan.pre_boot == []
        assert "flush-cache-to-local-disk" in plan.post_boot
        # No copy-back: the storage node already has this cache.
        assert "copy-cache-to-storage" not in plan.post_boot

    def test_storage_cache_on_disk_promoted(self, setup):
        """'if Cache_base is on disk then copy Base_cache to tmpfs'."""
        tb, reg, base = setup
        on_disk = make_cache(tb, base, kind="nfs")
        reg.storage_pool.put(base.name, on_disk)
        plan = plan_chain(tb, reg, tb.computes[0], base, quota=QUOTA)
        assert plan.decision == "storage-warm"
        assert "promote-storage-cache-to-tmpfs" in plan.pre_boot


class TestBranch3Cold:
    def test_cold_creates_and_copies_back(self, setup):
        tb, reg, base = setup
        plan = plan_chain(tb, reg, tb.computes[0], base, quota=QUOTA)
        assert plan.decision == "cold"
        assert plan.new_cache is not None
        assert plan.new_cache.backing is base
        assert plan.new_cache.cache_runtime.quota_policy.quota == QUOTA
        # Staged in memory during boot (Figure 7 arrangement).
        assert plan.new_cache.location.kind == "compute-mem"
        assert "copy-cache-to-storage" in plan.post_boot
        assert "flush-cache-to-local-disk" in plan.post_boot

    def test_one_creator_rule(self, setup):
        """§5.3.2: siblings of the cache creator run plain QCOW2."""
        tb, reg, base = setup
        plan = plan_chain(tb, reg, tb.computes[0], base, quota=QUOTA,
                          create_cold_cache=False)
        assert plan.decision == "no-cache"
        assert plan.backing_for_cow is base
        assert plan.new_cache is None

    def test_local_preferred_over_storage(self, setup):
        """Algorithm 1 checks the compute node first ('prefers chaining
        to a local cache ... to avoid the network as much as
        possible')."""
        tb, reg, base = setup
        node = tb.computes[0]
        local = make_cache(tb, base, node)
        reg.node_pool(node.node_id).put(base.name, local)
        reg.storage_pool.put(base.name,
                             make_cache(tb, base, kind="storage-mem"))
        plan = plan_chain(tb, reg, node, base, quota=QUOTA)
        assert plan.decision == "local-warm"
        assert plan.backing_for_cow is local
