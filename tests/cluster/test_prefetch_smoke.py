"""Tier-1 smoke run of the cold-boot prefetch benchmark.

Runs ``benchmarks/bench_ext_prefetch._run_prefetch`` at quick scale so
plain ``pytest`` exercises the whole predictive-prefetch datapath —
plan mining, the compressed side connection, the racing executor, and
the warm-equivalence checksum — on every run.  The log is saved to a
scratch dir only — ``benchmarks/results/BENCH_cold_boot_prefetch.json``
is the committed paper-scale record and stays untouched.
"""

import pytest

from benchmarks.bench_ext_prefetch import (
    _run_prefetch,
    check_prefetch_shape,
)

pytestmark = [
    pytest.mark.smoke,
    pytest.mark.timeout(120),
    pytest.mark.filterwarnings("ignore::ResourceWarning"),
]


def test_prefetch_smoke(tmp_path):
    log = _run_prefetch(quick=True)
    # Scratch dir, never benchmarks/results/: the committed artifact is
    # the paper-scale record and only the full benchmark may write it.
    log.save(str(tmp_path))
    check_prefetch_shape(log, quick=True)
